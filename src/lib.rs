//! # optwin — OPTWIN concept-drift detection in Rust
//!
//! A full reproduction of *"OPTWIN: Drift identification with optimal
//! sub-windows"* (Tosi & Theobald, ICDE 2024) as a Rust workspace. This
//! facade crate re-exports the public API of every member crate so that
//! downstream users can depend on a single crate:
//!
//! | module | contents |
//! |--------|----------|
//! | [`core`] | the OPTWIN detector, the batch-first [`core::DriftDetector`] trait, optimal-cut tables and their process-wide registry |
//! | [`baselines`] | ADWIN, DDM, EDDM, STEPD, ECDD, Page–Hinkley, KSWIN |
//! | [`engine`] | the service-style multi-stream engine: [`engine::EngineBuilder`] → worker threads + [`engine::EngineHandle`], pluggable [`engine::EventSink`]s, snapshot/restore, and the blocking [`engine::DriftEngine`] facade |
//! | [`stream`] | MOA-style generators, drift composition, error streams |
//! | [`learners`] | Naive Bayes, logistic regression, MLP, adaptive wrappers |
//! | [`eval`] | drift metrics, experiment runners for every table/figure |
//! | [`stats`] | distributions, hypothesis tests, incremental statistics |
//!
//! The most common entry points are additionally re-exported at the crate
//! root.
//!
//! ## Quick start
//!
//! ```
//! use optwin::{DriftDetector, DriftStatus, Optwin, OptwinConfig};
//!
//! let mut detector = Optwin::new(
//!     OptwinConfig::builder()
//!         .confidence(0.99)
//!         .robustness(0.5)
//!         .max_window(2_000)
//!         .build()?,
//! )?;
//!
//! // Feed the per-prediction error of your online learner.
//! for i in 0..1_200u32 {
//!     let error_rate = if i < 800 { 0.05 } else { 0.40 };
//!     let observed = error_rate + 0.01 * f64::from(i % 5);
//!     if detector.add_element(observed) == DriftStatus::Drift {
//!         // Retrain / replace the learner here.
//!         assert!(i >= 800);
//!         break;
//!     }
//! }
//! # Ok::<(), optwin::core::CoreError>(())
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios (spam-filter
//! adaptation, neural-network loss monitoring, detector comparison) and the
//! `optwin-bench` crate for the binaries that regenerate every table and
//! figure of the paper.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub use optwin_baselines as baselines;
pub use optwin_core as core;
pub use optwin_engine as engine;
pub use optwin_eval as eval;
pub use optwin_learners as learners;
pub use optwin_stats as stats;
pub use optwin_stream as stream;

pub use optwin_baselines::{
    Adwin, Cascade, CascadeConfig, Ddm, DetectorKind, DetectorSpec, Ecdd, Eddm, Ensemble,
    EnsembleConfig, Kswin, PageHinkley, Stepd,
};
pub use optwin_core::{
    BatchOutcome, CutTable, CutTableRegistry, DetectorExt, DriftDetector, DriftStatus, Optwin,
    OptwinConfig, SnapshotEncoding,
};
pub use optwin_engine::{
    load_checkpoint_dir, CallbackSink, CheckpointPolicy, CheckpointReport, DriftEngine, DriftEvent,
    EngineBuilder, EngineConfig, EngineHandle, EngineSnapshot, EngineStats, EventSink, FleetConfig,
    HibernationPolicy, JsonLinesSink, MemorySink, RebalancePolicy, RebalanceReport, ShardLoad,
};
pub use optwin_eval::{
    default_lineup, run_driftbench, DetectorFactory, DriftbenchCell, DriftbenchConfig,
    DriftbenchReport, Table1Experiment,
};
pub use optwin_learners::{AdaptiveLearner, NaiveBayes, OnlineLearner};
pub use optwin_stream::{DriftSchedule, InstanceStream, ScenarioKind};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_are_usable() {
        let detector = Optwin::with_defaults().unwrap();
        assert_eq!(detector.name(), "OPTWIN");
        let kinds = DetectorKind::paper_lineup();
        assert_eq!(kinds.len(), 8);
        let schedule = DriftSchedule::every(100, 1_000, 1);
        assert_eq!(schedule.n_drifts(), 9);
    }

    #[test]
    fn engine_reexports_are_usable() {
        let mut engine = DriftEngine::with_factory(EngineConfig::with_shards(2), |_| {
            Box::new(Adwin::with_defaults())
        });
        let events: Vec<DriftEvent> = engine
            .ingest_batch(&[(1, 0.0), (2, 0.0), (1, 1.0)])
            .unwrap();
        assert!(events.is_empty());
        assert_eq!(engine.stream_count(), 2);
        assert_eq!(engine.elements_ingested(), 3);

        // The batch contract and the table registry are visible through the
        // facade too.
        let mut d = Optwin::with_defaults().unwrap();
        let outcome: BatchOutcome = d.add_batch(&[0.1, 0.2, 0.3]);
        assert_eq!(outcome.len, 3);
        let config = OptwinConfig::builder().max_window(64).build().unwrap();
        let table: std::sync::Arc<CutTable> =
            CutTableRegistry::global().get_or_build(&config).unwrap();
        assert_eq!(table.w_max(), 64);
    }
}
