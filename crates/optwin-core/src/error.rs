//! Error types for the OPTWIN core crate.

use std::fmt;

use optwin_stats::StatsError;

/// Errors produced by OPTWIN configuration and construction.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration value is outside its valid domain.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// An underlying statistical routine failed.
    Stats(StatsError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { field, message } => {
                write!(f, "invalid OPTWIN configuration: `{field}` {message}")
            }
            CoreError::Stats(e) => write!(f, "statistical routine failed: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Stats(e) => Some(e),
            CoreError::InvalidConfig { .. } => None,
        }
    }
}

impl From<StatsError> for CoreError {
    fn from(e: StatsError) -> Self {
        CoreError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidConfig {
            field: "delta",
            message: "must lie in (0, 1)".to_string(),
        };
        assert!(e.to_string().contains("delta"));
        assert!(std::error::Error::source(&e).is_none());

        let e: CoreError = StatsError::InvalidProbability { value: 2.0 }.into();
        assert!(e.to_string().contains("statistical"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
