//! Error types for the OPTWIN core crate.

use std::fmt;

use optwin_stats::StatsError;

/// Errors produced by OPTWIN configuration and construction.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration value is outside its valid domain.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// An underlying statistical routine failed.
    Stats(StatsError),
    /// A detector was asked for a state snapshot it does not implement.
    SnapshotUnsupported {
        /// The detector's stable name.
        detector: &'static str,
    },
    /// A serialized detector state could not be restored.
    InvalidSnapshot {
        /// Human-readable description of the mismatch.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { field, message } => {
                write!(f, "invalid OPTWIN configuration: `{field}` {message}")
            }
            CoreError::Stats(e) => write!(f, "statistical routine failed: {e}"),
            CoreError::SnapshotUnsupported { detector } => {
                write!(f, "detector `{detector}` does not support state snapshots")
            }
            CoreError::InvalidSnapshot { message } => {
                write!(f, "invalid detector snapshot: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Stats(e) => Some(e),
            CoreError::InvalidConfig { .. }
            | CoreError::SnapshotUnsupported { .. }
            | CoreError::InvalidSnapshot { .. } => None,
        }
    }
}

impl From<StatsError> for CoreError {
    fn from(e: StatsError) -> Self {
        CoreError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidConfig {
            field: "delta",
            message: "must lie in (0, 1)".to_string(),
        };
        assert!(e.to_string().contains("delta"));
        assert!(std::error::Error::source(&e).is_none());

        let e: CoreError = StatsError::InvalidProbability { value: 2.0 }.into();
        assert!(e.to_string().contains("statistical"));
        assert!(std::error::Error::source(&e).is_some());

        let e = CoreError::SnapshotUnsupported { detector: "ADWIN" };
        assert!(e.to_string().contains("ADWIN"));
        assert!(std::error::Error::source(&e).is_none());
        let e = CoreError::InvalidSnapshot {
            message: "missing field `split`".to_string(),
        };
        assert!(e.to_string().contains("split"));
    }
}
