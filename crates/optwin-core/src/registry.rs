//! Process-wide sharing of pre-computed [`CutTable`]s.
//!
//! A cut table depends only on `(δ, warning δ, ρ, w_min, w_max)` — never on
//! the data — so every OPTWIN detector built from an equivalent
//! configuration can share one table. The evaluation harness always did this
//! by hand for its 30 repetitions; the multi-stream engine runs *thousands*
//! of concurrent detectors, where per-detector tables would multiply both
//! memory (a full `w_max = 25 000` table is ~2 MiB) and the one-off quantile
//! computation. [`CutTableRegistry`] interns tables behind [`Arc`]s keyed by
//! the relevant configuration fields; [`CutTableRegistry::global`] is the
//! process-wide instance the detector constructors use.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::cut::CutTable;
use crate::{OptwinConfig, Result};

/// The configuration fields a cut table actually depends on, bit-exact so
/// that `f64` parameters hash and compare reliably.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TableKey {
    delta_bits: u64,
    warning_delta_bits: u64,
    rho_bits: u64,
    w_min: usize,
    w_max: usize,
}

impl TableKey {
    fn of(config: &OptwinConfig) -> Self {
        Self {
            delta_bits: config.delta.to_bits(),
            // NaN is rejected by validation; 0 is outside (0,1), so the
            // bit pattern of 0.0 is a safe "disabled" sentinel.
            warning_delta_bits: config.warning_delta.unwrap_or(0.0).to_bits(),
            rho_bits: config.rho.to_bits(),
            w_min: config.w_min,
            w_max: config.w_max,
        }
    }
}

/// An interning cache of [`CutTable`]s keyed by the configuration fields
/// that determine their contents.
#[derive(Debug, Default)]
pub struct CutTableRegistry {
    tables: Mutex<HashMap<TableKey, Arc<CutTable>>>,
}

impl CutTableRegistry {
    /// Creates an empty registry. Most callers want
    /// [`CutTableRegistry::global`] instead.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static CutTableRegistry {
        static GLOBAL: OnceLock<CutTableRegistry> = OnceLock::new();
        GLOBAL.get_or_init(CutTableRegistry::new)
    }

    /// Returns the shared table for `config`, building and interning it on
    /// first use.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] if the configuration is
    /// invalid.
    pub fn get_or_build(&self, config: &OptwinConfig) -> Result<Arc<CutTable>> {
        config.validate()?;
        let key = TableKey::of(config);
        let mut tables = self.tables.lock();
        if let Some(table) = tables.get(&key) {
            return Ok(Arc::clone(table));
        }
        let table = CutTable::shared(config)?;
        tables.insert(key, Arc::clone(&table));
        Ok(table)
    }

    /// Number of distinct tables currently interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.lock().len()
    }

    /// `true` when no table is interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every interned table. Detectors holding an [`Arc`] keep their
    /// table alive; only the registry's references are released.
    pub fn clear(&self) {
        self.tables.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DriftDirection;

    fn config(rho: f64, w_max: usize) -> OptwinConfig {
        OptwinConfig::builder()
            .robustness(rho)
            .max_window(w_max)
            .build()
            .unwrap()
    }

    #[test]
    fn same_key_shares_one_table() {
        let registry = CutTableRegistry::new();
        let a = registry.get_or_build(&config(0.5, 400)).unwrap();
        let b = registry.get_or_build(&config(0.5, 400)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn distinct_parameters_get_distinct_tables() {
        let registry = CutTableRegistry::new();
        let base = registry.get_or_build(&config(0.5, 400)).unwrap();
        let other_rho = registry.get_or_build(&config(1.0, 400)).unwrap();
        let other_window = registry.get_or_build(&config(0.5, 500)).unwrap();
        assert!(!Arc::ptr_eq(&base, &other_rho));
        assert!(!Arc::ptr_eq(&base, &other_window));
        assert_eq!(registry.len(), 3);

        // Warning confidence participates in the key (it changes entries).
        let mut no_warn = config(0.5, 400);
        no_warn.warning_delta = None;
        let warnless = registry.get_or_build(&no_warn).unwrap();
        assert!(!Arc::ptr_eq(&base, &warnless));
        assert_eq!(registry.len(), 4);
    }

    #[test]
    fn direction_and_eta_do_not_split_the_cache() {
        // Fields that never influence table entries must share one table.
        let registry = CutTableRegistry::new();
        let a = registry.get_or_build(&config(0.5, 400)).unwrap();
        let mut symmetric = config(0.5, 400);
        symmetric.direction = DriftDirection::Both;
        symmetric.eta = 1e-3;
        let b = registry.get_or_build(&symmetric).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn clear_releases_registry_references() {
        let registry = CutTableRegistry::new();
        let held = registry.get_or_build(&config(0.5, 300)).unwrap();
        assert!(!registry.is_empty());
        registry.clear();
        assert!(registry.is_empty());
        // The held Arc is still usable after the registry drops its copy.
        assert_eq!(held.w_max(), 300);
        // A re-build creates a fresh table.
        let fresh = registry.get_or_build(&config(0.5, 300)).unwrap();
        assert!(!Arc::ptr_eq(&held, &fresh));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let registry = CutTableRegistry::new();
        let mut bad = config(0.5, 300);
        bad.rho = -1.0;
        assert!(registry.get_or_build(&bad).is_err());
        assert!(registry.is_empty());
    }

    #[test]
    fn global_registry_is_shared_across_threads() {
        let cfg = config(0.25, 123);
        let a = CutTableRegistry::global().get_or_build(&cfg).unwrap();
        let cfg2 = cfg.clone();
        let b = std::thread::spawn(move || CutTableRegistry::global().get_or_build(&cfg2).unwrap())
            .join()
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
