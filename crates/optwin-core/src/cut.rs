//! Optimal-cut computation (Equation 1 of the paper) and the pre-computed
//! per-window-length lookup table.
//!
//! For a window of length `|W|`, a candidate split ν partitions it into
//! `W_hist` (the first `⌊ν|W|⌋` elements) and `W_new` (the rest). Equation 1
//! expresses, for that split, the smallest mean shift (measured in units of
//! `σ_hist`) that the Welch *t*-test is guaranteed to flag at confidence δ':
//!
//! ```text
//! ρ(ν) = t_ppf(δ', df) · sqrt( 1/(ν|W|) + f_ppf(δ', df_new, df_hist) / ((1−ν)|W|) )
//! ```
//!
//! The function ρ(ν) is U-shaped: it blows up when either sub-window becomes
//! tiny. OPTWIN therefore uses the **highest** ν at which ρ(ν) is still at
//! most the user-chosen robustness ρ — the smallest `W_new` that still
//! guarantees detection — and falls back to ν = 0.5 while the window is too
//! short for any split to satisfy the requirement (`|W| < w_proof`).
//!
//! Because ρ(ν) depends only on `|W|`, δ and ρ (never on the data), the split
//! point and both critical values are pre-computed per window length, exactly
//! as described in §3.4 of the paper. [`CutTable`] computes entries lazily,
//! warm-starting each search from the neighbouring window length so that
//! building the full `w_max = 25 000` table costs only a few probability
//! point function evaluations per length.
//!
//! ## A note on the F-test degrees of freedom
//!
//! Algorithm 1 (line 11) writes `f_ppf(δ', ν|W|−1, (1−ν)|W|−1)` while the
//! accompanying text of the proof says the numerator degrees of freedom come
//! from `W_new` and the denominator from `W_hist`. Since the tested statistic
//! is `σ²_new / σ²_hist`, the statistically correct parametrisation is
//! `(|W_new|−1, |W_hist|−1)`, which is what this implementation uses — both
//! for the runtime test and inside Equation 1.

use std::sync::Arc;

use parking_lot::RwLock;

use optwin_stats::dist::{ContinuousDistribution, FisherF, StudentsT};

use crate::{CoreError, OptwinConfig, Result};

/// Pre-computed quantities for one window length `|W|`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutEntry {
    /// Window length this entry was computed for.
    pub window_len: usize,
    /// Number of elements in `W_hist` (`⌊ν|W|⌋`).
    pub split: usize,
    /// The optimal splitting percentage ν = split / |W|.
    pub nu: f64,
    /// `true` when Equation 1 had a solution for this window length (i.e.
    /// `|W| ≥ w_proof`); `false` when the ν = 0.5 fallback was used.
    pub exact: bool,
    /// Critical value of the Welch t-test at confidence δ'.
    pub t_crit: f64,
    /// Critical value of the f-test at confidence δ'
    /// (degrees of freedom `|W_new|−1`, `|W_hist|−1`).
    pub f_crit: f64,
    /// Welch–Satterthwaite degrees of freedom used for `t_crit`
    /// (Equation 2 of the paper).
    pub df: f64,
    /// Critical value of the t-test at the warning confidence, if enabled.
    pub t_warn: Option<f64>,
    /// Critical value of the f-test at the warning confidence, if enabled.
    pub f_warn: Option<f64>,
}

/// The value of Equation 1's right-hand side for a concrete integer split.
///
/// `w` is the window length and `k` the number of elements in `W_hist`.
/// Returns the guaranteed-detectable shift (in units of `σ_hist`) together
/// with the Welch degrees of freedom and the two critical values, so callers
/// can reuse them without re-evaluating the quantile functions.
fn equation_one(w: usize, k: usize, delta_prime: f64) -> Result<(f64, f64, f64, f64)> {
    debug_assert!(k >= 2 && w - k >= 2, "both sub-windows need >= 2 elements");
    let n_hist = k as f64;
    let n_new = (w - k) as f64;

    // f_factor = f_ppf(δ', |W_new|−1, |W_hist|−1)  (Equation 8).
    let f_dist = FisherF::new(n_new - 1.0, n_hist - 1.0)?;
    let f_factor = f_dist.ppf(delta_prime)?;

    // Welch–Satterthwaite degrees of freedom with σ²_new bounded by
    // f_factor·σ²_hist (Equation 2).
    let a = 1.0 / n_hist;
    let b = f_factor / n_new;
    let df = ((a + b) * (a + b)) / (a * a / (n_hist - 1.0) + b * b / (n_new - 1.0));
    let df = df.max(1.0);

    let t_dist = StudentsT::new(df)?;
    let t_crit = t_dist.ppf(delta_prime)?;

    let rho = t_crit * (a + b).sqrt();
    Ok((rho, df, t_crit, f_factor))
}

/// Smallest admissible `W_hist` size (both tests need at least two elements
/// per sub-window to have defined variances).
const MIN_SUB_WINDOW: usize = 2;

/// Computes the optimal cut for window length `w`: the largest split `k` such
/// that Equation 1's guaranteed-detectable shift is at most `rho`.
///
/// `hint` optionally provides the split found for a nearby window length; the
/// search then only probes a local neighbourhood before falling back to a
/// full scan, which makes sequential table construction cheap.
///
/// Returns `(split, exact)` where `exact` is `false` when no split satisfies
/// the requirement and the ν = 0.5 fallback was applied.
fn optimal_split(
    w: usize,
    rho: f64,
    delta_prime: f64,
    hint: Option<usize>,
) -> Result<(usize, bool)> {
    let k_min = MIN_SUB_WINDOW;
    let k_max = w - MIN_SUB_WINDOW;
    if k_min > k_max {
        return Ok((w / 2, false));
    }

    let satisfies = |k: usize| -> Result<bool> {
        let (r, _, _, _) = equation_one(w, k, delta_prime)?;
        Ok(r <= rho)
    };

    // Fast path: walk locally from the hint. The admissible region
    // {k : ρ(k) ≤ rho} is an interval because ρ(k) is U-shaped, so the
    // largest admissible k is characterised by ρ(k) ≤ rho < ρ(k+1).
    if let Some(h) = hint {
        let mut k = h.clamp(k_min, k_max);
        if satisfies(k)? {
            while k < k_max && satisfies(k + 1)? {
                k += 1;
            }
            return Ok((k, true));
        }
        // The hint overshoots; walk down a bounded number of steps before
        // giving up and scanning.
        let mut down = k;
        for _ in 0..8 {
            if down == k_min {
                break;
            }
            down -= 1;
            if satisfies(down)? {
                return Ok((down, true));
            }
        }
    }

    // Full search: find the largest admissible k by scanning from the top.
    // ρ(k) is decreasing-then-increasing in k; scanning from k_max downwards
    // and returning the first admissible k therefore yields the maximum.
    // To avoid O(w) quantile evaluations for large windows we first probe a
    // geometric grid to find a coarse bracket, then binary-search inside it.
    let mut probe = k_max;
    let mut last_bad = k_max + 1;
    let mut found: Option<usize> = None;
    let mut step = 1usize;
    loop {
        if satisfies(probe)? {
            found = Some(probe);
            break;
        }
        last_bad = probe;
        if probe <= k_min {
            break;
        }
        probe = probe.saturating_sub(step).max(k_min);
        // Geometric acceleration, capped so that a narrow admissible interval
        // (which occurs just above w_proof) cannot be stepped over.
        step = (step * 2).min(32);
    }

    let Some(lo_good) = found else {
        // No admissible split at all: |W| < w_proof, fall back to ν = 0.5.
        return Ok((w / 2, false));
    };

    // Binary search for the boundary in (lo_good, last_bad).
    let mut lo = lo_good;
    let mut hi = last_bad; // exclusive: known to violate (or k_max + 1)
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if mid > k_max {
            break;
        }
        if satisfies(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok((lo, true))
}

/// Lazily built, thread-safe lookup table of [`CutEntry`] values for every
/// window length in `[w_min, w_max]`.
///
/// The table is keyed by the OPTWIN configuration it was built from and can
/// be shared between detector instances with [`Arc`] (e.g. when running the
/// 30-repetition experiments of the paper, all repetitions reuse one table).
#[derive(Debug)]
pub struct CutTable {
    delta_prime: f64,
    warning_delta_prime: Option<f64>,
    rho: f64,
    w_min: usize,
    w_max: usize,
    cache: RwLock<Vec<Option<CutEntry>>>,
    /// Lazily computed proof window `w_proof`: the smallest window length at
    /// which Equation 1 has a solution (`None` when even `w_max` has none).
    /// Admissibility is monotone in `|W|` (larger windows can only make a
    /// ρ-shift easier to certify), so lengths below `w_proof` take the
    /// ν = 0.5 fallback without running the split search at all.
    proof_window: RwLock<Option<Option<usize>>>,
}

impl CutTable {
    /// Creates an empty table for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: &OptwinConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            delta_prime: config.delta_prime(),
            warning_delta_prime: config.warning_delta_prime(),
            rho: config.rho,
            w_min: config.w_min,
            w_max: config.w_max,
            cache: RwLock::new(vec![None; config.w_max - config.w_min + 1]),
            proof_window: RwLock::new(None),
        })
    }

    /// Creates the table and wraps it in an [`Arc`] for sharing.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the configuration is invalid.
    pub fn shared(config: &OptwinConfig) -> Result<Arc<Self>> {
        Ok(Arc::new(Self::new(config)?))
    }

    /// Smallest window length covered by the table.
    #[must_use]
    pub fn w_min(&self) -> usize {
        self.w_min
    }

    /// Largest window length covered by the table.
    #[must_use]
    pub fn w_max(&self) -> usize {
        self.w_max
    }

    /// The robustness parameter ρ the table was built for.
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Returns the entry for window length `w`, computing and caching it (and
    /// nothing else) on first use.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `w` is outside
    /// `[w_min, w_max]`, or a wrapped statistics error if a quantile
    /// evaluation fails (practically unreachable for valid configurations).
    pub fn entry(&self, w: usize) -> Result<CutEntry> {
        if w < self.w_min || w > self.w_max {
            return Err(CoreError::InvalidConfig {
                field: "window_len",
                message: format!(
                    "length {w} outside the table range [{}, {}]",
                    self.w_min, self.w_max
                ),
            });
        }
        let idx = w - self.w_min;
        if let Some(entry) = self.cache.read()[idx] {
            return Ok(entry);
        }
        // Warm-start from the nearest cached neighbour below, if any.
        let hint = {
            let cache = self.cache.read();
            cache[..idx]
                .iter()
                .rev()
                .take(16)
                .flatten()
                .map(|e| e.split + (w - e.window_len))
                .next()
        };
        let entry = self.compute_entry(w, hint)?;
        self.cache.write()[idx] = Some(entry);
        Ok(entry)
    }

    /// Returns the entries for every window length in `[lo, hi]` (both
    /// inclusive), computing and caching any that are missing.
    ///
    /// This is the batch-ingestion fast path: one read-lock acquisition
    /// covers the whole contiguous range instead of one per element, and
    /// missing entries are computed in one pass with warm-started split
    /// searches before a single write-lock stores them all.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the range is empty or falls
    /// outside `[w_min, w_max]`, or a wrapped statistics error from entry
    /// computation (practically unreachable).
    pub fn entries_range(&self, lo: usize, hi: usize) -> Result<Vec<CutEntry>> {
        let mut out = Vec::new();
        self.entries_range_into(lo, hi, &mut out)?;
        Ok(out)
    }

    /// [`CutTable::entries_range`] writing into a caller-owned buffer, which
    /// is cleared and then filled with the entries for `[lo, hi]`.
    ///
    /// This is the allocation-free variant the detector batch path uses: one
    /// scratch `Vec` per detector absorbs every prefetch chunk instead of a
    /// fresh allocation per chunk.
    ///
    /// # Errors
    ///
    /// Same contract as [`CutTable::entries_range`]; on error the buffer
    /// contents are unspecified (but valid).
    pub fn entries_range_into(&self, lo: usize, hi: usize, out: &mut Vec<CutEntry>) -> Result<()> {
        if lo > hi || lo < self.w_min || hi > self.w_max {
            return Err(CoreError::InvalidConfig {
                field: "window_len",
                message: format!(
                    "range [{lo}, {hi}] invalid for the table range [{}, {}]",
                    self.w_min, self.w_max
                ),
            });
        }
        // One read-lock copies the cached slots into the output buffer;
        // missing entries are marked with a `window_len == 0` placeholder (no
        // real entry has one — lengths start at `w_min >= 1`).
        out.clear();
        let missing = {
            let cache = self.cache.read();
            let slots = &cache[lo - self.w_min..=hi - self.w_min];
            let placeholder = CutEntry {
                window_len: 0,
                split: 0,
                nu: 0.0,
                exact: false,
                t_crit: f64::INFINITY,
                f_crit: f64::INFINITY,
                df: 1.0,
                t_warn: None,
                f_warn: None,
            };
            out.extend(slots.iter().map(|slot| slot.unwrap_or(placeholder)));
            slots.iter().filter(|e| e.is_none()).count()
        };
        if missing == 0 {
            return Ok(());
        }
        // Compute the missing entries outside any lock, warm-starting each
        // search from its predecessor in the range, then publish the whole
        // chunk under one write lock.
        let mut hint: Option<usize> = None;
        for (offset, slot) in out.iter_mut().enumerate() {
            if slot.window_len == 0 {
                let entry = self.compute_entry(lo + offset, hint)?;
                *slot = entry;
            }
            hint = Some(slot.split + 1);
        }
        {
            let mut cache = self.cache.write();
            for (offset, entry) in out.iter().enumerate() {
                cache[lo - self.w_min + offset] = Some(*entry);
            }
        }
        Ok(())
    }

    /// Eagerly computes every entry in `[w_min, w_max]`.
    ///
    /// # Errors
    ///
    /// Propagates the first computation error encountered.
    pub fn precompute_all(&self) -> Result<()> {
        let mut hint: Option<usize> = None;
        for w in self.w_min..=self.w_max {
            let idx = w - self.w_min;
            if let Some(e) = self.cache.read()[idx] {
                hint = Some(e.split + 1);
                continue;
            }
            let entry = self.compute_entry(w, hint)?;
            hint = Some(entry.split + 1);
            self.cache.write()[idx] = Some(entry);
        }
        Ok(())
    }

    /// Number of entries currently cached (diagnostics).
    #[must_use]
    pub fn cached_entries(&self) -> usize {
        self.cache.read().iter().filter(|e| e.is_some()).count()
    }

    /// Whether Equation 1 has any admissible split for window length `w`
    /// (evaluated at the U-shaped function's minimum via ternary search).
    fn solution_exists(&self, w: usize) -> Result<bool> {
        let k_min = MIN_SUB_WINDOW;
        let k_max = w.saturating_sub(MIN_SUB_WINDOW);
        if k_min >= k_max {
            return Ok(false);
        }
        let mut lo = k_min;
        let mut hi = k_max;
        while hi - lo > 2 {
            let m1 = lo + (hi - lo) / 3;
            let m2 = hi - (hi - lo) / 3;
            let (r1, _, _, _) = equation_one(w, m1, self.delta_prime)?;
            let (r2, _, _, _) = equation_one(w, m2, self.delta_prime)?;
            if r1 <= self.rho || r2 <= self.rho {
                return Ok(true);
            }
            if r1 < r2 {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        for k in lo..=hi {
            let (r, _, _, _) = equation_one(w, k, self.delta_prime)?;
            if r <= self.rho {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Lazily computes the proof window (smallest `w` with a solution) by
    /// bisection over `[w_min, w_max]`.
    fn proof_window(&self) -> Result<Option<usize>> {
        if let Some(cached) = *self.proof_window.read() {
            return Ok(cached);
        }
        let result = if !self.solution_exists(self.w_max)? {
            None
        } else if self.solution_exists(self.w_min)? {
            Some(self.w_min)
        } else {
            let mut lo = self.w_min; // no solution
            let mut hi = self.w_max; // solution
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if self.solution_exists(mid)? {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            Some(hi)
        };
        *self.proof_window.write() = Some(result);
        Ok(result)
    }

    fn compute_entry(&self, w: usize, hint: Option<usize>) -> Result<CutEntry> {
        let below_proof = match self.proof_window()? {
            Some(w_proof) => w < w_proof,
            None => true,
        };
        let (split, exact) = if below_proof {
            // Below the proof window: Equation 1 has no solution, use ν = 0.5.
            (w / 2, false)
        } else {
            optimal_split(w, self.rho, self.delta_prime, hint)?
        };
        let split = split.clamp(
            MIN_SUB_WINDOW,
            w.saturating_sub(MIN_SUB_WINDOW).max(MIN_SUB_WINDOW),
        );
        let (_, df, t_crit, f_crit) = equation_one(w, split, self.delta_prime)?;
        let (t_warn, f_warn) = match self.warning_delta_prime {
            Some(dw) => {
                let (_, _, t_w, f_w) = equation_one(w, split, dw)?;
                (Some(t_w), Some(f_w))
            }
            None => (None, None),
        };
        Ok(CutEntry {
            window_len: w,
            split,
            nu: split as f64 / w as f64,
            exact,
            t_crit,
            f_crit,
            df,
            t_warn,
            f_warn,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OptwinConfig;

    fn config(rho: f64, w_max: usize) -> OptwinConfig {
        OptwinConfig::builder()
            .robustness(rho)
            .max_window(w_max)
            .build()
            .unwrap()
    }

    #[test]
    fn equation_one_is_u_shaped() {
        let w = 400;
        let dp = 0.99_f64.powf(0.25);
        let mut values = Vec::new();
        for k in (2..=w - 2).step_by(7) {
            let (r, _, _, _) = equation_one(w, k, dp).unwrap();
            values.push(r);
        }
        // Endpoints are larger than the interior minimum.
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(values[0] > min);
        assert!(values[values.len() - 1] > min);
        assert!(min > 0.0);
    }

    #[test]
    fn small_windows_fall_back_to_half() {
        // With ρ = 0.1 a window of 200 elements is far below w_proof, so the
        // fallback ν = 0.5 must be used.
        let table = CutTable::new(&config(0.1, 500)).unwrap();
        let entry = table.entry(200).unwrap();
        assert!(!entry.exact);
        assert_eq!(entry.split, 100);
        assert!((entry.nu - 0.5).abs() < 1e-12);
    }

    #[test]
    fn large_windows_get_exact_cut_for_loose_rho() {
        // With ρ = 1.0 a few dozen elements suffice (w_proof ≈ 36).
        let table = CutTable::new(&config(1.0, 400)).unwrap();
        let entry = table.entry(300).unwrap();
        assert!(entry.exact);
        // The optimal cut keeps W_new small: the split lies past the middle.
        assert!(entry.split > 150, "split = {}", entry.split);
        assert!(entry.split <= 298);
        // The guaranteed shift at the returned split must not exceed ρ.
        let dp = 0.99_f64.powf(0.25);
        let (r, _, _, _) = equation_one(300, entry.split, dp).unwrap();
        assert!(r <= 1.0 + 1e-9);
        // And the next split (one further right) must violate it, otherwise
        // the returned split would not be maximal.
        let (r_next, _, _, _) = equation_one(300, entry.split + 1, dp).unwrap();
        assert!(r_next > 1.0);
    }

    #[test]
    fn split_is_maximal_for_various_lengths() {
        let table = CutTable::new(&config(0.5, 1200)).unwrap();
        let dp = 0.99_f64.powf(0.25);
        for &w in &[150, 300, 600, 1200] {
            let entry = table.entry(w).unwrap();
            if entry.exact {
                let (r, _, _, _) = equation_one(w, entry.split, dp).unwrap();
                assert!(r <= 0.5 + 1e-9, "w={w}");
                if entry.split + MIN_SUB_WINDOW < w {
                    let (r_next, _, _, _) = equation_one(w, entry.split + 1, dp).unwrap();
                    assert!(r_next > 0.5, "w={w}: split not maximal");
                }
            }
        }
    }

    #[test]
    fn hint_and_full_scan_agree() {
        let dp = 0.99_f64.powf(0.25);
        // Compute without a hint, then with deliberately wrong hints.
        for &w in &[200usize, 350, 500] {
            let (k_ref, exact_ref) = optimal_split(w, 0.5, dp, None).unwrap();
            for hint in [Some(2), Some(w / 2), Some(w - 3), Some(k_ref)] {
                let (k, exact) = optimal_split(w, 0.5, dp, hint).unwrap();
                assert_eq!(k, k_ref, "w={w} hint={hint:?}");
                assert_eq!(exact, exact_ref);
            }
        }
    }

    #[test]
    fn new_window_size_shrinks_relative_to_w_as_w_grows() {
        // §3.3: with larger windows the optimal |W_new| stays roughly stable,
        // so ν grows towards 1.
        let table = CutTable::new(&config(1.0, 2000)).unwrap();
        let e_small = table.entry(200).unwrap();
        let e_large = table.entry(2000).unwrap();
        assert!(e_small.exact && e_large.exact);
        assert!(e_large.nu > e_small.nu);
        let new_small = 200 - e_small.split;
        let new_large = 2000 - e_large.split;
        // |W_new| grows far more slowly than |W| itself.
        assert!(
            new_large < new_small * 4,
            "new_small={new_small} new_large={new_large}"
        );
    }

    #[test]
    fn entries_are_cached_and_shared() {
        let table = CutTable::shared(&config(0.5, 100)).unwrap();
        assert_eq!(table.cached_entries(), 0);
        let a = table.entry(60).unwrap();
        let b = table.entry(60).unwrap();
        assert_eq!(a, b);
        assert_eq!(table.cached_entries(), 1);

        let clone = Arc::clone(&table);
        let handle = std::thread::spawn(move || clone.entry(80).unwrap());
        let from_thread = handle.join().unwrap();
        assert_eq!(from_thread, table.entry(80).unwrap());
    }

    #[test]
    fn precompute_all_fills_every_entry() {
        let table = CutTable::new(&config(0.5, 120)).unwrap();
        table.precompute_all().unwrap();
        assert_eq!(table.cached_entries(), 120 - 30 + 1);
        for w in 30..=120 {
            let e = table.entry(w).unwrap();
            assert_eq!(e.window_len, w);
            assert!(e.split >= MIN_SUB_WINDOW);
            assert!(e.split <= w - MIN_SUB_WINDOW);
            assert!(e.t_crit > 0.0);
            assert!(e.f_crit > 1.0);
            assert!(e.df >= 1.0);
            // Warning thresholds are strictly looser than drift thresholds.
            assert!(e.t_warn.unwrap() < e.t_crit);
            assert!(e.f_warn.unwrap() < e.f_crit);
        }
    }

    #[test]
    fn entries_range_matches_single_lookups() {
        let table = CutTable::new(&config(0.5, 200)).unwrap();
        // Prime a few entries so the range mixes cached and missing ones.
        let _ = table.entry(50).unwrap();
        let _ = table.entry(60).unwrap();
        let range = table.entries_range(40, 80).unwrap();
        assert_eq!(range.len(), 41);
        for (offset, entry) in range.iter().enumerate() {
            assert_eq!(*entry, table.entry(40 + offset).unwrap());
        }
        // Everything touched is now cached.
        assert!(table.cached_entries() >= 41);
    }

    #[test]
    fn entries_range_into_reuses_buffer_and_matches() {
        let table = CutTable::new(&config(0.5, 200)).unwrap();
        let _ = table.entry(55).unwrap();
        let mut buf = Vec::new();
        table.entries_range_into(40, 80, &mut buf).unwrap();
        assert_eq!(buf.len(), 41);
        for (offset, entry) in buf.iter().enumerate() {
            assert_eq!(*entry, table.entry(40 + offset).unwrap());
        }
        // Refill with a fully cached range: the buffer is reused, no stale
        // leftovers, same entries as the allocating variant.
        let cap_before = buf.capacity();
        table.entries_range_into(60, 70, &mut buf).unwrap();
        assert_eq!(buf.len(), 11);
        assert_eq!(buf.capacity(), cap_before);
        assert_eq!(buf, table.entries_range(60, 70).unwrap());
        // Errors leave the buffer valid.
        assert!(table.entries_range_into(10, 20, &mut buf).is_err());
    }

    #[test]
    fn entries_range_rejects_bad_ranges() {
        let table = CutTable::new(&config(0.5, 100)).unwrap();
        assert!(table.entries_range(29, 40).is_err());
        assert!(table.entries_range(40, 101).is_err());
        assert!(table.entries_range(60, 50).is_err());
        assert!(table.entries_range(30, 100).is_ok());
    }

    #[test]
    fn out_of_range_window_rejected() {
        let table = CutTable::new(&config(0.5, 100)).unwrap();
        assert!(table.entry(29).is_err());
        assert!(table.entry(101).is_err());
        assert!(table.entry(30).is_ok());
        assert!(table.entry(100).is_ok());
    }

    #[test]
    fn accessors() {
        let table = CutTable::new(&config(0.25, 90)).unwrap();
        assert_eq!(table.w_min(), 30);
        assert_eq!(table.w_max(), 90);
        assert!((table.rho() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn smaller_rho_means_larger_proof_window() {
        // The window length at which an exact cut first exists grows as ρ
        // shrinks (Theorem 3.1 / §3.3 discussion).
        let first_exact = |rho: f64| -> usize {
            let table = CutTable::new(&config(rho, 3000)).unwrap();
            for w in (30..=3000).step_by(10) {
                if table.entry(w).unwrap().exact {
                    return w;
                }
            }
            usize::MAX
        };
        let w_proof_rho_1 = first_exact(1.0);
        let w_proof_rho_05 = first_exact(0.5);
        assert!(w_proof_rho_1 < w_proof_rho_05);
        assert!(w_proof_rho_1 <= 100, "w_proof(1.0) = {w_proof_rho_1}");
        assert!(w_proof_rho_05 <= 300, "w_proof(0.5) = {w_proof_rho_05}");
    }
}
