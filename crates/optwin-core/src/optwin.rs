//! The OPTWIN drift detector (Algorithm 1 of the paper).

use std::sync::Arc;

use crate::config::{DriftDirection, OptwinConfig};
use crate::cut::{CutEntry, CutTable};
use crate::detector::{BatchOutcome, DriftDetector, DriftStatus};
use crate::window::SplitWindow;
use crate::Result;

/// The OPTWIN ("OPTimal WINdow") concept-drift detector.
///
/// See the crate-level documentation for the algorithm overview and
/// [`OptwinConfig`] for the tunable parameters. The detector ingests one
/// error observation per learner prediction via
/// [`DriftDetector::add_element`]; each call costs amortized O(1).
#[derive(Debug, Clone)]
pub struct Optwin {
    config: OptwinConfig,
    cut: Arc<CutTable>,
    window: SplitWindow,
    /// Number of window elements that are not exactly 0.0 or 1.0. When this
    /// is zero the stream is binary and the variance-ratio test is skipped
    /// (see `tests_reject` for the rationale).
    non_binary_in_window: usize,
    last_status: DriftStatus,
    elements_seen: u64,
    drifts_detected: u64,
    warnings_detected: u64,
    /// Batch-path scratch: cut-table entries for window lengths
    /// `entry_scratch_start + k`. The table is immutable, so cached entries
    /// stay valid for the detector's lifetime; the buffer is transient state
    /// and is not serialized.
    entry_scratch: Vec<CutEntry>,
    entry_scratch_start: usize,
}

/// The per-split test statistics consulted by both the drift and the warning
/// thresholds. Computed **once** per window evaluation: the statistics depend
/// only on the window and the split, not on the critical values, so the
/// warning check reuses them instead of redoing the sqrt/divide work.
///
/// All gates are plain booleans combined without short-circuiting in
/// [`TestStatistics::rejects`]; the floating-point computations have no side
/// effects, so the statistics can be computed (or skipped) independently of
/// the threshold checks without changing any decision. A statistic whose gate
/// is closed is never compared, so its lane holds a placeholder `0.0`.
#[derive(Debug, Clone, Copy)]
struct TestStatistics {
    /// Degradation-direction gate (§3.4): false suppresses both tests.
    direction_ok: bool,
    /// F-test eligibility: non-binary window contents *and* the §3.1 spread
    /// margin hold.
    f_applicable: bool,
    /// Variance-ratio statistic (η-stabilised); placeholder `0.0` while
    /// `direction_ok & f_applicable` is closed.
    f_value: f64,
    /// Mean robustness margin (§3.1): `|μ_new − μ_hist| ≥ ρ·σ_hist`.
    mean_margin_ok: bool,
    /// Welch t statistic magnitude; placeholder `0.0` while
    /// `direction_ok & mean_margin_ok` is closed.
    t_value: f64,
}

impl TestStatistics {
    /// `true` when either test rejects at the supplied critical values.
    #[inline]
    fn rejects(&self, t_crit: f64, f_crit: f64) -> bool {
        self.direction_ok
            & ((self.f_applicable & (self.f_value > f_crit))
                | (self.mean_margin_ok & (self.t_value > t_crit)))
    }
}

impl Optwin {
    /// Creates a detector with the given configuration, building a private
    /// cut table.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] if the configuration is
    /// invalid.
    pub fn new(config: OptwinConfig) -> Result<Self> {
        let cut = CutTable::shared(&config)?;
        Self::with_cut_table(config, cut)
    }

    /// Creates a detector with the paper's default configuration
    /// (`δ = 0.99`, `ρ = 0.5`, `w_max = 25 000`).
    ///
    /// # Errors
    ///
    /// Never fails in practice (the defaults are valid); the `Result` is kept
    /// for signature uniformity.
    pub fn with_defaults() -> Result<Self> {
        Self::new(OptwinConfig::default())
    }

    /// Creates a detector whose cut table is interned in the process-wide
    /// [`crate::CutTableRegistry`]: every detector built this way with an
    /// equivalent `(δ, warning δ, ρ, w_min, w_max)` shares one table, which
    /// is what the multi-stream engine relies on to run thousands of
    /// detectors cheaply.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] if the configuration is
    /// invalid.
    pub fn with_shared_table(config: OptwinConfig) -> Result<Self> {
        let table = crate::CutTableRegistry::global().get_or_build(&config)?;
        Self::with_cut_table(config, table)
    }

    /// Creates a detector that shares a pre-built [`CutTable`].
    ///
    /// Sharing the table across detectors with identical `(δ, ρ, w_min,
    /// w_max)` avoids recomputing the per-window-length quantiles — the
    /// evaluation harness does this when it runs the same configuration over
    /// 30 stream repetitions.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] if the configuration is
    /// invalid or does not match the table's range.
    pub fn with_cut_table(config: OptwinConfig, cut: Arc<CutTable>) -> Result<Self> {
        config.validate()?;
        if cut.w_min() != config.w_min || cut.w_max() != config.w_max {
            return Err(crate::CoreError::InvalidConfig {
                field: "cut_table",
                message: format!(
                    "table range [{}, {}] does not match configuration [{}, {}]",
                    cut.w_min(),
                    cut.w_max(),
                    config.w_min,
                    config.w_max
                ),
            });
        }
        let capacity = config.w_max;
        Ok(Self {
            config,
            cut,
            window: SplitWindow::with_capacity(capacity),
            non_binary_in_window: 0,
            last_status: DriftStatus::Stable,
            elements_seen: 0,
            drifts_detected: 0,
            warnings_detected: 0,
            entry_scratch: Vec::new(),
            entry_scratch_start: usize::MAX,
        })
    }

    /// The configuration this detector was built with.
    #[must_use]
    pub fn config(&self) -> &OptwinConfig {
        &self.config
    }

    /// The cut table backing this detector (shareable with other instances).
    #[must_use]
    pub fn cut_table(&self) -> Arc<CutTable> {
        Arc::clone(&self.cut)
    }

    /// Current window length.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// The most recent status reported by [`DriftDetector::add_element`].
    #[must_use]
    pub fn last_status(&self) -> DriftStatus {
        self.last_status
    }

    /// Number of warnings reported since construction.
    #[must_use]
    pub fn warnings_detected(&self) -> u64 {
        self.warnings_detected
    }

    /// Mean of the current `W_hist` sub-window (diagnostics).
    #[must_use]
    pub fn hist_mean(&self) -> f64 {
        self.window.hist_mean()
    }

    /// Mean of the current `W_new` sub-window (diagnostics).
    #[must_use]
    pub fn new_mean(&self) -> f64 {
        self.window.new_mean()
    }

    /// Computes the t- and f-test statistics and their eligibility gates for
    /// the current window split. The result is checked against the drift and
    /// warning critical values via [`TestStatistics::rejects`] — one
    /// computation serves both threshold pairs.
    ///
    /// Two interpretation choices (documented in DESIGN.md §5) are applied on
    /// top of the literal Algorithm 1:
    ///
    /// * **Robustness margin for the mean test.** §3.1 defines ρ as "the
    ///   minimum ratio by which μ_new has to vary in relation to σ_hist to
    ///   count as a concept drift", so the t-test branch additionally
    ///   requires `|μ_new − μ_hist| ≥ ρ·σ_hist`. Without this margin the
    ///   t-test rejects on arbitrarily small (but statistically significant)
    ///   fluctuations once the window is long, which contradicts both the
    ///   definition of ρ and the near-zero false-positive rates reported in
    ///   the paper.
    /// * **Variance test only for non-binary streams.** For a Bernoulli
    ///   error stream the variance is a deterministic function of the mean
    ///   (σ² = p(1−p)), the sample variance ratio is far from
    ///   F-distributed, and the f-test would fire on ordinary sampling
    ///   noise. The f-test is therefore only applied when the window
    ///   contains at least one non-{0,1} value; binary streams are covered
    ///   by the (margin-gated) mean test, exactly like the binomial-based
    ///   baselines (DDM, ECDD).
    fn compute_statistics(&self, entry: &CutEntry) -> TestStatistics {
        let n_hist = entry.split as f64;
        let n_new = (entry.window_len - entry.split) as f64;

        let mean_hist = self.window.hist_mean();
        let mean_new = self.window.new_mean();
        let std_hist = self.window.hist_std();

        // Optional degradation-only gate (§3.4): only changes where the error
        // mean did not decrease are eligible.
        let direction_ok =
            !(self.config.direction == DriftDirection::DegradationOnly && mean_new < mean_hist);

        // Robustness margin (§3.1): μ_new must differ from μ_hist by at least
        // ρ·σ_hist before the mean-shift branch may flag a drift. Written as
        // `!(<)` so a NaN margin comparison keeps the original fall-through
        // behaviour.
        let mean_diff = (mean_hist - mean_new).abs();
        let mean_margin_ok = !(mean_diff < self.config.rho * std_hist);

        // σ_new feeds only the f-branch (dead on binary windows) and the
        // t-statistic's standard error (dead while the margin gate is
        // closed). When both consumers are masked off its sqrt is skipped;
        // the placeholder is never read because every use below sits behind
        // one of these two masks.
        let non_binary = self.non_binary_in_window > 0;
        let t_open = direction_ok & mean_margin_ok;
        let std_new = if non_binary | t_open {
            self.window.new_std()
        } else {
            0.0
        };

        // f-test (Algorithm 1, line 11) with the η stabiliser; see above for
        // the binary-content gate. The same §3.1 robustness margin is applied
        // to the spread: the new standard deviation must exceed the
        // historical one by at least ρ·σ_hist (or fall below it by that much
        // in the symmetric configuration) before the statistical test is
        // consulted.
        let f_margin_ok = match self.config.direction {
            DriftDirection::DegradationOnly => std_new - std_hist >= self.config.rho * std_hist,
            DriftDirection::Both => (std_new - std_hist).abs() >= self.config.rho * std_hist,
        };
        let f_applicable = non_binary & f_margin_ok;

        // The statistic is consulted by `TestStatistics::rejects` only behind
        // the `direction_ok & f_applicable` mask, so when that mask is closed
        // the value is dead and the two squarings and the division can be
        // skipped without changing any decision (the placeholder 0.0 is
        // never compared). On binary streams this removes the whole f-branch
        // from the per-element cost.
        let eta = self.config.eta;
        let f_value = if direction_ok & f_applicable {
            (std_new + eta).powi(2) / (std_hist + eta).powi(2)
        } else {
            0.0
        };

        // Welch t-test (Algorithm 1, line 14). The magnitude of the statistic
        // is compared against the one-sided critical value; with the
        // degradation gate above this amounts to testing μ_new > μ_hist.
        // Masked the same way as the f-statistic: when the robustness margin
        // already rules the mean branch out (the overwhelmingly common case
        // on a stationary stream), the standard-error square root is dead
        // work and is skipped.
        let t_value = if direction_ok & mean_margin_ok {
            let se = (std_hist * std_hist / n_hist + std_new * std_new / n_new).sqrt();
            if se > 0.0 {
                mean_diff / se
            } else if mean_diff == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            0.0
        };

        TestStatistics {
            direction_ok,
            f_applicable,
            f_value,
            mean_margin_ok,
            t_value,
        }
    }

    /// `true` when a value is an exact binary error indicator.
    fn is_binary(value: f64) -> bool {
        value == 0.0 || value == 1.0
    }

    /// Appends `value` to the window, evicting the oldest element when the
    /// window is at `w_max` (Algorithm 1, lines 5–6) and maintaining the
    /// binary-content counter.
    #[inline]
    fn push_value(&mut self, value: f64) {
        self.elements_seen += 1;
        if self.window.len() == self.config.w_max {
            if let Some(popped) = self.window.pop_front() {
                if !Self::is_binary(popped) {
                    self.non_binary_in_window = self.non_binary_in_window.saturating_sub(1);
                }
            }
        }
        self.window.push(value);
        if !Self::is_binary(value) {
            self.non_binary_in_window += 1;
        }
    }

    /// Pass-through entry used when the cut-table lookup fails (unreachable
    /// for a validated configuration): midpoint split, infinite critical
    /// values, so the tests never reject and the hot path never panics.
    fn fallback_entry(w: usize) -> CutEntry {
        CutEntry {
            window_len: w,
            split: w / 2,
            nu: 0.5,
            exact: false,
            t_crit: f64::INFINITY,
            f_crit: f64::INFINITY,
            df: 1.0,
            t_warn: None,
            f_warn: None,
        }
    }

    /// Applies the split and runs the drift/warning tests for the current
    /// window against `entry` (Algorithm 1, lines 7–16), updating every
    /// counter. Shared verbatim by the scalar and batch ingestion paths so
    /// the two are identical by construction.
    #[inline]
    fn evaluate_window(&mut self, entry: &CutEntry) -> DriftStatus {
        self.window.set_split(entry.split);
        let stats = self.compute_statistics(entry);

        // Drift tests (lines 11–16).
        if stats.rejects(entry.t_crit, entry.f_crit) {
            self.drifts_detected += 1;
            self.window.clear();
            self.non_binary_in_window = 0;
            self.last_status = DriftStatus::Drift;
            return self.last_status;
        }

        // Warning zone: the relaxed thresholds reject but the strict ones do
        // not. The statistics are reused — only the threshold comparison
        // differs between the two checks.
        if let (Some(t_warn), Some(f_warn)) = (entry.t_warn, entry.f_warn) {
            if stats.rejects(t_warn, f_warn) {
                self.warnings_detected += 1;
                self.last_status = DriftStatus::Warning;
                return self.last_status;
            }
        }

        self.last_status = DriftStatus::Stable;
        self.last_status
    }
}

/// Number of cut-table entries prefetched per lock acquisition on the batch
/// path. The window length advances by at most one per element, so a chunk
/// of this size serves at least this many elements before the next lock.
const ENTRY_PREFETCH: usize = 128;

/// Serialization format version of [`Optwin`]'s state snapshot.
const SNAPSHOT_VERSION: u64 = 1;

/// Serializes a raw `WindowMoments` accumulator as a 4-element array.
fn moments_to_value(raw: (u64, f64, f64, f64)) -> serde::Value {
    serde::Value::Array(vec![
        serde::Value::UInt(raw.0),
        serde::Value::Float(raw.1),
        serde::Value::Float(raw.2),
        serde::Value::Float(raw.3),
    ])
}

/// Parses a 4-element array back into a raw `WindowMoments` accumulator.
fn moments_from_value(value: &serde::Value, field: &str) -> Result<(u64, f64, f64, f64)> {
    let invalid = |message: String| crate::CoreError::InvalidSnapshot { message };
    let serde::Value::Array(items) = value else {
        return Err(invalid(format!("`{field}` must be a 4-element array")));
    };
    if items.len() != 4 {
        return Err(invalid(format!(
            "`{field}` must have 4 elements, got {}",
            items.len()
        )));
    }
    let count = <u64 as serde::Deserialize>::from_value(&items[0])
        .map_err(|e| invalid(format!("`{field}[0]`: {e}")))?;
    let mut floats = [0.0; 3];
    for (k, slot) in floats.iter_mut().enumerate() {
        // Non-finite accumulators restore verbatim: a window fed ±1e300
        // legitimately saturates its sum-of-squares to +inf, and restore
        // must accept every state `snapshot_state` can emit.
        *slot = <f64 as serde::Deserialize>::from_value(&items[k + 1])
            .map_err(|e| invalid(format!("`{field}[{}]`: {e}", k + 1)))?;
    }
    Ok((count, floats[0], floats[1], floats[2]))
}

use crate::snapshot::{check_version, field as snapshot_field, invalid as invalid_snapshot};

impl DriftDetector for Optwin {
    fn add_element(&mut self, value: f64) -> DriftStatus {
        self.push_value(value);

        // Not enough data yet (Algorithm 1, lines 3–4).
        if self.window.len() < self.config.w_min {
            self.last_status = DriftStatus::Stable;
            return self.last_status;
        }

        // Optimal cut lookup and split maintenance (lines 7–10).
        let entry = self
            .cut
            .entry(self.window.len())
            .unwrap_or_else(|_| Self::fallback_entry(self.window.len()));
        self.evaluate_window(&entry)
    }

    /// Native batch ingestion: identical decisions to the element-wise fold,
    /// restructured into two run types so the per-element work is branch-free:
    ///
    /// * **Warm-up runs** — while the window stays below `w_min` even after
    ///   the push, no evaluation can happen. The whole run is appended with
    ///   one [`SplitWindow::push_slice`] (two `copy_from_slice` calls plus a
    ///   vectorizable moments kernel) and a branch-free non-binary count,
    ///   instead of a per-element `push_value` + length check.
    /// * **Evaluate runs** — cut-table entries are prefetched in contiguous
    ///   chunks (`ENTRY_PREFETCH` — 128 — per read-lock acquisition instead
    ///   of one) into a scratch buffer that persists across batches, so
    ///   steady-state ingestion allocates nothing and the shared-table lock
    ///   is off the hot loop entirely.
    fn add_batch(&mut self, values: &[f64]) -> BatchOutcome {
        let mut outcome = BatchOutcome::with_len(values.len());
        let w_min = self.config.w_min;
        let w_max = self.config.w_max;

        let mut i = 0usize;
        while i < values.len() {
            let len = self.window.len();
            if len + 1 < w_min {
                // Warm-up run: every element in it leaves the window strictly
                // below w_min, so the scalar path would record Stable for
                // each. No eviction is possible (len < w_min − 1 < w_max).
                let take = (w_min - 1 - len).min(values.len() - i);
                let run = &values[i..i + take];
                self.window.push_slice(run);
                self.non_binary_in_window += run
                    .iter()
                    .map(|&v| usize::from(!Self::is_binary(v)))
                    .sum::<usize>();
                self.elements_seen += take as u64;
                self.last_status = DriftStatus::Stable;
                outcome.record(i + take - 1, DriftStatus::Stable);
                i += take;
                continue;
            }

            self.push_value(values[i]);
            let w = self.window.len();
            let entry = if w >= self.entry_scratch_start
                && w - self.entry_scratch_start < self.entry_scratch.len()
            {
                self.entry_scratch[w - self.entry_scratch_start]
            } else {
                let hi = (w + ENTRY_PREFETCH - 1).min(w_max);
                match self.cut.entries_range_into(w, hi, &mut self.entry_scratch) {
                    Ok(()) => {
                        self.entry_scratch_start = w;
                        self.entry_scratch[0]
                    }
                    Err(_) => {
                        self.entry_scratch.clear();
                        self.entry_scratch_start = usize::MAX;
                        Self::fallback_entry(w)
                    }
                }
            };
            outcome.record(i, self.evaluate_window(&entry));
            i += 1;
        }
        outcome
    }

    fn reset(&mut self) {
        self.window.clear();
        self.non_binary_in_window = 0;
        self.last_status = DriftStatus::Stable;
    }

    fn name(&self) -> &'static str {
        "OPTWIN"
    }

    fn elements_seen(&self) -> u64 {
        self.elements_seen
    }

    fn drifts_detected(&self) -> u64 {
        self.drifts_detected
    }

    fn supports_real_valued_input(&self) -> bool {
        true
    }

    /// Struct size plus the eagerly allocated `w_max`-sized window ring and
    /// the cut-entry scratch buffer. The shared `Arc<CutTable>` is excluded:
    /// one table serves every detector built from the same configuration
    /// (see [`Optwin::with_shared_table`]), so it is fleet-amortized cost,
    /// not per-stream cost.
    fn mem_footprint(&self) -> usize {
        std::mem::size_of_val(self)
            + self.window.heap_bytes()
            + self.entry_scratch.capacity() * std::mem::size_of::<CutEntry>()
    }

    /// Serializes the full mutable state: window contents, split point, the
    /// two raw moment accumulators (bit-exact — see
    /// [`SplitWindow::from_state`]), the binary-content counter, and the
    /// lifetime counters. The immutable configuration and the cut table are
    /// *not* serialized; restoration happens into a detector constructed with
    /// the same configuration (`w_max` is embedded for validation).
    fn snapshot_state(&self) -> Option<serde::Value> {
        self.snapshot_state_encoded(crate::SnapshotEncoding::Json)
    }

    /// [`Optwin::snapshot_state`] with an explicit window layout: the
    /// (potentially `w_max`-sized) window serializes as a JSON array or a
    /// compact binary blob; everything else is scalar and identical in both
    /// layouts.
    fn snapshot_state_encoded(&self, encoding: crate::SnapshotEncoding) -> Option<serde::Value> {
        use serde::Serialize as _;
        Some(serde::Value::Object(vec![
            ("version".to_string(), serde::Value::UInt(SNAPSHOT_VERSION)),
            (
                "w_max".to_string(),
                serde::Value::UInt(self.config.w_max as u64),
            ),
            (
                "window".to_string(),
                crate::snapshot::f64_seq_value(encoding, &self.window.to_vec()),
            ),
            (
                "split".to_string(),
                serde::Value::UInt(self.window.split() as u64),
            ),
            (
                "hist_moments".to_string(),
                moments_to_value(self.window.hist_moments_raw()),
            ),
            (
                "new_moments".to_string(),
                moments_to_value(self.window.new_moments_raw()),
            ),
            (
                "non_binary_in_window".to_string(),
                serde::Value::UInt(self.non_binary_in_window as u64),
            ),
            ("last_status".to_string(), self.last_status.to_value()),
            (
                "elements_seen".to_string(),
                serde::Value::UInt(self.elements_seen),
            ),
            (
                "drifts_detected".to_string(),
                serde::Value::UInt(self.drifts_detected),
            ),
            (
                "warnings_detected".to_string(),
                serde::Value::UInt(self.warnings_detected),
            ),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<()> {
        let invalid = |message: String| invalid_snapshot(message);
        check_version(state, SNAPSHOT_VERSION, "OPTWIN")?;
        let w_max: u64 = snapshot_field(state, "w_max")?;
        if w_max != self.config.w_max as u64 {
            return Err(invalid(format!(
                "snapshot was taken with w_max = {w_max}, detector has w_max = {}",
                self.config.w_max
            )));
        }
        // Window elements are raw user input and restore verbatim —
        // `add_element` never rejected them, so restore cannot either.
        let values: Vec<f64> = crate::snapshot::f64_seq_field(state, "window")?;
        let split = usize::try_from(snapshot_field::<u64>(state, "split")?)
            .map_err(|_| invalid("`split` out of range".to_string()))?;
        let hist_raw = moments_from_value(
            state
                .get("hist_moments")
                .ok_or_else(|| invalid("missing field `hist_moments`".to_string()))?,
            "hist_moments",
        )?;
        let new_raw = moments_from_value(
            state
                .get("new_moments")
                .ok_or_else(|| invalid("missing field `new_moments`".to_string()))?,
            "new_moments",
        )?;
        let window = SplitWindow::from_state(self.config.w_max, &values, split, hist_raw, new_raw)
            .ok_or_else(|| {
                invalid(format!(
                    "inconsistent window state (len {}, split {split}, capacity {})",
                    values.len(),
                    self.config.w_max
                ))
            })?;

        let non_binary = usize::try_from(snapshot_field::<u64>(state, "non_binary_in_window")?)
            .map_err(|_| invalid("`non_binary_in_window` out of range".to_string()))?;
        if non_binary > values.len() {
            return Err(invalid(format!(
                "non_binary_in_window ({non_binary}) exceeds window length ({})",
                values.len()
            )));
        }
        // Parse everything before assigning anything: a failure below must
        // leave the detector exactly as it was, never half-restored.
        let last_status: DriftStatus = snapshot_field(state, "last_status")?;
        let elements_seen: u64 = snapshot_field(state, "elements_seen")?;
        let drifts_detected: u64 = snapshot_field(state, "drifts_detected")?;
        let warnings_detected: u64 = snapshot_field(state, "warnings_detected")?;

        self.window = window;
        self.non_binary_in_window = non_binary;
        self.last_status = last_status;
        self.elements_seen = elements_seen;
        self.drifts_detected = drifts_detected;
        self.warnings_detected = warnings_detected;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorExt;

    fn small_config(rho: f64) -> OptwinConfig {
        OptwinConfig::builder()
            .robustness(rho)
            .max_window(1_000)
            .build()
            .unwrap()
    }

    /// Deterministic pseudo-noise in [-0.5, 0.5) used to avoid zero variances
    /// without pulling in a RNG dependency.
    fn jitter(i: u64) -> f64 {
        let x = i
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    #[test]
    fn no_detection_before_w_min() {
        let mut d = Optwin::new(small_config(0.5)).unwrap();
        for i in 0..29 {
            assert_eq!(
                d.add_element(if i % 2 == 0 { 0.0 } else { 1.0 }),
                DriftStatus::Stable
            );
        }
        assert_eq!(d.window_len(), 29);
    }

    #[test]
    fn stationary_stream_produces_no_drift() {
        let mut d = Optwin::new(small_config(0.5)).unwrap();
        // Stationary noisy error rate around 0.2.
        for i in 0..5_000u64 {
            let x = 0.2 + 0.05 * jitter(i);
            let status = d.add_element(x);
            assert_ne!(status, DriftStatus::Drift, "false positive at element {i}");
        }
        assert_eq!(d.drifts_detected(), 0);
    }

    #[test]
    fn sudden_mean_increase_is_detected_quickly() {
        let mut d = Optwin::new(small_config(0.5)).unwrap();
        let mut detected_at = None;
        for i in 0..3_000u64 {
            let base = if i < 1_500 { 0.10 } else { 0.45 };
            let x = base + 0.05 * jitter(i);
            if d.add_element(x) == DriftStatus::Drift {
                detected_at = Some(i);
                break;
            }
        }
        let at = detected_at.expect("drift must be detected");
        assert!(at >= 1_500, "false positive at {at}");
        assert!(
            at < 1_500 + 400,
            "detection delay too large: {}",
            at - 1_500
        );
    }

    #[test]
    fn variance_only_change_is_detected() {
        // The paper's motivating example: identical means, very different
        // spread. ADWIN-style mean-only detectors cannot see this.
        let mut d = Optwin::new(
            OptwinConfig::builder()
                .robustness(0.5)
                .max_window(1_000)
                .direction(DriftDirection::Both)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut detected_at = None;
        for i in 0..3_000u64 {
            let x = if i < 1_500 {
                // Mean 0.5, small spread.
                0.5 + 0.1 * jitter(i)
            } else {
                // Mean 0.5, extreme spread (alternating 0 / 1).
                if i % 2 == 0 {
                    0.0
                } else {
                    1.0
                }
            };
            if d.add_element(x) == DriftStatus::Drift {
                detected_at = Some(i);
                break;
            }
        }
        let at = detected_at.expect("variance drift must be detected");
        assert!(at >= 1_500, "false positive at {at}");
        assert!(at < 1_800, "variance detection delay too large: {at}");
    }

    #[test]
    fn degradation_only_ignores_improvement() {
        // Error rate drops sharply; with the default degradation-only gate no
        // drift should be reported.
        let mut d = Optwin::new(small_config(0.5)).unwrap();
        for i in 0..3_000u64 {
            let base = if i < 1_500 { 0.45 } else { 0.10 };
            let x = base + 0.05 * jitter(i);
            assert_ne!(
                d.add_element(x),
                DriftStatus::Drift,
                "improvement flagged as drift at {i}"
            );
        }
        // The symmetric configuration does flag it.
        let mut d = Optwin::new(
            OptwinConfig::builder()
                .robustness(0.5)
                .max_window(1_000)
                .direction(DriftDirection::Both)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut found = false;
        for i in 0..3_000u64 {
            let base = if i < 1_500 { 0.45 } else { 0.10 };
            let x = base + 0.05 * jitter(i);
            if d.add_element(x) == DriftStatus::Drift {
                found = true;
                assert!(i >= 1_500);
                break;
            }
        }
        assert!(found, "symmetric detector must flag the improvement");
    }

    #[test]
    fn detector_resets_after_drift_and_keeps_working() {
        let mut d = Optwin::new(small_config(1.0)).unwrap();
        let mut detections = Vec::new();
        for i in 0..6_000u64 {
            // Three regimes; two upward drifts.
            let base = match i {
                0..=1_999 => 0.05,
                2_000..=3_999 => 0.30,
                _ => 0.60,
            };
            let x = (base + 0.05 * jitter(i)).clamp(0.0, 1.0);
            if d.add_element(x) == DriftStatus::Drift {
                detections.push(i);
            }
        }
        assert_eq!(d.drifts_detected() as usize, detections.len());
        assert!(
            detections.len() >= 2,
            "expected both drifts, got {detections:?}"
        );
        assert!(detections.iter().any(|&i| (2_000..2_600).contains(&i)));
        assert!(detections.iter().any(|&i| (4_000..4_600).contains(&i)));
        // After a detection the window restarts.
        assert!(d.window_len() < 6_000);
    }

    #[test]
    fn warning_precedes_drift_for_gradual_change() {
        let mut d = Optwin::new(small_config(0.5)).unwrap();
        let mut first_warning = None;
        let mut first_drift = None;
        for i in 0..6_000u64 {
            // Slow linear ramp from 0.1 to 0.5 between 2000 and 4000.
            let base = if i < 2_000 {
                0.1
            } else if i < 4_000 {
                0.1 + 0.4 * ((i - 2_000) as f64 / 2_000.0)
            } else {
                0.5
            };
            let x = (base + 0.04 * jitter(i)).clamp(0.0, 1.0);
            match d.add_element(x) {
                DriftStatus::Warning if first_warning.is_none() => first_warning = Some(i),
                DriftStatus::Drift if first_drift.is_none() => {
                    first_drift = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let drift = first_drift.expect("gradual drift must eventually be detected");
        assert!(drift >= 2_000);
        if let Some(w) = first_warning {
            assert!(w <= drift, "warning should not come after the drift");
        }
        assert!(d.warnings_detected() > 0 || first_warning.is_none());
    }

    #[test]
    fn shared_cut_table_between_detectors() {
        let config = small_config(0.5);
        let table = CutTable::shared(&config).unwrap();
        let mut d1 = Optwin::with_cut_table(config.clone(), Arc::clone(&table)).unwrap();
        let mut d2 = Optwin::with_cut_table(config, table).unwrap();
        // Identical inputs produce identical outputs.
        for i in 0..2_000u64 {
            let base = if i < 1_000 { 0.1 } else { 0.5 };
            let x = base + 0.05 * jitter(i);
            assert_eq!(d1.add_element(x), d2.add_element(x));
        }
        assert_eq!(d1.drifts_detected(), d2.drifts_detected());
    }

    #[test]
    fn mismatched_cut_table_rejected() {
        let config_small = small_config(0.5);
        let config_big = OptwinConfig::builder()
            .robustness(0.5)
            .max_window(2_000)
            .build()
            .unwrap();
        let table = CutTable::shared(&config_small).unwrap();
        assert!(Optwin::with_cut_table(config_big, table).is_err());
    }

    #[test]
    fn manual_reset_clears_window_but_not_counters() {
        let mut d = Optwin::new(small_config(0.5)).unwrap();
        for i in 0..100u64 {
            d.add_element(0.2 + 0.01 * jitter(i));
        }
        assert_eq!(d.elements_seen(), 100);
        d.reset();
        assert_eq!(d.window_len(), 0);
        assert_eq!(d.elements_seen(), 100);
        assert_eq!(d.last_status(), DriftStatus::Stable);
    }

    #[test]
    fn scan_helper_reports_indices() {
        let mut d = Optwin::new(small_config(1.0)).unwrap();
        let stream: Vec<f64> = (0..2_000u64)
            .map(|i| {
                let base = if i < 1_000 { 0.05 } else { 0.6 };
                (base + 0.05 * jitter(i)).clamp(0.0, 1.0)
            })
            .collect();
        let hits = d.scan(&stream);
        assert!(!hits.is_empty());
        assert!(hits[0] >= 1_000);
    }

    /// The core tentpole guarantee: the native batch path makes byte-for-byte
    /// the same decisions as the element-wise fold, across drift resets,
    /// window saturation and every batch split.
    #[test]
    fn add_batch_is_identical_to_element_fold() {
        let stream: Vec<f64> = (0..6_000u64)
            .map(|i| {
                let base = match i {
                    0..=1_999 => 0.05,
                    2_000..=3_999 => 0.30,
                    _ => 0.60,
                };
                (base + 0.05 * jitter(i)).clamp(0.0, 1.0)
            })
            .collect();

        for &chunk in &[1usize, 7, 128, 1_000, 6_000] {
            let mut scalar = Optwin::new(small_config(0.5)).unwrap();
            let mut batched = Optwin::new(small_config(0.5)).unwrap();

            let mut scalar_drifts = Vec::new();
            let mut scalar_warnings = Vec::new();
            for (i, &x) in stream.iter().enumerate() {
                match scalar.add_element(x) {
                    DriftStatus::Drift => scalar_drifts.push(i),
                    DriftStatus::Warning => scalar_warnings.push(i),
                    DriftStatus::Stable => {}
                }
            }

            let mut batch_drifts = Vec::new();
            let mut batch_warnings = Vec::new();
            for (k, xs) in stream.chunks(chunk).enumerate() {
                let outcome = batched.add_batch(xs);
                batch_drifts.extend(outcome.drift_indices.iter().map(|&i| k * chunk + i));
                batch_warnings.extend(outcome.warning_indices.iter().map(|&i| k * chunk + i));
            }

            assert_eq!(batch_drifts, scalar_drifts, "chunk = {chunk}");
            assert_eq!(batch_warnings, scalar_warnings, "chunk = {chunk}");
            assert_eq!(batched.elements_seen(), scalar.elements_seen());
            assert_eq!(batched.drifts_detected(), scalar.drifts_detected());
            assert_eq!(batched.warnings_detected(), scalar.warnings_detected());
            assert_eq!(batched.window_len(), scalar.window_len());
            assert_eq!(batched.last_status(), scalar.last_status());
        }
    }

    #[test]
    fn add_batch_saturated_window_stays_equivalent() {
        // Window pinned at w_max for most of the run: exercises the
        // single-entry prefetch chunk and ring-buffer eviction.
        let config = OptwinConfig::builder()
            .robustness(0.5)
            .max_window(200)
            .build()
            .unwrap();
        let stream: Vec<f64> = (0..2_000u64).map(|i| 0.3 + 0.1 * jitter(i)).collect();
        let mut scalar = Optwin::new(config.clone()).unwrap();
        let mut batched = Optwin::new(config).unwrap();
        for &x in &stream {
            scalar.add_element(x);
        }
        let outcome = batched.add_batch(&stream);
        assert_eq!(outcome.len, stream.len());
        assert_eq!(batched.window_len(), scalar.window_len());
        assert_eq!(batched.drifts_detected(), scalar.drifts_detected());
        assert!((batched.hist_mean() - scalar.hist_mean()).abs() < 1e-15);
        assert!((batched.new_mean() - scalar.new_mean()).abs() < 1e-15);
    }

    #[test]
    fn shared_table_constructor_uses_the_global_registry() {
        let config = OptwinConfig::builder()
            .robustness(0.375)
            .max_window(333)
            .build()
            .unwrap();
        let d1 = Optwin::with_shared_table(config.clone()).unwrap();
        let d2 = Optwin::with_shared_table(config).unwrap();
        assert!(Arc::ptr_eq(&d1.cut_table(), &d2.cut_table()));
    }

    #[test]
    fn snapshot_restore_resumes_with_identical_decisions() {
        let stream: Vec<f64> = (0..6_000u64)
            .map(|i| {
                let base = match i {
                    0..=1_999 => 0.05,
                    2_000..=3_999 => 0.30,
                    _ => 0.60,
                };
                (base + 0.05 * jitter(i)).clamp(0.0, 1.0)
            })
            .collect();

        // Snapshot at several cut points, including right after a drift reset
        // (~2_100) and mid-saturation, in both window layouts.
        for encoding in [
            crate::SnapshotEncoding::Json,
            crate::SnapshotEncoding::Binary,
        ] {
            for &cut in &[0usize, 17, 1_000, 2_100, 4_500] {
                let mut original = Optwin::new(small_config(0.5)).unwrap();
                original.add_batch(&stream[..cut]);
                let state = original
                    .snapshot_state_encoded(encoding)
                    .expect("OPTWIN supports snapshots");
                if encoding == crate::SnapshotEncoding::Binary && cut > 0 {
                    assert!(
                        matches!(state.get("window"), Some(serde::Value::Str(_))),
                        "binary layout embeds the window as a blob string"
                    );
                }

                // Round-trip the state value through the crate's own accessors
                // to mimic what an engine-level persistence layer does.
                let mut restored = Optwin::new(small_config(0.5)).unwrap();
                restored.restore_state(&state).unwrap();

                assert_eq!(restored.window_len(), original.window_len());
                assert_eq!(restored.elements_seen(), original.elements_seen());
                assert_eq!(restored.drifts_detected(), original.drifts_detected());

                let rest = &stream[cut..];
                let a = original.add_batch(rest);
                let b = restored.add_batch(rest);
                assert_eq!(a, b, "divergence after restoring at {cut} ({encoding:?})");
                assert_eq!(original.drifts_detected(), restored.drifts_detected());
                assert_eq!(original.warnings_detected(), restored.warnings_detected());
                assert_eq!(original.last_status(), restored.last_status());
                assert_eq!(
                    original.hist_mean().to_bits(),
                    restored.hist_mean().to_bits()
                );
            }
        }
    }

    #[test]
    fn restore_rejects_bad_snapshots() {
        let mut d = Optwin::new(small_config(0.5)).unwrap();
        // Not an object.
        assert!(matches!(
            d.restore_state(&serde::Value::Null),
            Err(crate::CoreError::InvalidSnapshot { .. })
        ));
        // Wrong w_max.
        let mut other = Optwin::new(
            OptwinConfig::builder()
                .robustness(0.5)
                .max_window(500)
                .build()
                .unwrap(),
        )
        .unwrap();
        other.add_batch(&[0.1, 0.2, 0.3]);
        let state = other.snapshot_state().unwrap();
        let err = d.restore_state(&state).unwrap_err();
        assert!(err.to_string().contains("w_max"));
        // Tampered version.
        let serde::Value::Object(mut fields) = state.clone() else {
            panic!("snapshot must be an object")
        };
        for (k, v) in &mut fields {
            if k == "version" {
                *v = serde::Value::UInt(99);
            }
        }
        let err = other
            .restore_state(&serde::Value::Object(fields))
            .unwrap_err();
        assert!(err.to_string().contains("version"));

        // Non-finite moment accumulators restore verbatim (saturation is a
        // reachable live state, not corruption) and round-trip bit-exactly.
        let serde::Value::Object(mut fields) = state.clone() else {
            panic!("snapshot must be an object")
        };
        for (k, v) in &mut fields {
            if k == "new_moments" {
                let serde::Value::Array(items) = v else {
                    panic!("moments must be an array")
                };
                items[2] = serde::Value::Float(f64::INFINITY);
                items[3] = serde::Value::Float(f64::NAN);
            }
        }
        let saturated = serde::Value::Object(fields);
        other.restore_state(&saturated).unwrap();
        let round_tripped = other.snapshot_state().unwrap();
        let moments = round_tripped.get("new_moments").unwrap();
        let serde::Value::Array(items) = moments else {
            panic!("moments must be an array")
        };
        assert!(matches!(items[2], serde::Value::Float(x) if x == f64::INFINITY));
        assert!(matches!(items[3], serde::Value::Float(x) if x.is_nan()));

        // A failure after the window has been parsed must leave the detector
        // untouched (no half-restored state): advance the detector past the
        // snapshot point, then attempt a restore whose trailing counter
        // field is missing.
        let serde::Value::Object(fields) = state else {
            panic!("snapshot must be an object")
        };
        let truncated: Vec<(String, serde::Value)> = fields
            .into_iter()
            .filter(|(k, _)| k != "elements_seen")
            .collect();
        other.add_batch(&[0.4, 0.45, 0.5]);
        let before_window = other.window_len();
        let before_elements = other.elements_seen();
        assert_ne!(before_window, 3, "detector must have diverged");
        let err = other
            .restore_state(&serde::Value::Object(truncated))
            .unwrap_err();
        assert!(err.to_string().contains("elements_seen"));
        assert_eq!(other.window_len(), before_window);
        assert_eq!(other.elements_seen(), before_elements);
    }

    #[test]
    fn metadata_accessors() {
        let d = Optwin::with_defaults().unwrap();
        assert_eq!(d.name(), "OPTWIN");
        assert!(d.supports_real_valued_input());
        assert_eq!(d.config().w_max, 25_000);
        assert_eq!(d.window_len(), 0);
        assert_eq!(d.last_status(), DriftStatus::Stable);
        assert_eq!(d.hist_mean(), 0.0);
        assert_eq!(d.new_mean(), 0.0);
        let table = d.cut_table();
        assert_eq!(table.w_max(), 25_000);
    }
}
