//! OPTWIN configuration.

use crate::{CoreError, Result};

/// Which direction of change should be reported as a drift.
///
/// The paper's Algorithm 1 is symmetric (any significant change in mean or
/// standard deviation is a drift), but §3.4 notes that the implementation
/// used in the experiments only reports a drift when the learner got *worse*
/// (`μ_new ≥ μ_hist`), because that is when retraining is useful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriftDirection {
    /// Only flag drifts where the error mean increased (the paper's
    /// experimental setting; the default).
    #[default]
    DegradationOnly,
    /// Flag drifts in either direction (the setting analysed by
    /// Theorem 3.1).
    Both,
}

/// Configuration for the [`crate::Optwin`] detector.
///
/// Use [`OptwinConfig::builder`] to construct one; the builder validates all
/// parameters and fills in the paper's defaults (`δ = 0.99`, `ρ = 0.5`,
/// `w_min = 30`, `w_max = 25 000`, `η = 1e-5`).
#[derive(Debug, Clone, PartialEq)]
pub struct OptwinConfig {
    /// Confidence level δ ∈ (0, 1) for the drift detection. Each of the four
    /// internal test applications uses `δ' = δ^(1/4)`.
    pub delta: f64,
    /// Robustness ρ ∈ (0, ∞): the minimum ratio by which `μ_new` must vary
    /// relative to `σ_hist` to count as a concept drift.
    pub rho: f64,
    /// Minimum window size before any detection is attempted (the paper
    /// fixes this to 30).
    pub w_min: usize,
    /// Maximum window size `w_max ∈ [w_min, ∞)`.
    pub w_max: usize,
    /// Small stabiliser added to both standard deviations in the f-test to
    /// avoid division by zero (the paper uses `1e-5`).
    pub eta: f64,
    /// Drift direction filter (see [`DriftDirection`]).
    pub direction: DriftDirection,
    /// Optional warning confidence level. When set (e.g. `0.95`), the
    /// detector reports [`crate::DriftStatus::Warning`] when the tests reject
    /// at this relaxed confidence but not yet at `delta`. `None` disables
    /// warning reporting.
    pub warning_delta: Option<f64>,
}

impl Default for OptwinConfig {
    fn default() -> Self {
        Self {
            delta: 0.99,
            rho: 0.5,
            w_min: 30,
            w_max: 25_000,
            eta: 1e-5,
            direction: DriftDirection::DegradationOnly,
            warning_delta: Some(0.95),
        }
    }
}

impl OptwinConfig {
    /// Starts building a configuration from the paper's defaults.
    #[must_use]
    pub fn builder() -> OptwinConfigBuilder {
        OptwinConfigBuilder::default()
    }

    /// The per-test confidence `δ' = δ^(1/4)` (§3.3 of the paper: two tests
    /// are used to find the cut and two to check it).
    #[must_use]
    pub fn delta_prime(&self) -> f64 {
        self.delta.powf(0.25)
    }

    /// The per-test warning confidence, if warnings are enabled.
    #[must_use]
    pub fn warning_delta_prime(&self) -> Option<f64> {
        self.warning_delta.map(|d| d.powf(0.25))
    }

    /// Validates every field, returning a description of the first violation
    /// found.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if any parameter is out of range.
    pub fn validate(&self) -> Result<()> {
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(CoreError::InvalidConfig {
                field: "delta",
                message: format!("must lie in (0, 1), got {}", self.delta),
            });
        }
        if let Some(w) = self.warning_delta {
            if !(w > 0.0 && w < 1.0) {
                return Err(CoreError::InvalidConfig {
                    field: "warning_delta",
                    message: format!("must lie in (0, 1), got {w}"),
                });
            }
            if w >= self.delta {
                return Err(CoreError::InvalidConfig {
                    field: "warning_delta",
                    message: format!("must be strictly below delta ({}), got {w}", self.delta),
                });
            }
        }
        if !(self.rho > 0.0) || !self.rho.is_finite() {
            return Err(CoreError::InvalidConfig {
                field: "rho",
                message: format!("must be positive and finite, got {}", self.rho),
            });
        }
        if self.w_min < 5 {
            return Err(CoreError::InvalidConfig {
                field: "w_min",
                message: format!("must be at least 5, got {}", self.w_min),
            });
        }
        if self.w_max < self.w_min {
            return Err(CoreError::InvalidConfig {
                field: "w_max",
                message: format!(
                    "must be at least w_min ({}), got {}",
                    self.w_min, self.w_max
                ),
            });
        }
        if !(self.eta >= 0.0) || !self.eta.is_finite() {
            return Err(CoreError::InvalidConfig {
                field: "eta",
                message: format!("must be non-negative and finite, got {}", self.eta),
            });
        }
        Ok(())
    }
}

/// Builder for [`OptwinConfig`].
#[derive(Debug, Clone, Default)]
pub struct OptwinConfigBuilder {
    config: OptwinConfig,
}

impl OptwinConfigBuilder {
    /// Sets the detection confidence δ (default `0.99`).
    #[must_use]
    pub fn confidence(mut self, delta: f64) -> Self {
        self.config.delta = delta;
        self
    }

    /// Sets the robustness ρ (default `0.5`).
    #[must_use]
    pub fn robustness(mut self, rho: f64) -> Self {
        self.config.rho = rho;
        self
    }

    /// Sets the minimum window size (default `30`).
    #[must_use]
    pub fn min_window(mut self, w_min: usize) -> Self {
        self.config.w_min = w_min;
        self
    }

    /// Sets the maximum window size (default `25_000`).
    #[must_use]
    pub fn max_window(mut self, w_max: usize) -> Self {
        self.config.w_max = w_max;
        self
    }

    /// Sets the f-test stabiliser η (default `1e-5`).
    #[must_use]
    pub fn eta(mut self, eta: f64) -> Self {
        self.config.eta = eta;
        self
    }

    /// Sets the drift-direction filter (default
    /// [`DriftDirection::DegradationOnly`]).
    #[must_use]
    pub fn direction(mut self, direction: DriftDirection) -> Self {
        self.config.direction = direction;
        self
    }

    /// Enables warning reporting at the given confidence (default `0.95`), or
    /// disables it with `None`.
    #[must_use]
    pub fn warning_confidence(mut self, delta: Option<f64>) -> Self {
        self.config.warning_delta = delta;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if any parameter is out of range.
    pub fn build(self) -> Result<OptwinConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = OptwinConfig::default();
        assert_eq!(c.delta, 0.99);
        assert_eq!(c.rho, 0.5);
        assert_eq!(c.w_min, 30);
        assert_eq!(c.w_max, 25_000);
        assert_eq!(c.eta, 1e-5);
        assert_eq!(c.direction, DriftDirection::DegradationOnly);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn delta_prime_is_fourth_root() {
        let c = OptwinConfig::default();
        assert!((c.delta_prime() - 0.99_f64.powf(0.25)).abs() < 1e-15);
        assert!((c.warning_delta_prime().unwrap() - 0.95_f64.powf(0.25)).abs() < 1e-15);
    }

    #[test]
    fn builder_sets_all_fields() {
        let c = OptwinConfig::builder()
            .confidence(0.999)
            .robustness(0.1)
            .min_window(50)
            .max_window(500)
            .eta(1e-6)
            .direction(DriftDirection::Both)
            .warning_confidence(None)
            .build()
            .unwrap();
        assert_eq!(c.delta, 0.999);
        assert_eq!(c.rho, 0.1);
        assert_eq!(c.w_min, 50);
        assert_eq!(c.w_max, 500);
        assert_eq!(c.eta, 1e-6);
        assert_eq!(c.direction, DriftDirection::Both);
        assert_eq!(c.warning_delta, None);
    }

    #[test]
    fn rejects_invalid_values() {
        assert!(OptwinConfig::builder().confidence(0.0).build().is_err());
        assert!(OptwinConfig::builder().confidence(1.0).build().is_err());
        assert!(OptwinConfig::builder().robustness(0.0).build().is_err());
        assert!(OptwinConfig::builder()
            .robustness(f64::NAN)
            .build()
            .is_err());
        assert!(OptwinConfig::builder().min_window(2).build().is_err());
        assert!(OptwinConfig::builder()
            .min_window(100)
            .max_window(50)
            .build()
            .is_err());
        assert!(OptwinConfig::builder().eta(-1.0).build().is_err());
        assert!(OptwinConfig::builder()
            .warning_confidence(Some(0.999))
            .build()
            .is_err());
        assert!(OptwinConfig::builder()
            .warning_confidence(Some(1.5))
            .build()
            .is_err());
    }

    #[test]
    fn error_messages_name_the_field() {
        let err = OptwinConfig::builder().confidence(2.0).build().unwrap_err();
        assert!(err.to_string().contains("delta"));
        let err = OptwinConfig::builder()
            .min_window(100)
            .max_window(10)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("w_max"));
    }
}
