//! The common drift-detector interface shared by OPTWIN and every baseline.
//!
//! All detectors in this workspace (OPTWIN in this crate; ADWIN, DDM, EDDM,
//! STEPD, ECDD and the extensions in `optwin-baselines`) implement
//! [`DriftDetector`]. The contract is **batch-first**: production callers
//! hand the detector whole slices of observations via
//! [`DriftDetector::add_batch`] and receive a [`BatchOutcome`] summarising
//! where drifts and warnings fired; [`DriftDetector::add_element`] remains
//! the element-wise primitive the batch path is defined against. The two are
//! required to be *observationally identical*: `add_batch(xs)` must report
//! exactly the indices at which a fold of `add_element` over `xs` would have
//! returned [`DriftStatus::Drift`] (and likewise for warnings), leaving the
//! detector in the same state. The contract test-suite in
//! `tests/detector_contract.rs` enforces this for every detector the
//! workspace ships.

use serde::{Deserialize, Serialize};

use crate::snapshot::SnapshotEncoding;
use crate::CoreError;

/// Outcome of ingesting one element into a drift detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DriftStatus {
    /// No evidence of change.
    #[default]
    Stable,
    /// The detector's warning threshold was exceeded, but not its drift
    /// threshold. Callers typically start buffering data for a replacement
    /// model when this is reported.
    Warning,
    /// A concept drift was detected. Detectors reset their internal state
    /// when they report this, so the caller should likewise reset or retrain
    /// its learner.
    Drift,
}

impl DriftStatus {
    /// `true` if this status is [`DriftStatus::Drift`].
    #[must_use]
    pub fn is_drift(self) -> bool {
        self == DriftStatus::Drift
    }

    /// `true` if this status is [`DriftStatus::Warning`].
    #[must_use]
    pub fn is_warning(self) -> bool {
        self == DriftStatus::Warning
    }
}

/// Outcome of ingesting a batch of elements into a drift detector.
///
/// Indices are 0-based positions **within the batch**; callers tracking a
/// global stream position add their own offset.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchOutcome {
    /// Number of elements that were ingested.
    pub len: usize,
    /// Batch indices at which [`DriftStatus::Drift`] was reported.
    pub drift_indices: Vec<usize>,
    /// Batch indices at which [`DriftStatus::Warning`] was reported.
    pub warning_indices: Vec<usize>,
    /// The status reported for the final element (`Stable` for an empty
    /// batch).
    pub last_status: DriftStatus,
}

impl BatchOutcome {
    /// Creates an empty outcome for a batch of `len` elements.
    #[must_use]
    pub fn with_len(len: usize) -> Self {
        Self {
            len,
            ..Self::default()
        }
    }

    /// Number of drifts flagged in the batch.
    #[must_use]
    pub fn drifts(&self) -> usize {
        self.drift_indices.len()
    }

    /// `true` if at least one drift was flagged.
    #[must_use]
    pub fn has_drift(&self) -> bool {
        !self.drift_indices.is_empty()
    }

    /// Records the status of the element at `index`, maintaining all
    /// invariants. Intended for `add_batch` implementations.
    #[inline]
    pub fn record(&mut self, index: usize, status: DriftStatus) {
        match status {
            DriftStatus::Drift => self.drift_indices.push(index),
            DriftStatus::Warning => self.warning_indices.push(index),
            DriftStatus::Stable => {}
        }
        self.last_status = status;
    }
}

/// An online, error-rate-based concept-drift detector.
///
/// Implementations observe one value per learner prediction — a binary error
/// indicator (`0.0` = correct, `1.0` = wrong) or a real-valued loss — and
/// decide whether the distribution of those values has changed.
pub trait DriftDetector {
    /// Ingests one observation and returns the detector's verdict.
    ///
    /// Implementations must reset their own internal state when they return
    /// [`DriftStatus::Drift`] so that detection can resume immediately.
    fn add_element(&mut self, value: f64) -> DriftStatus;

    /// Ingests a whole slice of observations, reporting every drift and
    /// warning position within it.
    ///
    /// The default implementation folds [`DriftDetector::add_element`] over
    /// the slice. Implementations may override it with a faster native path
    /// (OPTWIN amortizes cut-table lookups across the slice; see
    /// `Optwin::add_batch`), but the override must be observationally
    /// identical to the fold — same indices, same final state, same
    /// counters.
    fn add_batch(&mut self, values: &[f64]) -> BatchOutcome {
        let mut outcome = BatchOutcome::with_len(values.len());
        for (i, &value) in values.iter().enumerate() {
            outcome.record(i, self.add_element(value));
        }
        outcome
    }

    /// Resets the detector to its initial state (as right after
    /// construction), discarding all buffered observations.
    fn reset(&mut self);

    /// A short, stable, human-readable name (e.g. `"OPTWIN"`, `"ADWIN"`).
    fn name(&self) -> &'static str;

    /// Total number of elements ingested since construction (not reset by
    /// drift detections).
    fn elements_seen(&self) -> u64;

    /// Number of drifts flagged since construction.
    fn drifts_detected(&self) -> u64;

    /// `true` if the detector accepts real-valued (non-binary) inputs.
    ///
    /// DDM, EDDM and ECDD are only defined for binary error streams; OPTWIN,
    /// ADWIN and STEPD accept arbitrary bounded real values.
    fn supports_real_valued_input(&self) -> bool {
        true
    }

    /// Serializes the detector's complete mutable state into a JSON-shaped
    /// [`serde::Value`] tree, or `None` if the detector does not support
    /// state snapshots.
    ///
    /// The contract is **exactness**: feeding a detector restored through
    /// [`DriftDetector::restore_state`] any further input must produce
    /// *identical* decisions (and counters) to feeding the original,
    /// uninterrupted detector the same input. Configuration is deliberately
    /// *not* part of the state — restoration happens into a detector freshly
    /// constructed with the same configuration (typically by the same
    /// factory), so only the stream-dependent state crosses the snapshot.
    ///
    /// The default implementation returns `None`; detectors opt in by
    /// overriding both this method and [`DriftDetector::restore_state`].
    fn snapshot_state(&self) -> Option<serde::Value> {
        None
    }

    /// [`DriftDetector::snapshot_state`] with an explicit layout for
    /// sequence-shaped state: [`SnapshotEncoding::Json`] serializes windows
    /// and bucket rows as plain JSON arrays (wire formats v1–v3), while
    /// [`SnapshotEncoding::Binary`] embeds them as compact base64 binary
    /// blobs (wire format v4; see [`crate::snapshot`]). Both layouts carry
    /// the identical raw state — restores are bit-exact either way — and
    /// [`DriftDetector::restore_state`] accepts both transparently.
    ///
    /// The default implementation ignores the encoding and returns
    /// [`DriftDetector::snapshot_state`], so custom detectors that only
    /// implement the JSON layout keep working inside v4 engine snapshots
    /// (their state simply stays JSON-shaped). Every shipped detector
    /// overrides this with a real binary layout.
    fn snapshot_state_encoded(&self, encoding: SnapshotEncoding) -> Option<serde::Value> {
        let _ = encoding;
        self.snapshot_state()
    }

    /// Approximate resident memory footprint of this detector in bytes:
    /// the size of the detector struct itself plus every heap buffer it
    /// owns (window rings, bucket rows, sorted mirrors, scratch space),
    /// counted at **capacity**, not length — capacity is what the
    /// allocator actually holds.
    ///
    /// Shared structures (OPTWIN's `Arc<CutTable>`, ECDD's process-wide
    /// control-limit cache) are deliberately excluded: they are amortized
    /// across a whole fleet and counting them per stream would overstate
    /// per-stream cost by orders of magnitude.
    ///
    /// The default implementation returns `size_of_val(self)` (correct for
    /// heap-free detectors — DDM, EDDM, Page–Hinkley and ECDD ship no
    /// per-instance heap buffers); detectors that own heap storage
    /// override it. The engine's hibernation tier uses this to surface
    /// resident bytes per stream and per shard.
    fn mem_footprint(&self) -> usize {
        std::mem::size_of_val(self)
    }

    /// Restores state captured by [`DriftDetector::snapshot_state`] (or
    /// [`DriftDetector::snapshot_state_encoded`], either layout) into this
    /// detector, which must have been freshly constructed with the same
    /// configuration as the snapshotted one.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SnapshotUnsupported`] when the detector does not
    /// implement snapshots (the default), or [`CoreError::InvalidSnapshot`]
    /// when the value tree does not describe a valid state for this
    /// detector's configuration.
    fn restore_state(&mut self, state: &serde::Value) -> std::result::Result<(), CoreError> {
        let _ = state;
        Err(CoreError::SnapshotUnsupported {
            detector: self.name(),
        })
    }
}

/// Extension helpers available on every [`DriftDetector`].
pub trait DetectorExt: DriftDetector {
    /// Feeds a whole slice of observations, returning the (0-based) indices
    /// at which a drift was flagged. Delegates to
    /// [`DriftDetector::add_batch`], so detectors with a native batch path
    /// are scanned at full speed.
    fn scan(&mut self, values: &[f64]) -> Vec<usize> {
        self.add_batch(values).drift_indices
    }
}

impl<T: DriftDetector + ?Sized> DetectorExt for T {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial detector that fires every `period` elements, used to test
    /// the trait helpers.
    struct Periodic {
        period: u64,
        seen: u64,
        drifts: u64,
    }

    impl DriftDetector for Periodic {
        fn add_element(&mut self, _value: f64) -> DriftStatus {
            self.seen += 1;
            if self.seen.is_multiple_of(self.period) {
                self.drifts += 1;
                DriftStatus::Drift
            } else {
                DriftStatus::Stable
            }
        }
        fn reset(&mut self) {
            self.seen = 0;
        }
        fn name(&self) -> &'static str {
            "periodic"
        }
        fn elements_seen(&self) -> u64 {
            self.seen
        }
        fn drifts_detected(&self) -> u64 {
            self.drifts
        }
    }

    #[test]
    fn status_helpers() {
        assert!(DriftStatus::Drift.is_drift());
        assert!(!DriftStatus::Stable.is_drift());
        assert!(DriftStatus::Warning.is_warning());
        assert!(!DriftStatus::Drift.is_warning());
        assert_eq!(DriftStatus::default(), DriftStatus::Stable);
    }

    #[test]
    fn scan_reports_drift_indices() {
        let mut d = Periodic {
            period: 3,
            seen: 0,
            drifts: 0,
        };
        let hits = d.scan(&[0.0; 10]);
        assert_eq!(hits, vec![2, 5, 8]);
        assert_eq!(d.drifts_detected(), 3);
    }

    #[test]
    fn default_add_batch_matches_element_fold() {
        let mut batched = Periodic {
            period: 3,
            seen: 0,
            drifts: 0,
        };
        let mut scalar = Periodic {
            period: 3,
            seen: 0,
            drifts: 0,
        };
        let xs = [0.0; 11];
        let outcome = batched.add_batch(&xs);
        let mut expected = Vec::new();
        for (i, &x) in xs.iter().enumerate() {
            if scalar.add_element(x) == DriftStatus::Drift {
                expected.push(i);
            }
        }
        assert_eq!(outcome.len, xs.len());
        assert_eq!(outcome.drift_indices, expected);
        assert_eq!(outcome.drifts(), 3);
        assert!(outcome.has_drift());
        assert_eq!(outcome.last_status, DriftStatus::Stable);
        assert_eq!(batched.elements_seen(), scalar.elements_seen());
        assert_eq!(batched.drifts_detected(), scalar.drifts_detected());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut d = Periodic {
            period: 2,
            seen: 0,
            drifts: 0,
        };
        let outcome = d.add_batch(&[]);
        assert_eq!(outcome, BatchOutcome::default());
        assert!(!outcome.has_drift());
        assert_eq!(d.elements_seen(), 0);
    }

    #[test]
    fn batch_outcome_record_tracks_statuses() {
        let mut o = BatchOutcome::with_len(3);
        o.record(0, DriftStatus::Stable);
        o.record(1, DriftStatus::Warning);
        o.record(2, DriftStatus::Drift);
        assert_eq!(o.warning_indices, vec![1]);
        assert_eq!(o.drift_indices, vec![2]);
        assert_eq!(o.last_status, DriftStatus::Drift);
    }

    #[test]
    fn snapshot_defaults_are_unsupported() {
        let mut d = Periodic {
            period: 2,
            seen: 0,
            drifts: 0,
        };
        assert!(d.snapshot_state().is_none());
        // The encoded variant delegates to `snapshot_state` by default, for
        // both encodings.
        assert!(d.snapshot_state_encoded(SnapshotEncoding::Json).is_none());
        assert!(d.snapshot_state_encoded(SnapshotEncoding::Binary).is_none());
        let err = d.restore_state(&serde::Value::Null).unwrap_err();
        assert!(matches!(err, CoreError::SnapshotUnsupported { .. }));
        assert!(err.to_string().contains("periodic"));
    }

    #[test]
    fn drift_status_serde_round_trip() {
        for status in [
            DriftStatus::Stable,
            DriftStatus::Warning,
            DriftStatus::Drift,
        ] {
            let value = status.to_value();
            assert_eq!(DriftStatus::from_value(&value).unwrap(), status);
        }
        assert!(DriftStatus::from_value(&serde::Value::Str("Bogus".into())).is_err());
    }

    #[test]
    fn trait_object_usable() {
        let mut d: Box<dyn DriftDetector> = Box::new(Periodic {
            period: 2,
            seen: 0,
            drifts: 0,
        });
        assert_eq!(d.add_element(0.0), DriftStatus::Stable);
        assert_eq!(d.add_element(0.0), DriftStatus::Drift);
        assert!(d.supports_real_valued_input());
        // DetectorExt::scan is usable through the trait object too.
        let hits = d.scan(&[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(hits, vec![1, 3]);
    }
}
