//! The common drift-detector interface shared by OPTWIN and every baseline.
//!
//! All detectors in this workspace (OPTWIN in this crate; ADWIN, DDM, EDDM,
//! STEPD, ECDD and the extensions in `optwin-baselines`) implement
//! [`DriftDetector`]: they ingest one error observation at a time and report
//! whether the stream is stable, in a warning zone, or has drifted.

/// Outcome of ingesting one element into a drift detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriftStatus {
    /// No evidence of change.
    #[default]
    Stable,
    /// The detector's warning threshold was exceeded, but not its drift
    /// threshold. Callers typically start buffering data for a replacement
    /// model when this is reported.
    Warning,
    /// A concept drift was detected. Detectors reset their internal state
    /// when they report this, so the caller should likewise reset or retrain
    /// its learner.
    Drift,
}

impl DriftStatus {
    /// `true` if this status is [`DriftStatus::Drift`].
    #[must_use]
    pub fn is_drift(self) -> bool {
        self == DriftStatus::Drift
    }

    /// `true` if this status is [`DriftStatus::Warning`].
    #[must_use]
    pub fn is_warning(self) -> bool {
        self == DriftStatus::Warning
    }
}

/// An online, error-rate-based concept-drift detector.
///
/// Implementations observe one value per learner prediction — a binary error
/// indicator (`0.0` = correct, `1.0` = wrong) or a real-valued loss — and
/// decide whether the distribution of those values has changed.
pub trait DriftDetector {
    /// Ingests one observation and returns the detector's verdict.
    ///
    /// Implementations must reset their own internal state when they return
    /// [`DriftStatus::Drift`] so that detection can resume immediately.
    fn add_element(&mut self, value: f64) -> DriftStatus;

    /// Resets the detector to its initial state (as right after
    /// construction), discarding all buffered observations.
    fn reset(&mut self);

    /// A short, stable, human-readable name (e.g. `"OPTWIN"`, `"ADWIN"`).
    fn name(&self) -> &'static str;

    /// Total number of elements ingested since construction (not reset by
    /// drift detections).
    fn elements_seen(&self) -> u64;

    /// Number of drifts flagged since construction.
    fn drifts_detected(&self) -> u64;

    /// `true` if the detector accepts real-valued (non-binary) inputs.
    ///
    /// DDM, EDDM and ECDD are only defined for binary error streams; OPTWIN,
    /// ADWIN and STEPD accept arbitrary bounded real values.
    fn supports_real_valued_input(&self) -> bool {
        true
    }
}

/// Extension helpers available on every [`DriftDetector`].
pub trait DetectorExt: DriftDetector {
    /// Feeds a whole slice of observations, returning the (0-based) indices
    /// at which a drift was flagged.
    fn scan(&mut self, values: &[f64]) -> Vec<usize> {
        let mut detections = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            if self.add_element(v) == DriftStatus::Drift {
                detections.push(i);
            }
        }
        detections
    }
}

impl<T: DriftDetector + ?Sized> DetectorExt for T {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial detector that fires every `period` elements, used to test
    /// the trait helpers.
    struct Periodic {
        period: u64,
        seen: u64,
        drifts: u64,
    }

    impl DriftDetector for Periodic {
        fn add_element(&mut self, _value: f64) -> DriftStatus {
            self.seen += 1;
            if self.seen % self.period == 0 {
                self.drifts += 1;
                DriftStatus::Drift
            } else {
                DriftStatus::Stable
            }
        }
        fn reset(&mut self) {
            self.seen = 0;
        }
        fn name(&self) -> &'static str {
            "periodic"
        }
        fn elements_seen(&self) -> u64 {
            self.seen
        }
        fn drifts_detected(&self) -> u64 {
            self.drifts
        }
    }

    #[test]
    fn status_helpers() {
        assert!(DriftStatus::Drift.is_drift());
        assert!(!DriftStatus::Stable.is_drift());
        assert!(DriftStatus::Warning.is_warning());
        assert!(!DriftStatus::Drift.is_warning());
        assert_eq!(DriftStatus::default(), DriftStatus::Stable);
    }

    #[test]
    fn scan_reports_drift_indices() {
        let mut d = Periodic {
            period: 3,
            seen: 0,
            drifts: 0,
        };
        let hits = d.scan(&[0.0; 10]);
        assert_eq!(hits, vec![2, 5, 8]);
        assert_eq!(d.drifts_detected(), 3);
    }

    #[test]
    fn trait_object_usable() {
        let mut d: Box<dyn DriftDetector> = Box::new(Periodic {
            period: 2,
            seen: 0,
            drifts: 0,
        });
        assert_eq!(d.add_element(0.0), DriftStatus::Stable);
        assert_eq!(d.add_element(0.0), DriftStatus::Drift);
        assert!(d.supports_real_valued_input());
        // DetectorExt::scan is usable through the trait object too.
        let hits = d.scan(&[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(hits, vec![1, 3]);
    }
}
