//! # optwin-core — the OPTWIN concept-drift detector
//!
//! This crate implements the paper's primary contribution: **OPTWIN**
//! ("OPTimal WINdow"), an error-rate–based concept-drift detector that keeps
//! a sliding window `W` of the errors produced by an online learner and, at
//! every step, splits `W` into a *historical* sub-window `W_hist` and a *new*
//! sub-window `W_new` at a provably optimal point ν. A drift is flagged when
//! either
//!
//! * the **means** of the two sub-windows differ according to Welch's
//!   unequal-variance *t*-test, or
//! * the **standard deviations** differ according to the variance-ratio
//!   *f*-test,
//!
//! each at confidence `δ' = δ^(1/4)`.
//!
//! The split point is "optimal" in the sense of Equation 1 of the paper: it
//! is the largest ν for which a mean shift of magnitude `ρ·σ_hist` is
//! guaranteed (with confidence δ) to be detected by the *t*-test, which
//! minimises the detection delay for drifts of at least that magnitude.
//! Because ν and the two critical values depend only on `|W|`, `δ` and `ρ`,
//! they are pre-computed per window length and looked up in O(1) on the hot
//! path, giving O(1) amortized cost per ingested element.
//!
//! # Quick start
//!
//! ```
//! use optwin_core::{DriftDetector, DriftStatus, Optwin, OptwinConfig};
//!
//! let config = OptwinConfig::builder()
//!     .confidence(0.99)
//!     .robustness(0.5)
//!     .max_window(2_000)
//!     .build()
//!     .unwrap();
//! let mut detector = Optwin::new(config).unwrap();
//!
//! // A learner that suddenly starts making many more errors.
//! let mut drift_at = None;
//! for i in 0..1_000u32 {
//!     let error_rate = if i < 500 { 0.05 } else { 0.60 };
//!     // Deterministic "noisy" error signal around the base rate.
//!     let x = error_rate + 0.01 * ((i % 7) as f64 - 3.0) / 3.0;
//!     if detector.add_element(x) == DriftStatus::Drift {
//!         drift_at = Some(i);
//!         break;
//!     }
//! }
//! let at = drift_at.expect("the mean shift must be detected");
//! assert!(at >= 500, "no false positive before the drift");
//! assert!(at < 700, "drift detected with a small delay, got {at}");
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]
// `!(x > 0.0)` (rather than `x <= 0.0`) is the workspace idiom for rejecting
// non-positive *and NaN* parameters in one comparison.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod config;
pub mod cut;
pub mod detector;
pub mod error;
pub mod optwin;
pub mod registry;
pub mod snapshot;
pub mod window;

pub use config::{DriftDirection, OptwinConfig, OptwinConfigBuilder};
pub use cut::{CutEntry, CutTable};
pub use detector::{BatchOutcome, DetectorExt, DriftDetector, DriftStatus};
pub use error::CoreError;
pub use optwin::Optwin;
pub use registry::CutTableRegistry;
pub use snapshot::SnapshotEncoding;
pub use window::SplitWindow;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
