//! Shared helpers for implementing
//! [`DriftDetector::snapshot_state`](crate::DriftDetector::snapshot_state) /
//! [`DriftDetector::restore_state`](crate::DriftDetector::restore_state).
//!
//! Every snapshot in the workspace is a JSON-shaped [`serde::Value`] object
//! with a `version` field and one entry per piece of mutable state. These
//! helpers centralise the field lookup, type conversion and validation
//! boilerplate so each detector's `restore_state` reads as a flat list of
//! `field(..)?` calls followed by a single all-or-nothing assignment block
//! (a failed restore must leave the detector untouched, never
//! half-restored).

use crate::CoreError;

/// Builds an [`CoreError::InvalidSnapshot`] with the given message.
pub fn invalid(message: impl Into<String>) -> CoreError {
    CoreError::InvalidSnapshot {
        message: message.into(),
    }
}

/// Looks up and deserializes a snapshot field, naming the field in every
/// error.
///
/// # Errors
///
/// Returns [`CoreError::InvalidSnapshot`] when the field is missing or its
/// value does not convert to `T`.
pub fn field<T: serde::Deserialize>(
    state: &serde::Value,
    name: &'static str,
) -> Result<T, CoreError> {
    let value = state
        .get(name)
        .ok_or_else(|| invalid(format!("missing field `{name}`")))?;
    T::from_value(value).map_err(|e| invalid(format!("field `{name}`: {e}")))
}

/// [`field`] for a `usize` stored as `u64` on the wire.
///
/// # Errors
///
/// Returns [`CoreError::InvalidSnapshot`] when the field is missing, not an
/// integer, or out of range for `usize`.
pub fn usize_field(state: &serde::Value, name: &'static str) -> Result<usize, CoreError> {
    usize::try_from(field::<u64>(state, name)?)
        .map_err(|_| invalid(format!("field `{name}` out of range for usize")))
}

/// [`field`] for an `f64` that must be finite. A NaN/Inf accumulator would
/// restore into a detector whose every statistical test silently evaluates
/// false, so non-finite values are rejected like any other corruption.
///
/// # Errors
///
/// Returns [`CoreError::InvalidSnapshot`] when the field is missing, not a
/// number, or not finite.
pub fn finite_field(state: &serde::Value, name: &'static str) -> Result<f64, CoreError> {
    let x: f64 = field(state, name)?;
    if !x.is_finite() {
        return Err(invalid(format!("field `{name}` is not finite")));
    }
    Ok(x)
}

/// Checks the snapshot's `version` field against the detector's current
/// format version.
///
/// # Errors
///
/// Returns [`CoreError::InvalidSnapshot`] when the field is missing or the
/// version does not match.
pub fn check_version(
    state: &serde::Value,
    expected: u64,
    detector: &'static str,
) -> Result<(), CoreError> {
    let version: u64 = field(state, "version")?;
    if version != expected {
        return Err(invalid(format!(
            "unsupported {detector} snapshot version {version} (expected {expected})"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> serde::Value {
        serde::Value::Object(vec![
            ("version".to_string(), serde::Value::UInt(3)),
            ("count".to_string(), serde::Value::UInt(7)),
            ("mean".to_string(), serde::Value::Float(0.25)),
            ("bad".to_string(), serde::Value::Float(f64::NAN)),
        ])
    }

    #[test]
    fn field_lookup_and_errors() {
        let s = state();
        assert_eq!(field::<u64>(&s, "count").unwrap(), 7);
        assert_eq!(usize_field(&s, "count").unwrap(), 7);
        assert_eq!(finite_field(&s, "mean").unwrap(), 0.25);
        let err = field::<u64>(&s, "missing").unwrap_err();
        assert!(err.to_string().contains("missing"));
        let err = field::<u64>(&s, "mean").unwrap_err();
        assert!(err.to_string().contains("mean"));
        let err = finite_field(&s, "bad").unwrap_err();
        assert!(err.to_string().contains("finite"));
    }

    #[test]
    fn version_check() {
        let s = state();
        assert!(check_version(&s, 3, "TEST").is_ok());
        let err = check_version(&s, 4, "TEST").unwrap_err();
        assert!(err.to_string().contains("TEST snapshot version 3"));
        let err = check_version(&serde::Value::Null, 1, "TEST").unwrap_err();
        assert!(err.to_string().contains("version"));
    }
}
