//! Shared helpers for implementing
//! [`DriftDetector::snapshot_state`](crate::DriftDetector::snapshot_state) /
//! [`DriftDetector::restore_state`](crate::DriftDetector::restore_state),
//! and the compact binary **window codec** behind snapshot wire format v4.
//!
//! Every snapshot in the workspace is a JSON-shaped [`serde::Value`] object
//! with a `version` field and one entry per piece of mutable state. These
//! helpers centralise the field lookup, type conversion and validation
//! boilerplate so each detector's `restore_state` reads as a flat list of
//! `field(..)?` calls followed by a single all-or-nothing assignment block
//! (a failed restore must leave the detector untouched, never
//! half-restored).
//!
//! # The window codec
//!
//! Detector windows (OPTWIN's [`crate::SplitWindow`], the KSWIN and STEPD
//! buffers, ADWIN's bucket rows) dominate snapshot size: serialized as JSON
//! number arrays they cost ~4–20 bytes per element, which balloons
//! million-stream engine snapshots at large `w_max`. The
//! [`SnapshotEncoding::Binary`] layout instead embeds each sequence as a
//! base64 string wrapping a small binary frame:
//!
//! ```text
//! magic "OWB4" · kind u8 · scale u8 · count u32 LE · checksum u32 LE · payload
//! ```
//!
//! where `kind` selects one of the payload codecs below and `checksum` is
//! FNV-1a over the header prefix (magic, kind, scale, count) *and* the
//! payload, so corruption anywhere in the frame fails loudly. The encoder
//! picks, per sequence, the smallest applicable codec:
//!
//! * **raw** — little-endian `f64` bit patterns, 8 bytes per element; the
//!   universal fallback, always bit-exact.
//! * **fixed-point delta** — when every value is exactly representable as
//!   `i / 10^scale` (verified bit-for-bit at encode time), the integers are
//!   delta- and zigzag-encoded as LEB128 varints. Monotone or
//!   slowly-varying low-precision sequences (error rates, bucket sums of
//!   binary streams) shrink to 1–2 bytes per element.
//! * **bit-packed** — sequences of exactly `0.0`/`1.0` (binary error
//!   streams, the paper's primary input) and `bool` windows pack to one
//!   *bit* per element.
//!
//! Decoding validates magic, kind, element count, payload length and
//! checksum, and reproduces the original values **bit-exactly** (fixed-point
//! eligibility is proven by round-tripping each value at encode time, so
//! decode performs the identical IEEE operations). The `*_seq_field` readers
//! accept both layouts — a JSON array (wire formats v1–v3) or a blob string
//! (v4) — so every older snapshot keeps restoring unchanged.

use crate::CoreError;

/// Builds an [`CoreError::InvalidSnapshot`] with the given message.
pub fn invalid(message: impl Into<String>) -> CoreError {
    CoreError::InvalidSnapshot {
        message: message.into(),
    }
}

/// Looks up and deserializes a snapshot field, naming the field in every
/// error.
///
/// # Errors
///
/// Returns [`CoreError::InvalidSnapshot`] when the field is missing or its
/// value does not convert to `T`.
pub fn field<T: serde::Deserialize>(
    state: &serde::Value,
    name: &'static str,
) -> Result<T, CoreError> {
    let value = state
        .get(name)
        .ok_or_else(|| invalid(format!("missing field `{name}`")))?;
    T::from_value(value).map_err(|e| invalid(format!("field `{name}`: {e}")))
}

/// [`field`] for a `usize` stored as `u64` on the wire.
///
/// # Errors
///
/// Returns [`CoreError::InvalidSnapshot`] when the field is missing, not an
/// integer, or out of range for `usize`.
pub fn usize_field(state: &serde::Value, name: &'static str) -> Result<usize, CoreError> {
    usize::try_from(field::<u64>(state, name)?)
        .map_err(|_| invalid(format!("field `{name}` out of range for usize")))
}

/// [`field`] for an `f64` accumulator. Non-finite values are accepted:
/// restore must round-trip every state its paired snapshot can emit, and a
/// detector fed overflow-adversarial inputs (`±1e300`) legitimately runs
/// with saturated `±inf` accumulators — bit-exact determinism holds either
/// way, so rejecting them would conflate saturation with corruption (and
/// strand a hibernated stream that can never rehydrate its own blob).
///
/// # Errors
///
/// Returns [`CoreError::InvalidSnapshot`] when the field is missing or not
/// a number.
pub fn float_field(state: &serde::Value, name: &'static str) -> Result<f64, CoreError> {
    field(state, name)
}

/// Checks the snapshot's `version` field against the detector's current
/// format version.
///
/// # Errors
///
/// Returns [`CoreError::InvalidSnapshot`] when the field is missing or the
/// version does not match.
pub fn check_version(
    state: &serde::Value,
    expected: u64,
    detector: &'static str,
) -> Result<(), CoreError> {
    let version: u64 = field(state, "version")?;
    if version != expected {
        return Err(invalid(format!(
            "unsupported {detector} snapshot version {version} (expected {expected})"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Snapshot encoding selection
// ---------------------------------------------------------------------------

/// How sequence-shaped detector state (windows, bucket rows) is laid out in
/// a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotEncoding {
    /// Plain JSON number arrays — human-readable, wire formats v1–v3.
    #[default]
    Json,
    /// Compact base64-embedded binary blobs (see the module docs) — wire
    /// format v4. Restores remain bit-exact either way; `restore_state`
    /// accepts both layouts transparently.
    Binary,
}

// ---------------------------------------------------------------------------
// Blob frame
// ---------------------------------------------------------------------------

/// Magic bytes opening every window blob ("OptWin Binary, format 4").
pub const BLOB_MAGIC: [u8; 4] = *b"OWB4";
/// Frame header length: magic (4) + kind (1) + scale (1) + count (4) +
/// checksum (4).
pub const BLOB_HEADER_LEN: usize = 14;

/// Payload codec: raw little-endian `f64` bit patterns.
const KIND_RAW_F64: u8 = 0;
/// Payload codec: zigzag-delta LEB128 varints of `value * 10^scale`.
const KIND_FIXED_DELTA: u8 = 1;
/// Payload codec: one bit per element, values restricted to `0.0` / `1.0`.
const KIND_BITS01: u8 = 2;
/// Payload codec: plain LEB128 varints of `u64` elements.
const KIND_VARINT_U64: u8 = 3;
/// Payload codec: one bit per `bool` element.
const KIND_BITS_BOOL: u8 = 4;

/// Largest decimal exponent the fixed-point probe tries at encode time.
const MAX_FIXED_SCALE: u8 = 9;

/// 32-bit FNV-1a over `bytes` — the blob checksum primitive. Not
/// cryptographic; it exists to turn silent bit-rot into a loud
/// [`CoreError::InvalidSnapshot`].
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u32 {
    fnv1a_continue(0x811c_9dc5, bytes)
}

/// Continues an FNV-1a hash from a previous state, so multi-slice inputs
/// (header prefix + payload) hash without concatenating.
fn fnv1a_continue(mut hash: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// The checksum a well-formed frame with these bytes should carry: FNV-1a
/// over the header prefix (magic, kind, scale, count) *and* the payload —
/// a corrupted `scale` or `count` byte must fail as loudly as a corrupted
/// payload byte, since either silently changes every decoded value.
/// Exposed so test harnesses can re-seal a deliberately mutated frame.
///
/// # Panics
///
/// Panics when `bytes` is shorter than [`BLOB_HEADER_LEN`].
#[must_use]
pub fn frame_checksum(bytes: &[u8]) -> u32 {
    assert!(bytes.len() >= BLOB_HEADER_LEN, "frame shorter than header");
    fnv1a_continue(fnv1a(&bytes[..10]), &bytes[BLOB_HEADER_LEN..])
}

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 (with `=` padding) of `bytes`.
fn base64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b0 = chunk[0];
        let b1 = chunk.get(1).copied().unwrap_or(0);
        let b2 = chunk.get(2).copied().unwrap_or(0);
        out.push(BASE64_ALPHABET[(b0 >> 2) as usize] as char);
        out.push(BASE64_ALPHABET[(((b0 & 0x03) << 4) | (b1 >> 4)) as usize] as char);
        if chunk.len() > 1 {
            out.push(BASE64_ALPHABET[(((b1 & 0x0f) << 2) | (b2 >> 6)) as usize] as char);
        } else {
            out.push('=');
        }
        if chunk.len() > 2 {
            out.push(BASE64_ALPHABET[(b2 & 0x3f) as usize] as char);
        } else {
            out.push('=');
        }
    }
    out
}

/// Strict base64 decode: canonical padded form only.
fn base64_decode(text: &str) -> Result<Vec<u8>, String> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(format!(
            "invalid base64: length {} is not a multiple of 4",
            bytes.len()
        ));
    }
    fn value_of(c: u8) -> Result<u8, String> {
        match c {
            b'A'..=b'Z' => Ok(c - b'A'),
            b'a'..=b'z' => Ok(c - b'a' + 26),
            b'0'..=b'9' => Ok(c - b'0' + 52),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err(format!("invalid base64 character `{}`", c as char)),
        }
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (group, chunk) in bytes.chunks(4).enumerate() {
        let last = group == bytes.len() / 4 - 1;
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        if pad > 0 && (!last || pad > 2 || chunk[..4 - pad].contains(&b'=')) {
            return Err("invalid base64: misplaced padding".to_string());
        }
        let v0 = value_of(chunk[0])?;
        let v1 = value_of(chunk[1])?;
        out.push((v0 << 2) | (v1 >> 4));
        if pad < 2 {
            let v2 = value_of(chunk[2])?;
            out.push((v1 << 4) | (v2 >> 2));
            if pad < 1 {
                let v3 = value_of(chunk[3])?;
                out.push((v2 << 6) | v3);
            }
        }
    }
    Ok(out)
}

/// The standard padded base64 encoding window blobs use, exposed for
/// tooling and the corruption-test harness.
#[must_use]
pub fn to_base64(bytes: &[u8]) -> String {
    base64_encode(bytes)
}

/// Strict inverse of [`to_base64`] (canonical padded form only), exposed
/// for tooling and the corruption-test harness.
///
/// # Errors
///
/// Returns [`CoreError::InvalidSnapshot`] for non-canonical or malformed
/// base64.
pub fn from_base64(text: &str) -> Result<Vec<u8>, CoreError> {
    base64_decode(text).map_err(invalid)
}

/// Assembles a blob: header + payload, base64-encoded.
fn frame(kind: u8, scale: u8, count: usize, payload: &[u8]) -> String {
    let count = u32::try_from(count).expect("sequence length fits u32 (checked by the encoder)");
    let mut bytes = Vec::with_capacity(BLOB_HEADER_LEN + payload.len());
    bytes.extend_from_slice(&BLOB_MAGIC);
    bytes.push(kind);
    bytes.push(scale);
    bytes.extend_from_slice(&count.to_le_bytes());
    let checksum = fnv1a_continue(fnv1a(&bytes), payload);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes.extend_from_slice(payload);
    base64_encode(&bytes)
}

/// A decoded blob frame.
struct Blob {
    kind: u8,
    scale: u8,
    count: usize,
    payload: Vec<u8>,
}

/// Decodes and validates the frame around a blob's payload.
fn unframe(text: &str) -> Result<Blob, String> {
    let bytes = base64_decode(text)?;
    if bytes.len() < BLOB_HEADER_LEN {
        return Err(format!(
            "truncated blob: {} bytes, header alone needs {BLOB_HEADER_LEN}",
            bytes.len()
        ));
    }
    if bytes[..4] != BLOB_MAGIC {
        return Err(format!(
            "bad magic {:02x?} (expected {:02x?} = \"OWB4\")",
            &bytes[..4],
            BLOB_MAGIC
        ));
    }
    let kind = bytes[4];
    let scale = bytes[5];
    let count = u32::from_le_bytes(bytes[6..10].try_into().expect("4 bytes")) as usize;
    let stored = u32::from_le_bytes(bytes[10..14].try_into().expect("4 bytes"));
    let computed = frame_checksum(&bytes);
    let payload = bytes[BLOB_HEADER_LEN..].to_vec();
    if stored != computed {
        return Err(format!(
            "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
        ));
    }
    if kind != KIND_FIXED_DELTA && scale != 0 {
        return Err(format!("non-zero scale {scale} for codec kind {kind}"));
    }
    Ok(Blob {
        kind,
        scale,
        count,
        payload,
    })
}

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

fn push_varint(out: &mut Vec<u8>, v: u64) {
    // Branch-free encode: the byte count comes straight from the bit width
    // (`| 1` maps v = 0 to one byte), every lane is written with its
    // continuation bit set in a fixed-trip loop, and the last byte's
    // continuation bit is cleared afterwards. Byte-for-byte identical to the
    // classic emit-until-zero loop.
    let bits = 64 - (v | 1).leading_zeros() as usize;
    let n = bits.div_ceil(7);
    let mut buf = [0u8; 10];
    for (k, byte) in buf.iter_mut().enumerate() {
        *byte = ((v >> (7 * k)) & 0x7f) as u8 | 0x80;
    }
    buf[n - 1] &= 0x7f;
    out.extend_from_slice(&buf[..n]);
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    // One range check up front instead of a bounds check per byte; the
    // validation (10-byte cap, final-part overflow) is unchanged.
    let tail = &bytes[(*pos).min(bytes.len())..];
    let mut value: u64 = 0;
    for (shift, &byte) in tail.iter().take(10).enumerate() {
        let part = u64::from(byte & 0x7f);
        if shift == 9 && part > 1 {
            return Err("invalid varint: exceeds 64 bits".to_string());
        }
        value |= part << (shift * 7);
        if byte & 0x80 == 0 {
            *pos += shift + 1;
            return Ok(value);
        }
    }
    if tail.len() < 10 {
        Err("element count mismatch: varint payload ends early".to_string())
    } else {
        Err("invalid varint: more than 10 bytes".to_string())
    }
}

fn zigzag(i: i64) -> u64 {
    ((i << 1) ^ (i >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

// ---------------------------------------------------------------------------
// f64 sequences
// ---------------------------------------------------------------------------

const ONE_BITS: u64 = 1.0f64.to_bits();

/// Bit-packs one flag per element, LSB-first within each byte — 64 elements
/// at a time: each chunk is assembled into a `u64` with branch-free shifts
/// and stored through its little-endian byte image, which reproduces the
/// byte-at-a-time layout exactly (bit `i` lands in `payload[i / 8]` at
/// position `i % 8`).
fn pack_bits<T>(values: &[T], bit: impl Fn(&T) -> bool) -> Vec<u8> {
    let mut payload = vec![0u8; values.len().div_ceil(8)];
    for (chunk, bytes) in values.chunks(64).zip(payload.chunks_mut(8)) {
        let mut word = 0u64;
        for (k, v) in chunk.iter().enumerate() {
            word |= u64::from(bit(v)) << k;
        }
        bytes.copy_from_slice(&word.to_le_bytes()[..bytes.len()]);
    }
    payload
}

/// Probes the smallest decimal scale whose fixed-point integers reproduce
/// every value bit-exactly: `(i as f64) / 10^k` is the identical IEEE
/// operation at decode time, so a successful round-trip here *is* the
/// bit-exactness proof.
fn fixed_scale_ints(values: &[f64]) -> Option<(u8, Vec<i64>)> {
    'scales: for k in 0..=MAX_FIXED_SCALE {
        let scale = 10f64.powi(i32::from(k));
        let mut ints = Vec::with_capacity(values.len());
        for &v in values {
            if !v.is_finite() {
                return None;
            }
            let y = (v * scale).round();
            if !(y.abs() <= 9.0e15) {
                continue 'scales;
            }
            #[allow(clippy::cast_possible_truncation)]
            let i = y as i64;
            if ((i as f64) / scale).to_bits() != v.to_bits() {
                continue 'scales;
            }
            ints.push(i);
        }
        return Some((k, ints));
    }
    None
}

fn delta_payload(ints: &[i64]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(ints.len() * 2);
    let mut previous = 0i64;
    for &i in ints {
        // |i| ≤ 9e15 for every fixed-point integer, so the difference can
        // never overflow i64.
        push_varint(&mut payload, zigzag(i - previous));
        previous = i;
    }
    payload
}

/// Encodes an `f64` sequence as a binary blob string, choosing the smallest
/// applicable payload codec (bit-packed for pure 0/1 streams, fixed-point
/// deltas for low-precision or monotone data, raw frames otherwise).
#[must_use]
pub fn encode_f64_seq(values: &[f64]) -> serde::Value {
    if u32::try_from(values.len()).is_err() {
        // Absurdly long sequences stay on the JSON layout rather than
        // overflowing the u32 count.
        use serde::Serialize as _;
        return values.to_value();
    }
    let raw_len = values.len() * 8;
    let mut best: Option<(u8, u8, Vec<u8>)> = None;
    if values
        .iter()
        .all(|v| v.to_bits() == 0 || v.to_bits() == ONE_BITS)
    {
        best = Some((
            KIND_BITS01,
            0,
            pack_bits(values, |v| v.to_bits() == ONE_BITS),
        ));
    }
    if best.is_none() {
        if let Some((scale, ints)) = fixed_scale_ints(values) {
            let payload = delta_payload(&ints);
            if payload.len() < raw_len {
                best = Some((KIND_FIXED_DELTA, scale, payload));
            }
        }
    }
    let (kind, scale, payload) = best.unwrap_or_else(|| {
        let mut payload = Vec::with_capacity(raw_len);
        for &v in values {
            payload.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        (KIND_RAW_F64, 0, payload)
    });
    serde::Value::Str(frame(kind, scale, values.len(), &payload))
}

fn f64s_from_blob(text: &str) -> Result<Vec<f64>, String> {
    let blob = unframe(text)?;
    match blob.kind {
        KIND_RAW_F64 => {
            if blob.payload.len() != blob.count * 8 {
                return Err(format!(
                    "element count mismatch: header says {} f64s, payload holds {} bytes",
                    blob.count,
                    blob.payload.len()
                ));
            }
            Ok(blob
                .payload
                .chunks_exact(8)
                .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
                .collect())
        }
        KIND_FIXED_DELTA => {
            if blob.scale > 18 {
                return Err(format!("fixed-point scale {} out of range", blob.scale));
            }
            let scale = 10f64.powi(i32::from(blob.scale));
            // Each varint occupies at least one payload byte, so a header
            // count beyond `payload.len()` is certainly corrupt — cap the
            // pre-allocation so a forged count cannot trigger a huge (and
            // potentially aborting) allocation before the length check.
            let mut values = Vec::with_capacity(blob.count.min(blob.payload.len()));
            let mut pos = 0usize;
            let mut current = 0i64;
            for _ in 0..blob.count {
                let delta = unzigzag(read_varint(&blob.payload, &mut pos)?);
                current = current
                    .checked_add(delta)
                    .ok_or_else(|| "fixed-point accumulator overflow".to_string())?;
                values.push((current as f64) / scale);
            }
            if pos != blob.payload.len() {
                return Err(format!(
                    "element count mismatch: {} trailing payload bytes after {} elements",
                    blob.payload.len() - pos,
                    blob.count
                ));
            }
            Ok(values)
        }
        KIND_BITS01 => bits_from_blob(&blob).map(|bits| {
            bits.into_iter()
                .map(|b| if b { 1.0 } else { 0.0 })
                .collect()
        }),
        other => Err(format!("codec kind {other} does not hold f64 elements")),
    }
}

fn bits_from_blob(blob: &Blob) -> Result<Vec<bool>, String> {
    if blob.payload.len() != blob.count.div_ceil(8) {
        return Err(format!(
            "element count mismatch: header says {} bits, payload holds {} bytes",
            blob.count,
            blob.payload.len()
        ));
    }
    // Padding bits past `count` must be zero — a strict canonical form so a
    // flipped tail bit cannot slip through as "still decodes fine".
    if let Some(&last) = blob.payload.last() {
        let used = blob.count % 8;
        if used != 0 && last >> used != 0 {
            return Err("element count mismatch: non-zero padding bits".to_string());
        }
    }
    // Byte-at-a-time unpack: eight branch-free pushes per full byte instead
    // of a divide, modulo and bounds check per bit.
    let full = blob.count / 8;
    let mut bits = Vec::with_capacity(blob.count);
    for &byte in &blob.payload[..full] {
        let b = |k: u8| byte >> k & 1 == 1;
        bits.extend_from_slice(&[b(0), b(1), b(2), b(3), b(4), b(5), b(6), b(7)]);
    }
    for k in 0..blob.count % 8 {
        bits.push(blob.payload[full] >> k & 1 == 1);
    }
    Ok(bits)
}

// ---------------------------------------------------------------------------
// bool and u64 sequences
// ---------------------------------------------------------------------------

/// Encodes a `bool` sequence as a bit-packed binary blob string.
#[must_use]
pub fn encode_bool_seq(values: &[bool]) -> serde::Value {
    if u32::try_from(values.len()).is_err() {
        use serde::Serialize as _;
        return values.to_value();
    }
    let payload = pack_bits(values, |&b| b);
    serde::Value::Str(frame(KIND_BITS_BOOL, 0, values.len(), &payload))
}

fn bools_from_blob(text: &str) -> Result<Vec<bool>, String> {
    let blob = unframe(text)?;
    if blob.kind != KIND_BITS_BOOL {
        return Err(format!(
            "codec kind {} does not hold bool elements",
            blob.kind
        ));
    }
    bits_from_blob(&blob)
}

/// Encodes a `u64` sequence as a varint binary blob string.
#[must_use]
pub fn encode_u64_seq(values: &[u64]) -> serde::Value {
    if u32::try_from(values.len()).is_err() {
        use serde::Serialize as _;
        return values.to_value();
    }
    let mut payload = Vec::with_capacity(values.len() * 2);
    for &v in values {
        push_varint(&mut payload, v);
    }
    serde::Value::Str(frame(KIND_VARINT_U64, 0, values.len(), &payload))
}

fn u64s_from_blob(text: &str) -> Result<Vec<u64>, String> {
    let blob = unframe(text)?;
    if blob.kind != KIND_VARINT_U64 {
        return Err(format!(
            "codec kind {} does not hold u64 elements",
            blob.kind
        ));
    }
    // As in the fixed-delta decoder: ≥ 1 payload byte per varint, so cap
    // the pre-allocation against a forged header count.
    let mut values = Vec::with_capacity(blob.count.min(blob.payload.len()));
    let mut pos = 0usize;
    for _ in 0..blob.count {
        values.push(read_varint(&blob.payload, &mut pos)?);
    }
    if pos != blob.payload.len() {
        return Err(format!(
            "element count mismatch: {} trailing payload bytes after {} elements",
            blob.payload.len() - pos,
            blob.count
        ));
    }
    Ok(values)
}

// ---------------------------------------------------------------------------
// Encoding-aware sequence values and dual-layout field readers
// ---------------------------------------------------------------------------

/// An `f64` sequence as a snapshot value: a JSON array under
/// [`SnapshotEncoding::Json`], a binary blob string under
/// [`SnapshotEncoding::Binary`].
#[must_use]
pub fn f64_seq_value(encoding: SnapshotEncoding, values: &[f64]) -> serde::Value {
    match encoding {
        SnapshotEncoding::Json => {
            use serde::Serialize as _;
            values.to_value()
        }
        SnapshotEncoding::Binary => encode_f64_seq(values),
    }
}

/// A `bool` sequence as a snapshot value (see [`f64_seq_value`]).
#[must_use]
pub fn bool_seq_value(encoding: SnapshotEncoding, values: &[bool]) -> serde::Value {
    match encoding {
        SnapshotEncoding::Json => {
            use serde::Serialize as _;
            values.to_value()
        }
        SnapshotEncoding::Binary => encode_bool_seq(values),
    }
}

/// A `u64` sequence as a snapshot value (see [`f64_seq_value`]).
#[must_use]
pub fn u64_seq_value(encoding: SnapshotEncoding, values: &[u64]) -> serde::Value {
    match encoding {
        SnapshotEncoding::Json => {
            use serde::Serialize as _;
            values.to_value()
        }
        SnapshotEncoding::Binary => encode_u64_seq(values),
    }
}

/// Reads an `f64` sequence stored either as a JSON number array (wire
/// formats v1–v3) or as a binary blob string (v4).
///
/// # Errors
///
/// Returns [`CoreError::InvalidSnapshot`] (naming the field) when the field
/// is missing, is neither an array nor a string, an array element is not a
/// number, or the blob fails validation (base64, magic, kind, element
/// count, checksum).
pub fn f64_seq_field(state: &serde::Value, name: &'static str) -> Result<Vec<f64>, CoreError> {
    let value = state
        .get(name)
        .ok_or_else(|| invalid(format!("missing field `{name}`")))?;
    match value {
        serde::Value::Str(text) => {
            f64s_from_blob(text).map_err(|e| invalid(format!("field `{name}`: {e}")))
        }
        serde::Value::Array(_) => <Vec<f64> as serde::Deserialize>::from_value(value)
            .map_err(|e| invalid(format!("field `{name}`: {e}"))),
        other => Err(invalid(format!(
            "field `{name}`: expected a number array or a binary blob string, found {other:?}"
        ))),
    }
}

/// Reads a `bool` sequence stored either as a JSON array or as a bit-packed
/// blob string. See [`f64_seq_field`].
///
/// # Errors
///
/// Returns [`CoreError::InvalidSnapshot`] under the same conditions as
/// [`f64_seq_field`].
pub fn bool_seq_field(state: &serde::Value, name: &'static str) -> Result<Vec<bool>, CoreError> {
    let value = state
        .get(name)
        .ok_or_else(|| invalid(format!("missing field `{name}`")))?;
    match value {
        serde::Value::Str(text) => {
            bools_from_blob(text).map_err(|e| invalid(format!("field `{name}`: {e}")))
        }
        serde::Value::Array(_) => <Vec<bool> as serde::Deserialize>::from_value(value)
            .map_err(|e| invalid(format!("field `{name}`: {e}"))),
        other => Err(invalid(format!(
            "field `{name}`: expected a bool array or a binary blob string, found {other:?}"
        ))),
    }
}

/// Reads a `u64` sequence stored either as a JSON array or as a varint blob
/// string. See [`f64_seq_field`].
///
/// # Errors
///
/// Returns [`CoreError::InvalidSnapshot`] under the same conditions as
/// [`f64_seq_field`].
pub fn u64_seq_field(state: &serde::Value, name: &'static str) -> Result<Vec<u64>, CoreError> {
    let value = state
        .get(name)
        .ok_or_else(|| invalid(format!("missing field `{name}`")))?;
    match value {
        serde::Value::Str(text) => {
            u64s_from_blob(text).map_err(|e| invalid(format!("field `{name}`: {e}")))
        }
        serde::Value::Array(_) => <Vec<u64> as serde::Deserialize>::from_value(value)
            .map_err(|e| invalid(format!("field `{name}`: {e}"))),
        other => Err(invalid(format!(
            "field `{name}`: expected an integer array or a binary blob string, found {other:?}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Write-ahead-log framing (checkpoint wire format v5)
// ---------------------------------------------------------------------------

/// Magic bytes opening every write-ahead-log segment ("OptWin Ahead Log").
///
/// The engine's checkpoint subsystem (wire format v5) persists record
/// batches between delta checkpoints as per-shard append-only log segments.
/// A segment is a fixed header followed by self-checksummed frames; this
/// module owns the byte-level framing so the corruption contract matches
/// the window codec above: every complete-but-damaged frame fails loudly,
/// while a **torn tail** (a frame cut short by a crash mid-append) reads as
/// a clean end of log — losing the torn frame is exactly the durability
/// boundary a write-ahead log promises.
pub const WAL_MAGIC: [u8; 4] = *b"OWAL";

/// Format version byte of the segment header.
pub const WAL_VERSION: u8 = 1;

/// Segment header length: magic (4) + version (1) + shard (4) + generation
/// (8).
pub const WAL_HEADER_LEN: usize = 17;

/// Frame header length: kind (1) + payload length (4) + checksum (4).
pub const WAL_FRAME_HEADER_LEN: usize = 9;

/// Encodes a segment header for the given shard and checkpoint generation.
#[must_use]
pub fn wal_segment_header(shard: u32, generation: u64) -> [u8; WAL_HEADER_LEN] {
    let mut header = [0u8; WAL_HEADER_LEN];
    header[..4].copy_from_slice(&WAL_MAGIC);
    header[4] = WAL_VERSION;
    header[5..9].copy_from_slice(&shard.to_le_bytes());
    header[9..17].copy_from_slice(&generation.to_le_bytes());
    header
}

/// Parses a segment header, returning `(shard, generation)`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidSnapshot`] when the header is truncated,
/// the magic does not match, or the version byte is unsupported.
pub fn wal_parse_segment_header(bytes: &[u8]) -> Result<(u32, u64), CoreError> {
    if bytes.len() < WAL_HEADER_LEN {
        return Err(invalid(format!(
            "WAL segment header truncated: {} of {WAL_HEADER_LEN} bytes",
            bytes.len()
        )));
    }
    if bytes[..4] != WAL_MAGIC {
        return Err(invalid("WAL segment has bad magic"));
    }
    if bytes[4] != WAL_VERSION {
        return Err(invalid(format!(
            "unsupported WAL segment version {} (expected {WAL_VERSION})",
            bytes[4]
        )));
    }
    let shard = u32::from_le_bytes(bytes[5..9].try_into().expect("4 bytes"));
    let generation = u64::from_le_bytes(bytes[9..17].try_into().expect("8 bytes"));
    Ok((shard, generation))
}

/// Checksum of a WAL frame: FNV-1a over the kind byte and the length field,
/// continued over the payload — a corrupted length fails as loudly as a
/// corrupted payload byte.
fn wal_frame_checksum(kind: u8, payload: &[u8]) -> u32 {
    let mut prefix = [0u8; 5];
    prefix[0] = kind;
    prefix[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    fnv1a_continue(fnv1a(&prefix), payload)
}

/// Encodes one self-checksummed WAL frame:
/// `kind u8 · payload length u32 LE · checksum u32 LE · payload`.
#[must_use]
pub fn wal_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(WAL_FRAME_HEADER_LEN + payload.len());
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&wal_frame_checksum(kind, payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// A decoded WAL frame: `(kind, payload, bytes consumed from the input)`.
pub type WalFrame<'a> = (u8, &'a [u8], usize);

/// Decodes the frame at the head of `bytes`.
///
/// Returns `Ok(Some((kind, payload, consumed)))` for a complete, verified
/// frame, and `Ok(None)` at a clean end of log: `bytes` is empty **or**
/// holds an incomplete frame — the torn tail a crash mid-append leaves
/// behind, which a recovery reader must treat as EOF, not corruption.
///
/// # Errors
///
/// Returns [`CoreError::InvalidSnapshot`] when a *complete* frame fails its
/// checksum — genuine corruption, never recoverable by truncation.
pub fn wal_next_frame(bytes: &[u8]) -> Result<Option<WalFrame<'_>>, CoreError> {
    if bytes.len() < WAL_FRAME_HEADER_LEN {
        return Ok(None);
    }
    let kind = bytes[0];
    let len = u32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes")) as usize;
    let stored = u32::from_le_bytes(bytes[5..9].try_into().expect("4 bytes"));
    let Some(payload) = bytes.get(WAL_FRAME_HEADER_LEN..WAL_FRAME_HEADER_LEN + len) else {
        return Ok(None);
    };
    if wal_frame_checksum(kind, payload) != stored {
        return Err(invalid(format!(
            "WAL frame checksum mismatch (kind {kind}, {len}-byte payload)"
        )));
    }
    Ok(Some((kind, payload, WAL_FRAME_HEADER_LEN + len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> serde::Value {
        serde::Value::Object(vec![
            ("version".to_string(), serde::Value::UInt(3)),
            ("count".to_string(), serde::Value::UInt(7)),
            ("mean".to_string(), serde::Value::Float(0.25)),
            ("bad".to_string(), serde::Value::Float(f64::NAN)),
            ("label".to_string(), serde::Value::Str("x".to_string())),
        ])
    }

    #[test]
    fn field_lookup_and_errors() {
        let s = state();
        assert_eq!(field::<u64>(&s, "count").unwrap(), 7);
        assert_eq!(usize_field(&s, "count").unwrap(), 7);
        assert_eq!(float_field(&s, "mean").unwrap(), 0.25);
        // Saturated accumulators restore verbatim: non-finite is a
        // reachable live state, not corruption.
        assert!(float_field(&s, "bad").unwrap().is_nan());
        let err = field::<u64>(&s, "missing").unwrap_err();
        assert!(err.to_string().contains("missing"));
        let err = field::<u64>(&s, "mean").unwrap_err();
        assert!(err.to_string().contains("mean"));
        let err = float_field(&s, "label").unwrap_err();
        assert!(err.to_string().contains("label"));
    }

    #[test]
    fn version_check() {
        let s = state();
        assert!(check_version(&s, 3, "TEST").is_ok());
        let err = check_version(&s, 4, "TEST").unwrap_err();
        assert!(err.to_string().contains("TEST snapshot version 3"));
        let err = check_version(&serde::Value::Null, 1, "TEST").unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    fn blob_text(value: &serde::Value) -> &str {
        match value {
            serde::Value::Str(s) => s,
            other => panic!("expected blob string, got {other:?}"),
        }
    }

    fn seq_state(value: serde::Value) -> serde::Value {
        serde::Value::Object(vec![("seq".to_string(), value)])
    }

    #[test]
    fn base64_round_trips_all_lengths() {
        for len in 0..32usize {
            let bytes: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37)).collect();
            let text = base64_encode(&bytes);
            assert_eq!(base64_decode(&text).unwrap(), bytes, "len {len}");
        }
        assert!(base64_decode("abc").unwrap_err().contains("multiple of 4"));
        assert!(base64_decode("ab~=").unwrap_err().contains("character"));
        assert!(base64_decode("a=bc").unwrap_err().contains("padding"));
    }

    #[test]
    fn f64_blob_round_trips_every_codec() {
        let cases: Vec<Vec<f64>> = vec![
            vec![],                                        // empty
            vec![0.0, 1.0, 1.0, 0.0, 1.0],                 // bit-packed
            vec![0.25, 0.5, 0.75, 1.5, -2.25],             // fixed-point, scale probes
            vec![0.06, 0.07, 0.08, 0.55],                  // decimal fixed-point
            (0..100).map(f64::from).collect(),             // monotone integers
            vec![1.0 / 3.0, 0.1 + 0.2, f64::MAX, -1e-300], // raw fallback
            vec![f64::NAN, f64::INFINITY, -0.0],           // non-finite + signed zero stay raw
        ];
        for values in cases {
            let blob = encode_f64_seq(&values);
            let back = f64_seq_field(&seq_state(blob), "seq").unwrap();
            assert_eq!(back.len(), values.len());
            for (a, b) in values.iter().zip(&back) {
                assert_eq!(a.to_bits(), b.to_bits(), "bit-exact round trip");
            }
        }
    }

    #[test]
    fn binary_streams_pack_to_bits() {
        let values: Vec<f64> = (0..1_000)
            .map(|i| f64::from(u8::from(i % 3 == 0)))
            .collect();
        let blob = blob_text(&encode_f64_seq(&values)).to_string();
        // 1000 bits = 125 payload bytes + 14 header ≈ 186 base64 chars —
        // far below both raw (8 B/elem) and JSON ("0.0," ≈ 4 B/elem).
        assert!(blob.len() < 200, "blob is {} chars", blob.len());
        let back = f64_seq_field(&seq_state(serde::Value::Str(blob)), "seq").unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn low_precision_sequences_use_fixed_point_deltas() {
        let values: Vec<f64> = (0..500).map(|i| f64::from(i % 100) / 100.0).collect();
        let blob = blob_text(&encode_f64_seq(&values)).to_string();
        // ≤ 2 payload bytes per element once delta-encoded.
        assert!(blob.len() < 1_400, "blob is {} chars", blob.len());
        let back = f64_seq_field(&seq_state(serde::Value::Str(blob)), "seq").unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn bool_and_u64_blobs_round_trip() {
        let bools: Vec<bool> = (0..77).map(|i| i % 5 != 0).collect();
        let back = bool_seq_field(&seq_state(encode_bool_seq(&bools)), "seq").unwrap();
        assert_eq!(back, bools);

        let ints: Vec<u64> = vec![0, 1, 127, 128, 300, u64::MAX, 1 << 40];
        let back = u64_seq_field(&seq_state(encode_u64_seq(&ints)), "seq").unwrap();
        assert_eq!(back, ints);
    }

    #[test]
    fn json_array_layout_still_reads() {
        use serde::Serialize as _;
        let values = vec![0.5, 1.25, -3.0];
        let state = seq_state(values.to_value());
        assert_eq!(f64_seq_field(&state, "seq").unwrap(), values);
        let bools = vec![true, false, true];
        let state = seq_state(bools.to_value());
        assert_eq!(bool_seq_field(&state, "seq").unwrap(), bools);
        let ints: Vec<u64> = vec![1, 2, 3];
        let state = seq_state(ints.to_value());
        assert_eq!(u64_seq_field(&state, "seq").unwrap(), ints);
    }

    #[test]
    fn seq_values_honor_the_encoding() {
        let values = vec![0.5, 0.25];
        assert!(matches!(
            f64_seq_value(SnapshotEncoding::Json, &values),
            serde::Value::Array(_)
        ));
        assert!(matches!(
            f64_seq_value(SnapshotEncoding::Binary, &values),
            serde::Value::Str(_)
        ));
        assert!(matches!(
            bool_seq_value(SnapshotEncoding::Json, &[true]),
            serde::Value::Array(_)
        ));
        assert!(matches!(
            u64_seq_value(SnapshotEncoding::Binary, &[1]),
            serde::Value::Str(_)
        ));
    }

    /// Every corruption class the fuzzing satellite names must surface as a
    /// clean `InvalidSnapshot` naming the field — never a panic.
    #[test]
    fn corrupted_blobs_are_rejected_with_context() {
        let values: Vec<f64> = (0..50).map(|i| f64::from(i) * 0.25).collect();
        let good = blob_text(&encode_f64_seq(&values)).to_string();

        let expect_err = |text: String, needle: &str| {
            let state = seq_state(serde::Value::Str(text));
            let err = f64_seq_field(&state, "seq").unwrap_err().to_string();
            assert!(err.contains("seq"), "field context missing in `{err}`");
            assert!(err.contains(needle), "`{err}` missing `{needle}`");
        };

        // Truncated blob (cut mid-payload, re-padded to valid base64).
        let mut bytes = base64_decode(&good).unwrap();
        bytes.truncate(BLOB_HEADER_LEN + 5);
        expect_err(base64_encode(&bytes), "mismatch");
        // Truncated below even the header.
        let mut bytes = base64_decode(&good).unwrap();
        bytes.truncate(6);
        expect_err(base64_encode(&bytes), "truncated");
        // Flipped checksum byte.
        let mut bytes = base64_decode(&good).unwrap();
        bytes[10] ^= 0xff;
        expect_err(base64_encode(&bytes), "checksum mismatch");
        // Flipped payload byte (checksum now disagrees).
        let mut bytes = base64_decode(&good).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        expect_err(base64_encode(&bytes), "checksum mismatch");
        // Bad magic.
        let mut bytes = base64_decode(&good).unwrap();
        bytes[0] = b'X';
        expect_err(base64_encode(&bytes), "bad magic");
        // The checksum covers the header too: a flipped scale byte (which
        // would otherwise *silently* decode every fixed-point value off by
        // a power of ten) and a flipped count byte both fail loudly.
        let mut bytes = base64_decode(&good).unwrap();
        bytes[5] ^= 0x01;
        expect_err(base64_encode(&bytes), "checksum mismatch");
        let mut bytes = base64_decode(&good).unwrap();
        bytes[9] ^= 0xff;
        expect_err(base64_encode(&bytes), "checksum mismatch");
        // Re-seals its frame so the corruption reaches the deeper check.
        let reseal = |bytes: &mut Vec<u8>| {
            let checksum = frame_checksum(bytes);
            bytes[10..14].copy_from_slice(&checksum.to_le_bytes());
        };
        // Element-count mismatch (header count inflated and re-sealed).
        let mut bytes = base64_decode(&good).unwrap();
        let count = u32::from_le_bytes(bytes[6..10].try_into().unwrap()) + 1;
        bytes[6..10].copy_from_slice(&count.to_le_bytes());
        reseal(&mut bytes);
        expect_err(base64_encode(&bytes), "element count mismatch");
        // A forged huge count must error (and not abort on a giant
        // pre-allocation) — the capacity is capped at the payload length.
        let mut bytes = base64_decode(&good).unwrap();
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        reseal(&mut bytes);
        expect_err(base64_encode(&bytes), "element count mismatch");
        // Unknown codec kind (re-sealed, kind byte nonsense).
        let mut bytes = base64_decode(&good).unwrap();
        bytes[4] = 99;
        reseal(&mut bytes);
        expect_err(base64_encode(&bytes), "codec kind 99");
        // Invalid base64.
        expect_err(format!("~~{good}~~"), "base64");
        expect_err(good[..good.len() - 1].to_string(), "base64");
        // Wrong shape entirely.
        let err = f64_seq_field(&seq_state(serde::Value::Bool(true)), "seq")
            .unwrap_err()
            .to_string();
        assert!(err.contains("expected a number array"));
    }

    /// Deterministic mutation fuzzing: random single-byte corruptions of a
    /// valid frame either decode to *something* or fail cleanly — the
    /// decoder must never panic or loop.
    #[test]
    fn mutated_blobs_never_panic() {
        let values: Vec<f64> = (0..64).map(|i| f64::from(i % 7) / 10.0).collect();
        let good = blob_text(&encode_f64_seq(&values)).to_string();
        let bytes = base64_decode(&good).unwrap();
        let mut rng_state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        for _ in 0..2_000 {
            let mut mutated = bytes.clone();
            for _ in 0..=(next() % 3) {
                let at = (next() as usize) % mutated.len();
                mutated[at] ^= (next() % 255 + 1) as u8;
            }
            // Any outcome but a panic is acceptable.
            let _ = f64s_from_blob(&base64_encode(&mutated));
            let _ = bools_from_blob(&base64_encode(&mutated));
            let _ = u64s_from_blob(&base64_encode(&mutated));
        }
    }

    #[test]
    fn fnv1a_reference_values() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0x811c_9dc5);
        assert_eq!(fnv1a(b"a"), 0xe40c_292c);
        assert_eq!(fnv1a(b"foobar"), 0xbf9c_f968);
    }

    #[test]
    fn wal_segment_header_round_trips_and_rejects_garbage() {
        let header = wal_segment_header(3, 17);
        assert_eq!(header.len(), WAL_HEADER_LEN);
        assert_eq!(wal_parse_segment_header(&header).unwrap(), (3, 17));

        // Truncated, bad magic, bad version: all loud, never a panic.
        assert!(wal_parse_segment_header(&header[..WAL_HEADER_LEN - 1]).is_err());
        let mut bad_magic = header;
        bad_magic[0] ^= 0xff;
        assert!(wal_parse_segment_header(&bad_magic)
            .unwrap_err()
            .to_string()
            .contains("magic"));
        let mut bad_version = header;
        bad_version[4] = WAL_VERSION + 1;
        assert!(wal_parse_segment_header(&bad_version)
            .unwrap_err()
            .to_string()
            .contains("version"));
    }

    #[test]
    fn wal_frames_round_trip_in_sequence() {
        let mut log = Vec::new();
        log.extend_from_slice(&wal_frame(0, b"first payload"));
        log.extend_from_slice(&wal_frame(1, b""));
        log.extend_from_slice(&wal_frame(7, &[0xAA; 100]));

        let mut at = 0;
        let mut frames = Vec::new();
        while let Some((kind, payload, consumed)) = wal_next_frame(&log[at..]).unwrap() {
            frames.push((kind, payload.to_vec()));
            at += consumed;
        }
        assert_eq!(at, log.len());
        assert_eq!(
            frames,
            vec![
                (0u8, b"first payload".to_vec()),
                (1, Vec::new()),
                (7, vec![0xAA; 100]),
            ]
        );
    }

    /// A frame cut short by a crash mid-append must read as clean EOF at
    /// every possible cut point — the write-ahead-log durability boundary.
    #[test]
    fn wal_torn_tail_reads_as_clean_eof() {
        let frame = wal_frame(2, b"torn by the crash");
        for cut in 0..frame.len() {
            assert_eq!(
                wal_next_frame(&frame[..cut]).unwrap(),
                None,
                "cut at {cut} must be EOF, not corruption"
            );
        }
        assert!(wal_next_frame(&frame).unwrap().is_some());
    }

    /// Any single-byte flip in a *complete* frame is detected (a flipped
    /// length byte may instead turn the frame into a torn tail — also
    /// acceptable, but never a silent wrong decode).
    #[test]
    fn wal_checksum_flip_is_detected() {
        let frame = wal_frame(5, b"checksummed payload");
        for at in 0..frame.len() {
            let mut mutated = frame.clone();
            mutated[at] ^= 0x01;
            if let Ok(Some((kind, payload, _))) = wal_next_frame(&mutated) {
                panic!("flip at {at} decoded silently: kind {kind}, {payload:?}")
            }
        }
    }
}
