//! The sliding window with an incrementally maintained split.
//!
//! OPTWIN stores the last `w_max` error observations in a ring buffer and, at
//! every step, needs the mean and standard deviation of the *historical*
//! prefix `W_hist = W[0 .. split)` and of the *new* suffix
//! `W_new = W[split ..)`. Recomputing those from scratch would make each step
//! O(|W|); instead [`SplitWindow`] keeps two add/remove accumulators and only
//! moves the elements that cross the boundary when the split point changes,
//! which is amortized O(1) because the optimal split moves by a bounded
//! amount per ingested element.

use optwin_stats::incremental::WindowMoments;

/// Ring-buffered sliding window with two incrementally maintained
/// sub-window accumulators.
#[derive(Debug, Clone)]
pub struct SplitWindow {
    /// Ring storage with fixed capacity.
    buf: Vec<f64>,
    /// Index of the oldest element inside `buf`.
    head: usize,
    /// Number of stored elements.
    len: usize,
    /// Number of elements (counted from the oldest) that belong to `W_hist`.
    split: usize,
    /// Moments of `W_hist`.
    hist: WindowMoments,
    /// Moments of `W_new`.
    new: WindowMoments,
}

impl SplitWindow {
    /// Creates an empty window with the given fixed capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            buf: vec![0.0; capacity],
            head: 0,
            len: 0,
            split: 0,
            hist: WindowMoments::new(),
            new: WindowMoments::new(),
        }
    }

    /// Maximum number of elements the window can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Bytes of heap storage owned by the ring buffer. The buffer is
    /// allocated eagerly at full capacity, so this is
    /// `capacity * size_of::<f64>()` regardless of how many elements are
    /// currently stored — exactly what a memory audit should count.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.buf.capacity() * std::mem::size_of::<f64>()
    }

    /// Reduces a ring index in `[0, 2·capacity)` into `[0, capacity)`.
    ///
    /// `head` stays below the capacity and offsets never exceed it, so a
    /// single conditional subtract replaces the `%` the hot paths would
    /// otherwise pay — an integer division per push/pop/probe.
    #[inline]
    fn wrap(&self, i: usize) -> usize {
        debug_assert!(i < 2 * self.buf.len());
        if i >= self.buf.len() {
            i - self.buf.len()
        } else {
            i
        }
    }

    /// Number of elements currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the window holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current split point: the number of elements in `W_hist`.
    #[must_use]
    pub fn split(&self) -> usize {
        self.split
    }

    /// Number of elements in `W_new`.
    #[must_use]
    pub fn new_len(&self) -> usize {
        self.len - self.split
    }

    /// Returns the `i`-th oldest element (0 = oldest).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.buf[self.wrap(self.head + i)]
    }

    /// Appends a new (most recent) element to `W_new`.
    ///
    /// # Panics
    ///
    /// Panics if the window is full; callers must [`Self::pop_front`] first.
    pub fn push(&mut self, x: f64) {
        assert!(self.len < self.buf.len(), "window is full");
        let idx = self.wrap(self.head + self.len);
        self.buf[idx] = x;
        self.len += 1;
        self.new.add(x);
    }

    /// Appends every element of `xs` (oldest first) to `W_new`, bit-exactly
    /// equivalent to calling [`SplitWindow::push`] once per element.
    ///
    /// This is the batch warm-up fast path: the ring copy collapses to at
    /// most two `memcpy` segments and the sub-window accumulator is updated
    /// with the branch-hoisted [`WindowMoments::add_slice`] kernel.
    ///
    /// # Panics
    ///
    /// Panics if the elements do not all fit; callers must evict first.
    pub fn push_slice(&mut self, xs: &[f64]) {
        let cap = self.buf.len();
        assert!(
            self.len + xs.len() <= cap,
            "pushing {} elements into a window with {} free slots",
            xs.len(),
            cap - self.len
        );
        let start = self.wrap(self.head + self.len);
        let first = xs.len().min(cap - start);
        self.buf[start..start + first].copy_from_slice(&xs[..first]);
        self.buf[..xs.len() - first].copy_from_slice(&xs[first..]);
        self.len += xs.len();
        self.new.add_slice(xs);
    }

    /// Removes and returns the oldest element.
    ///
    /// Returns `None` if the window is empty. The element is removed from
    /// whichever sub-window currently contains it.
    pub fn pop_front(&mut self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        let x = self.buf[self.head];
        self.head = self.wrap(self.head + 1);
        self.len -= 1;
        if self.split > 0 {
            self.split -= 1;
            self.hist.remove(x);
        } else {
            self.new.remove(x);
        }
        Some(x)
    }

    /// Moves the split boundary so that `W_hist` contains exactly
    /// `new_split` elements.
    ///
    /// # Panics
    ///
    /// Panics if `new_split > len()`.
    pub fn set_split(&mut self, new_split: usize) {
        assert!(
            new_split <= self.len,
            "split {new_split} exceeds window length {}",
            self.len
        );
        while self.split < new_split {
            // Oldest element of W_new migrates to W_hist.
            let x = self.get(self.split);
            self.new.remove(x);
            self.hist.add(x);
            self.split += 1;
        }
        while self.split > new_split {
            // Newest element of W_hist migrates back to W_new.
            let x = self.get(self.split - 1);
            self.hist.remove(x);
            self.new.add(x);
            self.split -= 1;
        }
    }

    /// Mean of `W_hist` (0.0 when empty).
    #[must_use]
    pub fn hist_mean(&self) -> f64 {
        self.hist.mean()
    }

    /// Unbiased sample standard deviation of `W_hist`.
    #[must_use]
    pub fn hist_std(&self) -> f64 {
        self.hist.sample_std()
    }

    /// Unbiased sample variance of `W_hist`.
    #[must_use]
    pub fn hist_variance(&self) -> f64 {
        self.hist.sample_variance()
    }

    /// Mean of `W_new` (0.0 when empty).
    #[must_use]
    pub fn new_mean(&self) -> f64 {
        self.new.mean()
    }

    /// Unbiased sample standard deviation of `W_new`.
    #[must_use]
    pub fn new_std(&self) -> f64 {
        self.new.sample_std()
    }

    /// Unbiased sample variance of `W_new`.
    #[must_use]
    pub fn new_variance(&self) -> f64 {
        self.new.sample_variance()
    }

    /// Mean of the whole window.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        (self.hist.sum() + self.new.sum()) / self.len as f64
    }

    /// Copies the window contents (oldest first) into a vector. Intended for
    /// tests and diagnostics, not for the hot path.
    #[must_use]
    pub fn to_vec(&self) -> Vec<f64> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Removes all elements and resets the split to zero.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
        self.split = 0;
        self.hist.reset();
        self.new.reset();
    }

    /// Raw accumulator state of the `W_hist` moments (see
    /// [`WindowMoments::to_raw`]), for exact persistence.
    #[must_use]
    pub fn hist_moments_raw(&self) -> (u64, f64, f64, f64) {
        self.hist.to_raw()
    }

    /// Raw accumulator state of the `W_new` moments (see
    /// [`WindowMoments::to_raw`]), for exact persistence.
    #[must_use]
    pub fn new_moments_raw(&self) -> (u64, f64, f64, f64) {
        self.new.to_raw()
    }

    /// Rebuilds a window from persisted state: the stored values (oldest
    /// first), the split point, and the two raw moment accumulators captured
    /// by [`SplitWindow::hist_moments_raw`] / [`SplitWindow::new_moments_raw`].
    ///
    /// Restoring the accumulators verbatim (instead of re-adding the values)
    /// makes the round trip bit-exact: an accumulator that has lived through
    /// add/remove cycles carries rounding residue a rebuild would lose, and
    /// OPTWIN's subsequent drift decisions must not depend on whether the
    /// process was restarted.
    ///
    /// Returns `None` when the pieces are inconsistent (`values` longer than
    /// `capacity`, `split` beyond the length, or accumulator counts that do
    /// not match the two sub-window sizes).
    #[must_use]
    pub fn from_state(
        capacity: usize,
        values: &[f64],
        split: usize,
        hist_raw: (u64, f64, f64, f64),
        new_raw: (u64, f64, f64, f64),
    ) -> Option<Self> {
        if capacity == 0 || values.len() > capacity || split > values.len() {
            return None;
        }
        if hist_raw.0 != split as u64 || new_raw.0 != (values.len() - split) as u64 {
            return None;
        }
        let mut buf = vec![0.0; capacity];
        buf[..values.len()].copy_from_slice(values);
        Some(Self {
            buf,
            head: 0,
            len: values.len(),
            split,
            hist: WindowMoments::from_raw(hist_raw.0, hist_raw.1, hist_raw.2, hist_raw.3),
            new: WindowMoments::from_raw(new_raw.0, new_raw.1, new_raw.2, new_raw.3),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optwin_stats::descriptive;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SplitWindow::with_capacity(0);
    }

    #[test]
    fn push_pop_fifo_order() {
        let mut w = SplitWindow::with_capacity(3);
        w.push(1.0);
        w.push(2.0);
        w.push(3.0);
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop_front(), Some(1.0));
        w.push(4.0);
        assert_eq!(w.to_vec(), vec![2.0, 3.0, 4.0]);
        assert_eq!(w.pop_front(), Some(2.0));
        assert_eq!(w.pop_front(), Some(3.0));
        assert_eq!(w.pop_front(), Some(4.0));
        assert_eq!(w.pop_front(), None);
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "window is full")]
    fn push_past_capacity_panics() {
        let mut w = SplitWindow::with_capacity(2);
        w.push(1.0);
        w.push(2.0);
        w.push(3.0);
    }

    #[test]
    fn split_moments_match_batch() {
        let xs = [0.1, 0.9, 0.4, 0.6, 0.2, 0.8, 0.35, 0.65];
        let mut w = SplitWindow::with_capacity(16);
        for &x in &xs {
            w.push(x);
        }
        for split in 0..=xs.len() {
            w.set_split(split);
            let (hist, new) = xs.split_at(split);
            if split > 0 {
                assert!((w.hist_mean() - descriptive::mean(hist).unwrap()).abs() < 1e-12);
            }
            if split >= 2 {
                assert!(
                    (w.hist_variance() - descriptive::sample_variance(hist).unwrap()).abs() < 1e-10
                );
            }
            if new.len() >= 2 {
                assert!(
                    (w.new_variance() - descriptive::sample_variance(new).unwrap()).abs() < 1e-10
                );
            }
            if !new.is_empty() {
                assert!((w.new_mean() - descriptive::mean(new).unwrap()).abs() < 1e-12);
            }
            assert_eq!(w.split(), split);
            assert_eq!(w.new_len(), xs.len() - split);
        }
        // Move the split back and forth; accumulators stay consistent.
        w.set_split(3);
        w.set_split(7);
        w.set_split(1);
        let (hist, _) = xs.split_at(1);
        assert!((w.hist_mean() - hist[0]).abs() < 1e-12);
    }

    #[test]
    fn push_slice_is_bit_exact_and_wraps() {
        // Exercise the wrapped-ring case: advance head first, then bulk-push
        // a slice that spans the wrap point.
        let xs: Vec<f64> = (0..10).map(|i| 0.1 + 0.07 * f64::from(i)).collect();
        let mut scalar = SplitWindow::with_capacity(8);
        let mut bulk = SplitWindow::with_capacity(8);
        for w in [&mut scalar, &mut bulk] {
            w.push(9.0);
            w.push(8.0);
            w.push(7.0);
            w.pop_front();
            w.pop_front();
            w.pop_front();
        }
        for &x in &xs[..6] {
            scalar.push(x);
        }
        bulk.push_slice(&xs[..6]);
        assert_eq!(bulk.to_vec(), scalar.to_vec());
        assert_eq!(bulk.new_moments_raw(), scalar.new_moments_raw());
        assert_eq!(bulk.len(), scalar.len());
        // Empty slice is a no-op.
        bulk.push_slice(&[]);
        assert_eq!(bulk.to_vec(), scalar.to_vec());
    }

    #[test]
    #[should_panic(expected = "free slots")]
    fn push_slice_past_capacity_panics() {
        let mut w = SplitWindow::with_capacity(3);
        w.push(1.0);
        w.push_slice(&[2.0, 3.0, 4.0]);
    }

    #[test]
    fn pop_front_consumes_hist_then_new() {
        let mut w = SplitWindow::with_capacity(8);
        for &x in &[1.0, 2.0, 3.0, 4.0] {
            w.push(x);
        }
        w.set_split(2);
        assert_eq!(w.pop_front(), Some(1.0));
        assert_eq!(w.split(), 1);
        assert_eq!(w.pop_front(), Some(2.0));
        assert_eq!(w.split(), 0);
        // Now popping comes out of W_new.
        assert_eq!(w.pop_front(), Some(3.0));
        assert!((w.new_mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn whole_window_mean() {
        let mut w = SplitWindow::with_capacity(4);
        w.push(0.25);
        w.push(0.75);
        w.set_split(1);
        assert!((w.mean() - 0.5).abs() < 1e-12);
        assert_eq!(SplitWindow::with_capacity(4).mean(), 0.0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut w = SplitWindow::with_capacity(4);
        w.push(1.0);
        w.push(2.0);
        w.set_split(1);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.split(), 0);
        assert_eq!(w.hist_mean(), 0.0);
        assert_eq!(w.new_mean(), 0.0);
        // Usable after clear.
        w.push(5.0);
        assert_eq!(w.to_vec(), vec![5.0]);
    }

    #[test]
    fn state_round_trip_is_bit_exact() {
        let mut w = SplitWindow::with_capacity(8);
        // Exercise eviction and split movement so the accumulators carry
        // add/remove rounding history.
        for i in 0..20u32 {
            if w.len() == w.capacity() {
                w.pop_front();
            }
            w.push(0.05 + 0.031 * f64::from(i));
            w.set_split(w.len() / 2);
        }
        let restored = SplitWindow::from_state(
            w.capacity(),
            &w.to_vec(),
            w.split(),
            w.hist_moments_raw(),
            w.new_moments_raw(),
        )
        .expect("consistent state");
        assert_eq!(restored.to_vec(), w.to_vec());
        assert_eq!(restored.split(), w.split());
        assert_eq!(restored.hist_mean().to_bits(), w.hist_mean().to_bits());
        assert_eq!(restored.new_std().to_bits(), w.new_std().to_bits());
        assert_eq!(restored.hist_moments_raw(), w.hist_moments_raw());
        assert_eq!(restored.new_moments_raw(), w.new_moments_raw());
    }

    #[test]
    fn from_state_rejects_inconsistent_pieces() {
        let good = ([0.1, 0.2, 0.3], 1usize);
        let hist = {
            let mut m = optwin_stats::incremental::WindowMoments::new();
            m.add(good.0[0]);
            m.to_raw()
        };
        let new = {
            let mut m = optwin_stats::incremental::WindowMoments::new();
            m.add(good.0[1]);
            m.add(good.0[2]);
            m.to_raw()
        };
        assert!(SplitWindow::from_state(4, &good.0, good.1, hist, new).is_some());
        // Too small a capacity, split out of range, mismatched counts.
        assert!(SplitWindow::from_state(2, &good.0, good.1, hist, new).is_none());
        assert!(SplitWindow::from_state(4, &good.0, 4, hist, new).is_none());
        assert!(SplitWindow::from_state(4, &good.0, 2, hist, new).is_none());
        assert!(
            SplitWindow::from_state(0, &[], 0, (0, 0.0, 0.0, 0.0), (0, 0.0, 0.0, 0.0)).is_none()
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let w = SplitWindow::with_capacity(2);
        let _ = w.get(0);
    }

    #[test]
    #[should_panic(expected = "exceeds window length")]
    fn split_beyond_len_panics() {
        let mut w = SplitWindow::with_capacity(4);
        w.push(1.0);
        w.set_split(2);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use optwin_stats::descriptive;
    use proptest::prelude::*;

    /// Operations for the stateful property test.
    #[derive(Debug, Clone)]
    enum Op {
        Push(f64),
        Pop,
        SetSplitFraction(f64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0.0f64..1.0).prop_map(Op::Push),
            Just(Op::Pop),
            (0.0f64..=1.0).prop_map(Op::SetSplitFraction),
        ]
    }

    proptest! {
        /// The incremental sub-window moments always agree with a batch
        /// recomputation over the window contents, regardless of the order of
        /// pushes, pops and split moves.
        #[test]
        fn incremental_matches_exact(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            let capacity = 32;
            let mut w = SplitWindow::with_capacity(capacity);
            let mut model: Vec<f64> = Vec::new();
            let mut split = 0usize;

            for op in ops {
                match op {
                    Op::Push(x) => {
                        if model.len() == capacity {
                            // Mirror the detector's behaviour: drop the oldest.
                            w.pop_front();
                            model.remove(0);
                            split = split.saturating_sub(1);
                        }
                        w.push(x);
                        model.push(x);
                    }
                    Op::Pop => {
                        let popped = w.pop_front();
                        if model.is_empty() {
                            prop_assert_eq!(popped, None);
                        } else {
                            prop_assert_eq!(popped, Some(model.remove(0)));
                            split = split.saturating_sub(1);
                        }
                    }
                    Op::SetSplitFraction(f) => {
                        split = ((model.len() as f64) * f).floor() as usize;
                        split = split.min(model.len());
                        w.set_split(split);
                    }
                }
                prop_assert_eq!(w.len(), model.len());
                let (hist, new) = model.split_at(split.min(model.len()));
                if hist.len() >= 2 {
                    let exact = descriptive::sample_variance(hist).unwrap();
                    prop_assert!((w.hist_variance() - exact).abs() < 1e-8);
                }
                if new.len() >= 2 {
                    let exact = descriptive::sample_variance(new).unwrap();
                    prop_assert!((w.new_variance() - exact).abs() < 1e-8);
                }
                if !hist.is_empty() {
                    prop_assert!((w.hist_mean() - descriptive::mean(hist).unwrap()).abs() < 1e-9);
                }
                if !new.is_empty() {
                    prop_assert!((w.new_mean() - descriptive::mean(new).unwrap()).abs() < 1e-9);
                }
            }
        }
    }
}
