//! Minimal, offline stand-in for the [`rand`] 0.8 API subset this workspace
//! uses: `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64` and
//! `rngs::StdRng`.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. `StdRng` here is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, fully deterministic generator. The exact value sequences
//! differ from upstream rand's ChaCha-based `StdRng`; everything in this
//! workspace only relies on seeded determinism, never on a specific stream.
//!
//! [`rand`]: https://crates.io/crates/rand

#![deny(missing_docs)]

/// Low-level entropy source: a generator of raw 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a single `u64` seed (the only constructor
    /// this workspace uses).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from a generator's "standard" distribution:
/// uniform over the type's natural domain (`[0, 1)` for floats, the full
/// range for integers, fair coin for `bool`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Element types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)` (`hi` inclusive when `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_uniform_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "gen_range called with an empty range");
                // Modulo sampling: the bias is < span / 2^64, far below
                // anything observable for the small spans used here.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

int_uniform_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo < hi, "gen_range called with an empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo < hi, "gen_range called with an empty range");
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}

/// Ranges that `Rng::gen_range` accepts. The element type `T` is a separate
/// parameter (as in rand 0.8) so that call-site inference can flow from the
/// expected output type into untyped literals like `0..3`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with an empty range");
        T::sample_range(rng, lo, hi, true)
    }
}

/// The user-facing random-value interface (rand 0.8 signatures).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix64(&mut state);
            }
            // An all-zero state is a fixed point of xoshiro; SplitMix64 never
            // produces four zero outputs in a row, but guard regardless.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_standard_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let k = rng.gen_range(0..10usize);
            seen[k] = true;
            let x = rng.gen_range(2.5..3.5);
            assert!((2.5..3.5).contains(&x));
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(0..=3u32);
            assert!(w <= 3);
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..=2_800).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
