//! Minimal, offline stand-in for the [`criterion`] API subset this workspace
//! uses: `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size` and `throughput`, `bench_function` / `bench_with_input`, and
//! `black_box`.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim measures wall-clock time per iteration (after a short
//! warm-up), reports mean / best times and derived throughput, and prints a
//! plain-text table — no statistical outlier analysis, HTML reports, or
//! baseline comparisons.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![deny(missing_docs)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished benchmark, as recorded for the machine-readable report.
#[derive(Debug, Clone)]
struct BenchRecord {
    group: String,
    label: String,
    mean_ns: u128,
    best_ns: u128,
    samples: usize,
    throughput: Option<Throughput>,
}

/// Process-wide registry of finished benchmarks, drained by
/// [`write_json_report`] at the end of the bench binary.
static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes every benchmark recorded so far to `BENCH_<name>.json` in the
/// working directory (or `$OPTWIN_BENCH_JSON_DIR` when set), so the perf
/// trajectory can be tracked across revisions. Called automatically by the
/// [`criterion_main!`] expansion; harmless to call with no records.
pub fn write_json_report(name: &str) {
    let records = RECORDS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if records.is_empty() {
        return;
    }
    let dir = std::env::var("OPTWIN_BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    let mut body = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        let mean_secs = r.mean_ns as f64 / 1e9;
        let mut entry = format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"mean_ns\": {}, \"best_ns\": {}, \"samples\": {}",
            json_escape(&r.group),
            json_escape(&r.label),
            r.mean_ns,
            r.best_ns,
            r.samples
        );
        match r.throughput {
            Some(Throughput::Elements(n)) => {
                let rate = if mean_secs > 0.0 {
                    n as f64 / mean_secs
                } else {
                    0.0
                };
                entry.push_str(&format!(", \"elements\": {n}, \"elem_per_sec\": {rate:.1}"));
            }
            Some(Throughput::Bytes(n)) => {
                let rate = if mean_secs > 0.0 {
                    n as f64 / mean_secs
                } else {
                    0.0
                };
                entry.push_str(&format!(", \"bytes\": {n}, \"bytes_per_sec\": {rate:.1}"));
            }
            None => {}
        }
        entry.push('}');
        if i + 1 < records.len() {
            entry.push(',');
        }
        entry.push('\n');
        body.push_str(&entry);
    }
    body.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("machine-readable report: {}", path.display());
    }
}

/// Opaque black box preventing the optimiser from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration annotation used to derive throughput numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording one wall-clock sample per run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: fill caches and trigger lazy initialisation.
        for _ in 0..2 {
            black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn report(group: &str, label: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{label}: no samples recorded");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let best = *samples.iter().min().expect("non-empty");
    let mut line = format!(
        "{group}/{label}: mean {} (best {}, {} samples)",
        format_duration(mean),
        format_duration(best),
        samples.len()
    );
    if let Some(tp) = throughput {
        let per_sec = |units: u64| {
            let secs = mean.as_secs_f64();
            if secs > 0.0 {
                units as f64 / secs
            } else {
                f64::INFINITY
            }
        };
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!(", {:.3} Melem/s", per_sec(n) / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(", {:.3} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
            }
        }
    }
    println!("{line}");
    RECORDS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(BenchRecord {
            group: group.to_string(),
            label: label.to_string(),
            mean_ns: mean.as_nanos(),
            best_ns: best.as_nanos(),
            samples: samples.len(),
            throughput,
        });
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, &id.label, &bencher.samples, self.throughput);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        report(&self.name, &id.label, &bencher.samples, self.throughput);
        self
    }

    /// Ends the group (kept for API parity; prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
///
/// On top of running the groups, the expansion writes every recorded result
/// to `BENCH_<crate name>.json` (for a `[[bench]]` target the crate name *is*
/// the bench name), giving each bench binary a machine-readable twin of its
/// text report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report(env!("CARGO_CRATE_NAME"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3).throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            });
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        // 2 warm-up + 3 timed iterations.
        assert_eq!(runs, 5);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(12)).contains("µs"));
        assert!(format_duration(Duration::from_millis(12)).contains("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }

    #[test]
    fn benchmark_ids() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
        assert_eq!(BenchmarkId::from("abc").label, "abc");
    }

    #[test]
    fn json_report_written_with_rates() {
        let dir = std::env::temp_dir().join("criterion_shim_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("OPTWIN_BENCH_JSON_DIR", &dir);
        report(
            "g",
            "fast \"path\"",
            &[Duration::from_micros(10), Duration::from_micros(20)],
            Some(Throughput::Elements(1_500)),
        );
        report(
            "g",
            "bytes",
            &[Duration::from_micros(10)],
            Some(Throughput::Bytes(4_096)),
        );
        write_json_report("unit_test");
        std::env::remove_var("OPTWIN_BENCH_JSON_DIR");
        let body = std::fs::read_to_string(dir.join("BENCH_unit_test.json")).unwrap();
        assert!(body.contains("\"group\": \"g\""));
        assert!(body.contains("fast \\\"path\\\""));
        assert!(body.contains("\"elements\": 1500"));
        assert!(body.contains("\"elem_per_sec\""));
        assert!(body.contains("\"bytes_per_sec\""));
        // The mean of 10 µs and 20 µs is 15 µs -> 1e8 elem/s.
        assert!(body.contains("\"mean_ns\": 15000"));
    }
}
