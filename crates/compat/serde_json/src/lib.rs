//! Minimal, offline stand-in for the [`serde_json`] API subset this
//! workspace uses: [`to_string`], [`to_string_pretty`] and [`from_str`],
//! operating through the workspace `serde` shim's [`serde::Value`] tree.
//!
//! [`serde_json`]: https://crates.io/crates/serde_json

#![deny(missing_docs)]

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Error produced by serialisation or parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.message)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; mirror the common lossy convention.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep integral floats readable and round-trippable.
        out.push_str(&format!("{x:.1}"));
    } else {
        // Rust's shortest round-trip formatting.
        out.push_str(&format!("{x}"));
    }
}

fn emit(value: &Value, out: &mut String, pretty: bool, indent: usize) {
    let pad = |out: &mut String, level: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..level {
                out.push_str("  ");
            }
        }
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                    if !pretty {
                        // compact arrays have no extra whitespace
                    }
                }
                pad(out, indent + 1);
                emit(item, out, pretty, indent + 1);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (k, (key, item)) in fields.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(out, key);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                emit(item, out, pretty, indent + 1);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serialises `value` to compact JSON.
///
/// # Errors
///
/// Infallible for the value-tree model; the `Result` mirrors the upstream
/// signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, false, 0);
    Ok(out)
}

/// Serialises `value` to human-readable, two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the value-tree model; the `Result` mirrors the upstream
/// signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, true, 0);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        match self.peek() {
            Some(found) if found == b => {
                self.pos += 1;
                Ok(())
            }
            other => Err(Error::new(format!(
                "expected `{}` at byte {}, found {other:?}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input at byte {}: {other:?}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            // Digit strings beyond integer range (e.g. f64::MAX printed in
            // full) still parse exactly as floats.
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume the whole contiguous run of unescaped bytes and
                    // validate it as UTF-8 once. Validating per character from
                    // `pos` to end-of-input made parsing O(n²) — a 2 MiB fleet
                    // snapshot took over a minute to read back.
                    let start = self.pos - 1;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error::new(format!("expected `,` or `]`, found {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(Error::new(format!("expected `,` or `}}`, found {other:?}"))),
            }
        }
    }
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_and_parses_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b".to_string()).unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn round_trips_nested_values() {
        let v: Vec<Option<f64>> = vec![Some(1.25), None, Some(-3.0)];
        let json = to_string(&v).unwrap();
        let back: Vec<Option<f64>> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v = serde::Value::Object(vec![
            ("name".into(), serde::Value::Str("OPTWIN".into())),
            (
                "delays".into(),
                serde::Value::Array(vec![serde::Value::Float(10.0)]),
            ),
        ]);
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains("\"name\": \"OPTWIN\""));
        assert!(json.contains('\n'));
        let back: serde::Value = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("[1,").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<f64>("{\"a\":}").is_err());
    }

    #[test]
    fn float_round_trip_precision() {
        for &x in &[0.1, 1.0 / 3.0, 1e-12, 12345.6789, f64::MAX] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(x, back, "json = {json}");
        }
    }
}
