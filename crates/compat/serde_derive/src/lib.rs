//! Derive macros for the workspace's offline `serde` shim.
//!
//! Written directly against `proc_macro` (no `syn`/`quote` — the build
//! environment is offline), so the supported input shapes are deliberately
//! narrow: structs with named fields and enums whose variants are all unit
//! variants. That covers every result-record type in the workspace; anything
//! else produces a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum with unit variants only.
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

/// Skips one attribute (`#` + bracket group) if present at the cursor.
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips `pub` / `pub(...)` if present at the cursor.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attributes(&tokens, 0);
    i = skip_visibility(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.clone(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "generic type `{name}` is not supported by the serde shim derive"
                ));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "tuple struct `{name}` is not supported by the serde shim derive"
                ));
            }
            Some(_) => i += 1,
            None => return Err(format!("missing `{{ .. }}` body for `{name}`")),
        }
    };

    let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    if kind == "struct" {
        let mut fields = Vec::new();
        let mut j = 0;
        while j < body_tokens.len() {
            j = skip_attributes(&body_tokens, j);
            j = skip_visibility(&body_tokens, j);
            let field = match body_tokens.get(j) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                None => break,
                other => return Err(format!("expected field name in `{name}`, found {other:?}")),
            };
            j += 1;
            match body_tokens.get(j) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => j += 1,
                other => {
                    return Err(format!(
                        "expected `:` after field `{field}`, found {other:?}"
                    ))
                }
            }
            // Skip the type: advance to the next comma at angle-bracket depth 0.
            let mut depth = 0i32;
            while let Some(tok) = body_tokens.get(j) {
                if let TokenTree::Punct(p) = tok {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ',' if depth == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            j += 1; // past the comma (or the end)
            fields.push(field);
        }
        Ok(Shape::Struct { name, fields })
    } else {
        let mut variants = Vec::new();
        let mut j = 0;
        while j < body_tokens.len() {
            j = skip_attributes(&body_tokens, j);
            let variant = match body_tokens.get(j) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                None => break,
                other => {
                    return Err(format!(
                        "expected variant name in `{name}`, found {other:?}"
                    ))
                }
            };
            j += 1;
            match body_tokens.get(j) {
                Some(TokenTree::Group(_)) => {
                    return Err(format!(
                        "variant `{name}::{variant}` has payload data; the serde shim derive only supports unit variants"
                    ));
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                    return Err(format!(
                        "variant `{name}::{variant}` has a discriminant; not supported by the serde shim derive"
                    ));
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => j += 1,
                None => {}
                other => {
                    return Err(format!(
                        "unexpected token after `{name}::{variant}`: {other:?}"
                    ))
                }
            }
            variants.push(variant);
        }
        Ok(Shape::Enum { name, variants })
    }
}

/// Derives the shim's `serde::Serialize` (a `to_value` tree conversion).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derives the shim's `serde::Deserialize` (reconstruction from a value
/// tree).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(value.get({f:?}).ok_or_else(|| \
                         ::serde::DeError::new(format!(\"missing field `{f}` in {name}\")))?)?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         if value.as_object().is_none() {{\n\
                             return Err(::serde::DeError::new(format!(\"expected object for {name}\")));\n\
                         }}\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\
                                 other => Err(::serde::DeError::new(format!(\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             other => Err(::serde::DeError::new(format!(\
                                 \"expected string for {name}, found {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
