//! Minimal, offline stand-in for the [`parking_lot`] API subset this
//! workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim wraps `std::sync` primitives and exposes the
//! non-poisoning `lock()` / `read()` / `write()` signatures of parking_lot.
//! A poisoned std lock (a thread panicked while holding it) is surfaced by
//! taking the inner value anyway, matching parking_lot's behaviour of not
//! propagating poison.
//!
//! [`parking_lot`]: https://crates.io/crates/parking_lot

#![deny(missing_docs)]

use std::sync;

// Guard types are std's (parking_lot's own guards are API-compatible for
// the deref/drop subset this workspace uses).
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_across_threads() {
        let l = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 400);
    }
}
