//! Minimal, offline stand-in for the [`proptest`] API subset this workspace
//! uses: range strategies, `collection::vec`, `Just`, `prop_map`,
//! `prop_oneof!`, and the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. Differences from upstream are deliberate simplifications:
//!
//! * a fixed number of cases per property ([`CASES`]) from a seed derived
//!   deterministically from the test name — every run explores the same
//!   inputs, so failures are always reproducible;
//! * no shrinking — the failing inputs are printed verbatim instead;
//! * strategies are plain value generators (no value trees).
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![deny(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Number of cases generated per property.
pub const CASES: u32 = 48;

/// Error signalled by `prop_assert!` and friends inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Description of the failed assertion.
    pub message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        Self { message }
    }
}

/// Deterministic generator driving the strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator from a test name, so every property has its own
    /// reproducible stream.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        self.next_u64() % n
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value: Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Occasionally produce the exact endpoints: properties often key on
        // boundary behaviour (e.g. x = 0 or x = 1).
        match rng.below(16) {
            0 => lo,
            1 => hi,
            _ => lo + rng.unit_f64() * (hi - lo),
        }
    }
}

macro_rules! int_strategy_impl {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

int_strategy_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A boxed generator closure, the type-erased form strategies take inside
/// [`prop_oneof!`].
pub type BoxedGen<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// A type-erased choice for [`prop_oneof!`].
pub struct Union<V> {
    choices: Vec<BoxedGen<V>>,
}

impl<V: Debug> Union<V> {
    /// Builds a uniform union of the given generator closures.
    #[must_use]
    pub fn new(choices: Vec<BoxedGen<V>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Self { choices }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let k = rng.below(self.choices.len() as u64) as usize;
        (self.choices[k])(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// lies in `size` (half-open, like upstream proptest).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The common imports block, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, Strategy,
        TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }` block
/// becomes a `#[test]` that runs the body over [`CASES`](crate::CASES)
/// deterministically generated inputs, printing the inputs on failure.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+),
                        $(&$arg),+
                    );
                    // `Result` is fully qualified: property bodies often run
                    // inside modules that alias `Result` to a crate-local
                    // error type.
                    let outcome: ::std::thread::Result<
                        ::core::result::Result<(), $crate::TestCaseError>,
                    > = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || -> ::core::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::core::result::Result::Ok(())
                        },
                    ));
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => {
                            panic!(
                                "property `{}` failed at case {case}/{} with inputs: {inputs}\n  {}",
                                stringify!($name), $crate::CASES, e.message
                            );
                        }
                        Err(panic_payload) => {
                            eprintln!(
                                "property `{}` panicked at case {case}/{} with inputs: {inputs}",
                                stringify!($name), $crate::CASES
                            );
                            ::std::panic::resume_unwind(panic_payload);
                        }
                    }
                }
            }
        )+
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // `match` instead of `if !cond` keeps clippy's negated-partial-ord
        // lint quiet at every float-comparison call site.
        match $cond {
            true => {}
            false => {
                return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                    "assertion failed: {}",
                    stringify!($cond)
                )))
            }
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        match $cond {
            true => {}
            false => {
                return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                    $($fmt)*
                )))
            }
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: {l:?}, right: {r:?})",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// `assert_ne!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both: {l:?})",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// Uniformly picks between heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $({
                let s = $strategy;
                // Each closure unsizes to `Box<dyn Fn(..) -> V>` through the
                // expected type of `Union::new`'s parameter.
                Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::new_value(&s, rng))
            }),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..1.0, k in 3usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((3..10).contains(&k));
        }

        #[test]
        fn vec_strategy_obeys_size(xs in crate::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u32..10).prop_map(|x| x as i64),
            Just(-1i64),
        ]) {
            prop_assert!(v == -1 || (0..10).contains(&v));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("u");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_report_inputs() {
        proptest! {
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x < 0.0, "x = {x} is not negative");
            }
        }
        always_fails();
    }
}
