//! Minimal, offline stand-in for the [`serde`] API subset this workspace
//! uses: `#[derive(Serialize, Deserialize)]` on plain structs and unit-only
//! enums, plus the `Serialize` bound consumed by `serde_json`.
//!
//! The build environment has no network access, so the real crates cannot be
//! fetched. Instead of serde's visitor architecture, this shim serialises
//! through an owned [`Value`] tree — ample for the result-record types the
//! evaluation harness persists, and wire-compatible with the JSON they
//! produce (externally-tagged unit enum variants, field-name objects).
//!
//! [`serde`]: https://crates.io/crates/serde

#![deny(missing_docs)]

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned, JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so `u64::MAX` survives).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object fields when this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a field by name in an object value.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

/// Error produced when a [`Value`] cannot be converted into the requested
/// type.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs a value of this type from the tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree's shape does not match the type.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(format!("{i} out of range for {}", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::new(format!("{u} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        "expected integer for {}, found {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::UInt(*self)
    }
}

impl Deserialize for u64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::UInt(u) => Ok(*u),
            Value::Int(i) => {
                u64::try_from(*i).map_err(|_| DeError::new(format!("{i} out of range for u64")))
            }
            other => Err(DeError::new(format!(
                "expected integer for u64, found {other:?}"
            ))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(DeError::new(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Value::Float(2.0)).unwrap(),
            Some(2.0)
        );
        let v: Vec<usize> = vec![1, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), None);
        assert!(Value::Null.get("a").is_none());
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        let e = String::from_value(&Value::Bool(true)).unwrap_err();
        assert!(e.to_string().contains("expected string"));
    }
}
