//! Reproduces the statistical-significance claim of §4.1: OPTWIN's F1 scores
//! are compared against ADWIN's and STEPD's (the two baselines that, like
//! OPTWIN, accept real-valued input) across the Table 1 experiments with a
//! one-tailed Wilcoxon signed-rank test at α = 0.05.
//!
//! ```text
//! cargo run --release -p optwin-bench --bin significance
//! cargo run --release -p optwin-bench --bin significance -- --full
//! ```

use optwin_baselines::DetectorKind;
use optwin_bench::{Args, RunScale};
use optwin_eval::experiment::{run_table1_experiment, Table1Experiment};
use optwin_eval::DetectorFactory;
use optwin_stats::tests::{wilcoxon_signed_rank, Alternative};

fn main() {
    let args = Args::from_env();
    let scale = RunScale::from_args(&args);
    println!(
        "Wilcoxon signed-rank comparison of per-experiment F1 scores \
         ({} repetitions per experiment, seed {})",
        scale.repetitions, scale.seed
    );
    println!();

    let factory = DetectorFactory::with_optwin_window(scale.optwin_w_max);
    // Collect per-experiment F1 per detector.
    let mut f1_per_detector: std::collections::HashMap<String, Vec<f64>> =
        std::collections::HashMap::new();
    for experiment in Table1Experiment::all() {
        let rows = run_table1_experiment(
            experiment,
            &factory,
            scale.repetitions,
            scale.stream_len,
            scale.seed,
        );
        for row in rows {
            f1_per_detector
                .entry(row.detector.clone())
                .or_default()
                .push(row.metrics.f1);
        }
        println!("finished {}", experiment.label());
    }
    println!();

    let optwin_labels = [
        DetectorKind::OptwinRho(100).label(),
        DetectorKind::OptwinRho(500).label(),
        DetectorKind::OptwinRho(1000).label(),
    ];
    let baseline_labels = [DetectorKind::Adwin.label(), DetectorKind::Stepd.label()];

    println!(
        "{:<18} {:<10} {:>10} {:>12} {:>14}",
        "OPTWIN config", "baseline", "n pairs", "p-value", "significant?"
    );
    for optwin in &optwin_labels {
        let optwin_f1 = &f1_per_detector[optwin];
        for baseline in &baseline_labels {
            let baseline_f1 = &f1_per_detector[baseline];
            // The baselines only run on the experiments they support; pair up
            // the first `min(len)` experiments (ADWIN/STEPD run on all seven,
            // so in practice the lengths match).
            let n = optwin_f1.len().min(baseline_f1.len());
            match wilcoxon_signed_rank(&optwin_f1[..n], &baseline_f1[..n], Alternative::Greater) {
                Ok(result) => {
                    println!(
                        "{:<18} {:<10} {:>10} {:>12.4} {:>14}",
                        optwin,
                        baseline,
                        result.n_used,
                        result.p_value,
                        if result.p_value < 0.05 { "yes" } else { "no" }
                    );
                }
                Err(e) => println!("{optwin:<18} {baseline:<10} comparison failed: {e}"),
            }
        }
    }
}
