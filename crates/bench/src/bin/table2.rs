//! Reproduces **Table 2** of the OPTWIN paper: prequential Naive-Bayes
//! accuracy per drift detector on the synthetic datasets (sudden and gradual
//! drifts) and the real-world stand-in streams.
//!
//! ```text
//! cargo run --release -p optwin-bench --bin table2                 # quick run
//! cargo run --release -p optwin-bench --bin table2 -- --full       # paper scale
//! cargo run --release -p optwin-bench --bin table2 -- --realworld  # only the real-world columns
//! ```

use optwin_bench::{Args, RunScale};
use optwin_eval::classification::{run_classification_column, ClassificationExperiment};
use optwin_eval::report::{render_table2, to_json};
use optwin_eval::DetectorFactory;

fn main() {
    let args = Args::from_env();
    let scale = RunScale::from_args(&args);

    let experiments: Vec<ClassificationExperiment> = if args.has_flag("realworld") {
        vec![
            ClassificationExperiment::Electricity,
            ClassificationExperiment::Covertype,
        ]
    } else if args.has_flag("synthetic") {
        ClassificationExperiment::all()
            .into_iter()
            .filter(ClassificationExperiment::has_known_drifts)
            .collect()
    } else {
        ClassificationExperiment::all().to_vec()
    };

    println!(
        "Table 2 reproduction — seed {}, OPTWIN w_max {}, stream length {}",
        scale.seed,
        scale.optwin_w_max,
        scale
            .stream_len
            .map_or_else(|| "paper default".to_string(), |l| l.to_string()),
    );
    println!();

    let mut factory = DetectorFactory::with_optwin_window(scale.optwin_w_max);
    let mut all_rows = Vec::new();
    for experiment in experiments {
        let rows =
            run_classification_column(experiment, &mut factory, scale.stream_len, scale.seed);
        println!("{}", render_table2(&rows));
        all_rows.extend(rows);
    }

    if let Some(path) = args.get("json") {
        match to_json(&all_rows) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("failed to write {path}: {e}");
                } else {
                    println!("wrote JSON results to {path}");
                }
            }
            Err(e) => eprintln!("failed to serialise results: {e}"),
        }
    }
}
