//! Reproduces the data behind **Figures 2, 3 and 4** of the OPTWIN paper
//! (per-detector detections, false positives and delays on a single
//! representative run), and the ν(|W|) optimal-cut curves discussed in §3.3.
//!
//! ```text
//! cargo run --release -p optwin-bench --bin figures -- --figure 2   # sudden binary drift
//! cargo run --release -p optwin-bench --bin figures -- --figure 3   # gradual binary drift
//! cargo run --release -p optwin-bench --bin figures -- --figure 4   # AGRAWAL sudden drift
//! cargo run --release -p optwin-bench --bin figures -- --figure nu  # optimal-cut curves
//! ```

use optwin_bench::{Args, RunScale};
use optwin_core::{CutTable, OptwinConfig};
use optwin_eval::experiment::{run_detector_on_sequence, Table1Experiment};
use optwin_eval::DetectorFactory;

fn run_figure(experiment: Table1Experiment, scale: &optwin_bench::RunScale) {
    let stream_len = scale
        .stream_len
        .unwrap_or_else(|| experiment.default_stream_len());
    let (errors, schedule) = experiment.build_error_sequence(scale.seed, stream_len);
    println!(
        "{} — single run, {} elements, true drifts at {:?}",
        experiment.label(),
        stream_len,
        schedule.positions()
    );
    println!(
        "{:<18} {:>4} {:>4} {:>4} {:>10}   detections",
        "Detector", "TP", "FP", "FN", "mean delay"
    );
    let factory = DetectorFactory::with_optwin_window(scale.optwin_w_max);
    for kind in experiment.applicable_detectors() {
        let mut detector = factory.build(kind);
        let run = run_detector_on_sequence(detector.as_mut(), &errors, &schedule);
        let delay = run
            .outcome
            .mean_delay
            .map_or_else(|| "-".to_string(), |d| format!("{d:.1}"));
        let shown: Vec<usize> = run.detections.iter().copied().take(12).collect();
        let ellipsis = if run.detections.len() > 12 {
            ", …"
        } else {
            ""
        };
        println!(
            "{:<18} {:>4} {:>4} {:>4} {:>10}   {:?}{}",
            kind.label(),
            run.outcome.true_positives,
            run.outcome.false_positives,
            run.outcome.false_negatives,
            delay,
            shown,
            ellipsis
        );
    }
    println!();
}

fn run_nu_curves(scale: &optwin_bench::RunScale) {
    println!("Optimal-cut curves: |W_new| = |W| - split as a function of |W| (δ = 0.99)");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "|W|", "rho=0.1", "rho=0.5", "rho=1.0"
    );
    let w_max = scale.optwin_w_max;
    let tables: Vec<(f64, CutTable)> = [0.1, 0.5, 1.0]
        .into_iter()
        .map(|rho| {
            let config = OptwinConfig::builder()
                .robustness(rho)
                .max_window(w_max)
                .build()
                .expect("valid config");
            (rho, CutTable::new(&config).expect("valid config"))
        })
        .collect();
    let mut w = 30usize;
    while w <= w_max {
        let cells: Vec<String> = tables
            .iter()
            .map(|(_, table)| match table.entry(w) {
                Ok(e) if e.exact => format!("{}", w - e.split),
                Ok(_) => format!("{} (ν=0.5)", w - w / 2),
                Err(_) => "-".to_string(),
            })
            .collect();
        println!(
            "{:>8} {:>14} {:>14} {:>14}",
            w, cells[0], cells[1], cells[2]
        );
        w = (w as f64 * 1.6).ceil() as usize;
    }
    println!();
}

fn main() {
    let args = Args::from_env();
    let scale = RunScale::from_args(&args);
    match args.get("figure") {
        Some("2") => run_figure(Table1Experiment::SuddenBinary, &scale),
        Some("3") => run_figure(Table1Experiment::GradualBinary, &scale),
        Some("4") => run_figure(Table1Experiment::Agrawal, &scale),
        Some("nu") => run_nu_curves(&scale),
        Some(other) => {
            eprintln!("unknown figure `{other}`; expected 2, 3, 4 or nu");
            std::process::exit(2);
        }
        None => {
            run_figure(Table1Experiment::SuddenBinary, &scale);
            run_figure(Table1Experiment::GradualBinary, &scale);
            run_figure(Table1Experiment::Agrawal, &scale);
            run_nu_curves(&scale);
        }
    }
}
