//! Reproduces **Figure 5** of the OPTWIN paper: drift detection over the loss
//! of a neural network with label-swap drifts, comparing OPTWIN and ADWIN on
//! detection quality, triggered fine-tuning iterations and total pipeline
//! wall-clock time (the paper reports OPTWIN making the pipeline ~21 %
//! faster thanks to its lower false-positive rate).
//!
//! ```text
//! cargo run --release -p optwin-bench --bin fig5_nn
//! cargo run --release -p optwin-bench --bin fig5_nn -- --full   # longer stream
//! ```

use optwin_baselines::Adwin;
use optwin_bench::Args;
use optwin_core::{DriftDetector, Optwin, OptwinConfig};
use optwin_eval::nn_pipeline::{run_nn_pipeline, NnPipelineConfig, NnPipelineOutcome};
use optwin_eval::report::to_json;

fn print_outcome(label: &str, o: &NnPipelineOutcome) {
    println!("{label}");
    println!("  drifts detected     : {}", o.detections.len());
    println!(
        "  TP / FP / FN        : {} / {} / {}",
        o.outcome.true_positives, o.outcome.false_positives, o.outcome.false_negatives
    );
    println!(
        "  mean delay          : {}",
        o.outcome
            .mean_delay
            .map_or_else(|| "-".to_string(), |d| format!("{d:.1} batches"))
    );
    println!("  fine-tune batches   : {}", o.fine_tune_iterations);
    println!("  pipeline wall time  : {:.2} s", o.wall_seconds);
    println!(
        "  detector time/batch : {:.2} µs",
        o.seconds_per_detection_call * 1e6
    );
    println!("  final batch loss    : {:.3}", o.final_loss);
    println!();
}

fn main() {
    let args = Args::from_env();
    let full = args.has_flag("full");
    let config = NnPipelineConfig {
        total_batches: args.get_parsed("batches", if full { 60_000 } else { 8_000 }),
        fine_tune_batches: args.get_parsed("fine-tune", if full { 1_800 } else { 250 }),
        pretrain_batches: if full { 4_000 } else { 1_000 },
        seed: args.get_parsed("seed", 17),
        ..NnPipelineConfig::default()
    };
    println!(
        "Figure 5 reproduction — {} batches of {} instances, {} label-swap drifts, seed {}",
        config.total_batches, config.batch_size, config.n_drifts, config.seed
    );
    println!();

    let w_max = args.get_parsed("optwin-w-max", if full { 25_000usize } else { 4_000 });
    let mut outcomes = Vec::new();

    for rho in [0.1, 0.5] {
        let mut optwin = Optwin::new(
            OptwinConfig::builder()
                .robustness(rho)
                .max_window(w_max)
                .build()
                .expect("valid config"),
        )
        .expect("valid config");
        let outcome = run_nn_pipeline(&config, &mut optwin);
        print_outcome(&format!("OPTWIN (rho = {rho})"), &outcome);
        outcomes.push((format!("OPTWIN rho={rho}"), outcome));
    }

    let mut adwin = Adwin::with_defaults();
    let adwin_outcome = run_nn_pipeline(&config, &mut adwin);
    print_outcome(adwin.name(), &adwin_outcome);
    outcomes.push(("ADWIN".to_string(), adwin_outcome.clone()));

    // Pipeline-speed comparison (the paper's 21 % claim).
    if let Some((_, optwin_outcome)) = outcomes.first() {
        let speedup = (adwin_outcome.wall_seconds - optwin_outcome.wall_seconds)
            / adwin_outcome.wall_seconds
            * 100.0;
        println!(
            "OPTWIN (rho = 0.1) pipeline is {speedup:.1}% {} than the ADWIN pipeline \
             ({} vs {} fine-tuning batches)",
            if speedup >= 0.0 { "faster" } else { "slower" },
            optwin_outcome.fine_tune_iterations,
            adwin_outcome.fine_tune_iterations
        );
    }

    if let Some(path) = args.get("json") {
        match to_json(&outcomes) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("failed to write {path}: {e}");
                } else {
                    println!("wrote JSON results to {path}");
                }
            }
            Err(e) => eprintln!("failed to serialise results: {e}"),
        }
    }
}
