//! The `driftbench` detection-quality benchmark: every detector spec kind
//! plus representative cascade/ensemble composites, across the full
//! adversarial scenario catalogue (abrupt, gradual, recurring concepts, slow
//! ramps, seasonal oscillation, variance-only drift, heavy-tailed noise),
//! replayed as Zipf-skewed production traffic through the sharded engine.
//!
//! ```text
//! cargo run --release -p optwin-bench --bin driftbench                  # quick grid
//! cargo run --release -p optwin-bench --bin driftbench -- --full        # larger grid
//! cargo run --release -p optwin-bench --bin driftbench -- --scenario seasonal
//! cargo run --release -p optwin-bench --bin driftbench -- --detector optwin
//! cargo run --release -p optwin-bench --bin driftbench -- --detector adwin:delta=0.01
//! cargo run --release -p optwin-bench --bin driftbench -- --json results/driftbench.json
//! ```
//!
//! `--scenario <id>` restricts the grid to one scenario
//! (`abrupt|gradual|recurring|ramp|seasonal|variance|heavy-tail`);
//! `--detector <label-or-spec>` restricts it to one line-up entry by label,
//! or to an arbitrary [`DetectorSpec`] string. The JSON written by `--json`
//! is the same [`DriftbenchReport`](optwin_eval::DriftbenchReport) shape the
//! golden quality suite (`tests/driftbench_quality.rs`) pins down.

use optwin_baselines::DetectorSpec;
use optwin_bench::Args;
use optwin_eval::driftbench::{run_driftbench, DriftbenchConfig};
use optwin_eval::DriftbenchCell;
use optwin_stream::ScenarioKind;

fn render_cells(title: &str, cells: &[&DriftbenchCell]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{title}\n{:<20} {:>5} {:>5} {:>5} {:>9} {:>9} {:>7} {:>7} {:>7}\n",
        "detector", "TP", "FP", "FN", "FP/10k", "delay", "prec", "recall", "F1"
    ));
    for cell in cells {
        let m = &cell.metrics;
        out.push_str(&format!(
            "{:<20} {:>5} {:>5} {:>5} {:>9.2} {:>9} {:>7.3} {:>7.3} {:>7.3}\n",
            cell.detector,
            m.true_positives,
            m.false_positives,
            m.false_negatives,
            cell.fp_per_10k,
            m.mean_delay
                .map_or_else(|| "-".to_string(), |d| format!("{d:.1}")),
            m.precision,
            m.recall,
            m.f1,
        ));
    }
    out
}

fn main() {
    let args = Args::from_env();
    let full = args.has_flag("full");

    let seeds = args.get_parsed("seeds", if full { 10 } else { 5 });
    let stream_len = args.get_parsed("stream-len", if full { 50_000 } else { 20_000 });
    let optwin_w_max = args.get_parsed("optwin-w-max", if full { 5_000 } else { 2_000 });

    let mut config = DriftbenchConfig::full(seeds, stream_len, optwin_w_max);
    config.base_seed = args.get_parsed("seed", config.base_seed);
    config.zipf_exponent = args.get_parsed("zipf", config.zipf_exponent);
    config.burst = args.get_parsed("burst", config.burst);
    config.shards = args.get("shards").and_then(|v| v.parse().ok());

    if let Some(name) = args.get("scenario") {
        if name != "all" {
            let scenario: ScenarioKind = name.parse().unwrap_or_else(|e| {
                eprintln!("unknown --scenario `{name}`: {e}");
                std::process::exit(2);
            });
            config.scenarios = vec![scenario];
        }
    }
    if let Some(wanted) = args.get("detector") {
        let by_label: Vec<(String, DetectorSpec)> = config
            .detectors
            .iter()
            .filter(|(label, _)| label == wanted)
            .cloned()
            .collect();
        config.detectors = if by_label.is_empty() {
            // Not a line-up label: accept any raw spec string.
            let spec: DetectorSpec = wanted.parse().unwrap_or_else(|e| {
                eprintln!("invalid --detector `{wanted}`: {e}");
                eprintln!("{}", DetectorSpec::grammar_help());
                std::process::exit(2);
            });
            vec![(spec.id().to_string(), spec)]
        } else {
            by_label
        };
    }

    println!(
        "driftbench — {} scenario(s) × {} detector(s) × {} seed(s), stream length {}, \
         Zipf exponent {}, base seed {}",
        config.scenarios.len(),
        config.detectors.len(),
        config.seeds,
        config.stream_len,
        config.zipf_exponent,
        config.base_seed,
    );
    println!();

    let report = run_driftbench(&config);
    println!(
        "replayed {} records in {} bursts across {} engine streams\n",
        report.replay_records,
        report.replay_bursts,
        report.cells.len() * config.seeds,
    );

    for scenario in &config.scenarios {
        let rows: Vec<&DriftbenchCell> = report
            .cells
            .iter()
            .filter(|c| c.scenario == scenario.id())
            .collect();
        if rows.is_empty() {
            continue;
        }
        let n_drifts = scenario.n_drifts(config.stream_len);
        println!(
            "{}",
            render_cells(
                &format!(
                    "── {} ({}, {} true drift(s) per stream) ──",
                    scenario.label(),
                    scenario.id(),
                    n_drifts
                ),
                &rows,
            )
        );
    }
    let rollup: Vec<&DriftbenchCell> = report.by_detector.iter().collect();
    println!(
        "{}",
        render_cells("── all scenarios (per-detector roll-up) ──", &rollup)
    );

    if let Some(path) = args.get("json") {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("failed to write {path}: {e}");
                    std::process::exit(1);
                }
                println!("wrote JSON report to {path}");
            }
            Err(e) => {
                eprintln!("failed to serialise report: {e}");
                std::process::exit(1);
            }
        }
    }
}
