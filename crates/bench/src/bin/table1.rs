//! Reproduces **Table 1** of the OPTWIN paper: drift-identification
//! statistics (delay, FP, precision, recall, F1) for every detector over the
//! seven synthetic experiment configurations.
//!
//! The grid runs on the service-style engine: every `detector × repetition`
//! run is one engine stream, record chunks are pipelined through
//! `EngineHandle::submit` onto the shard workers (no per-chunk barrier), and
//! the detections are read back from a `MemorySink` after one final flush.
//!
//! ```text
//! cargo run --release -p optwin-bench --bin table1                 # quick run
//! cargo run --release -p optwin-bench --bin table1 -- --full       # paper scale (30 reps, 100k streams)
//! cargo run --release -p optwin-bench --bin table1 -- --experiment sudden-binary
//! cargo run --release -p optwin-bench --bin table1 -- --detector adwin:delta=0.01
//! cargo run --release -p optwin-bench --bin table1 -- --fleet configs/fleet_example.json
//! cargo run --release -p optwin-bench --bin table1 -- --rebalance
//! cargo run --release -p optwin-bench --bin table1 -- --json results/table1.json
//! ```
//!
//! `--detector <spec>` replaces the paper line-up with a single detector
//! described by a [`DetectorSpec`] string (`<id>` or
//! `<id>:<key>=<value>,...`); `--fleet <file>` replaces it with a whole
//! configured fleet (a JSON map of `stream id → spec string`), one row per
//! fleet entry. Binary-only detectors are skipped on the non-binary
//! experiments, as in the paper. `--rebalance` inserts a load-aware shard
//! rebalance at every repetition boundary — results are bit-identical with
//! and without it; the flag exists to exercise (and time) the migration
//! path on real workloads.

use optwin_baselines::DetectorSpec;
use optwin_bench::{Args, RunScale};
use optwin_engine::FleetConfig;
use optwin_eval::experiment::{
    run_table1_experiment_sharded, run_table1_fleet, run_table1_specs, Table1Experiment,
};
use optwin_eval::report::{render_table1, to_json};
use optwin_eval::DetectorFactory;

fn experiment_by_name(name: &str) -> Option<Table1Experiment> {
    match name {
        "gradual-binary" => Some(Table1Experiment::GradualBinary),
        "gradual-nonbinary" => Some(Table1Experiment::GradualNonBinary),
        "sudden-binary" => Some(Table1Experiment::SuddenBinary),
        "sudden-nonbinary" => Some(Table1Experiment::SuddenNonBinary),
        "stagger" => Some(Table1Experiment::Stagger),
        "random-rbf" => Some(Table1Experiment::RandomRbf),
        "agrawal" => Some(Table1Experiment::Agrawal),
        _ => None,
    }
}

fn main() {
    let args = Args::from_env();
    let scale = RunScale::from_args(&args);
    let rebalance = args.has_flag("rebalance");

    let detector: Option<DetectorSpec> = args.get("detector").map(|text| {
        text.parse().unwrap_or_else(|e| {
            eprintln!("invalid --detector `{text}`: {e}");
            eprintln!("{}", DetectorSpec::grammar_help());
            std::process::exit(2);
        })
    });

    // Lenient load: fleet files come from external config producers, so
    // unknown spec keys surface as printed warnings instead of a hard exit.
    let fleet: Option<FleetConfig> = args.get("fleet").map(|path| {
        FleetConfig::from_path_lenient(path).unwrap_or_else(|e| {
            eprintln!("cannot load --fleet `{path}`: {e}");
            eprintln!("{}", DetectorSpec::grammar_help());
            std::process::exit(2);
        })
    });
    if detector.is_some() && fleet.is_some() {
        eprintln!("--detector and --fleet are mutually exclusive");
        std::process::exit(2);
    }

    let experiments: Vec<Table1Experiment> = match args.get("experiment") {
        Some("all") | None => Table1Experiment::all().to_vec(),
        Some(name) => match experiment_by_name(name) {
            Some(e) => vec![e],
            None => {
                eprintln!(
                    "unknown experiment `{name}`; expected one of: gradual-binary, \
                     gradual-nonbinary, sudden-binary, sudden-nonbinary, stagger, \
                     random-rbf, agrawal, all"
                );
                std::process::exit(2);
            }
        },
    };

    println!(
        "Table 1 reproduction — {} repetition(s) per experiment, seed {}, \
         OPTWIN w_max {}, stream length {}, pipelined engine shards {}{}",
        scale.repetitions,
        scale.seed,
        scale.optwin_w_max,
        scale
            .stream_len
            .map_or_else(|| "paper default".to_string(), |l| l.to_string()),
        scale
            .shards
            .map_or_else(|| "auto".to_string(), |s| s.to_string()),
        if rebalance {
            ", rebalancing at repetition boundaries"
        } else {
            ""
        },
    );
    println!();

    if let Some(spec) = &detector {
        println!("detector override: {spec}");
        println!();
    }
    if let Some(fleet) = &fleet {
        println!("fleet override: {} configured streams", fleet.streams.len());
        for warning in &fleet.warnings {
            println!("  warning: {warning}");
        }
        println!();
    }

    let factory = DetectorFactory::with_optwin_window(scale.optwin_w_max);
    let mut all_rows = Vec::new();
    for experiment in experiments {
        let rows = match (&detector, &fleet) {
            (Some(spec), _) => {
                if spec.binary_only() && !experiment.binary_signal() {
                    println!(
                        "skipping {} — `{}` only accepts binary error indicators\n",
                        experiment.label(),
                        spec.id()
                    );
                    continue;
                }
                run_table1_specs(
                    experiment,
                    std::slice::from_ref(spec),
                    scale.repetitions,
                    scale.stream_len,
                    scale.seed,
                    scale.shards,
                    rebalance,
                )
            }
            (None, Some(fleet)) => {
                let rows = run_table1_fleet(
                    experiment,
                    &fleet.streams,
                    scale.repetitions,
                    scale.stream_len,
                    scale.seed,
                    scale.shards,
                    rebalance,
                );
                if rows.is_empty() {
                    println!(
                        "skipping {} — every fleet entry is binary-only\n",
                        experiment.label()
                    );
                    continue;
                }
                rows
            }
            (None, None) => run_table1_experiment_sharded(
                experiment,
                &factory,
                scale.repetitions,
                scale.stream_len,
                scale.seed,
                scale.shards,
                rebalance,
            ),
        };
        println!("{}", render_table1(&rows));
        all_rows.extend(rows);
    }

    if let Some(path) = args.get("json") {
        match to_json(&all_rows) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("failed to write {path}: {e}");
                } else {
                    println!("wrote JSON results to {path}");
                }
            }
            Err(e) => eprintln!("failed to serialise results: {e}"),
        }
    }
}
