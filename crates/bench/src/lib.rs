//! # optwin-bench — benchmark and reproduction harness
//!
//! This crate hosts:
//!
//! * **Reproduction binaries**, one per table/figure of the paper:
//!   * `table1` — drift-identification statistics on the seven synthetic
//!     configurations (Table 1),
//!   * `table2` — Naive-Bayes accuracy per detector per dataset (Table 2),
//!   * `figures` — the per-run detection/FP/delay series behind Figures 2–4
//!     and the optimal-cut ν(|W|) curves (§3.3 discussion),
//!   * `fig5_nn` — the neural-network pipeline comparison (Figure 5),
//!   * `significance` — the one-tailed Wilcoxon signed-rank comparison of F1
//!     scores (§4.1).
//! * **Criterion benches** for the runtime claims of §3.4 (per-element
//!   detector cost, optimal-cut table construction, generator throughput,
//!   end-to-end experiment cost).
//!
//! All binaries accept `--repetitions`, `--stream-len`, and `--seed` flags so
//! that quick smoke runs and full paper-scale runs (`--full`) use the same
//! code path.

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::collections::HashMap;

/// Minimal command-line flag parser shared by the reproduction binaries.
///
/// Flags are of the form `--name value` or boolean `--name`; anything else is
/// ignored. This avoids a CLI dependency while keeping the binaries
/// scriptable.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses flags from an iterator of arguments (typically
    /// `std::env::args().skip(1)`).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let is_value = iter
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false);
                if is_value {
                    values.insert(name.to_string(), iter.next().unwrap_or_default());
                } else {
                    flags.push(name.to_string());
                }
            }
        }
        Self { values, flags }
    }

    /// Parses the process's own command line.
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Returns the string value of `--name`, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Returns `--name` parsed as the requested type, or the default.
    #[must_use]
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// `true` when the boolean flag `--name` was given.
    #[must_use]
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

/// Common run-scale settings derived from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Number of repetitions per (experiment, detector) pair.
    pub repetitions: usize,
    /// Stream length override (`None` = the experiment's paper-scale value).
    pub stream_len: Option<usize>,
    /// Maximum OPTWIN window size.
    pub optwin_w_max: usize,
    /// Base random seed.
    pub seed: u64,
    /// Engine shard count for the parallel runners (`None` = one shard per
    /// available CPU core).
    pub shards: Option<usize>,
}

impl RunScale {
    /// Derives the run scale from parsed arguments. Without `--full` the
    /// defaults are sized for a quick (< 1 min) laptop run; with `--full` the
    /// paper-scale settings (30 repetitions, 100 000-element streams,
    /// `w_max = 25 000`) are used.
    #[must_use]
    pub fn from_args(args: &Args) -> Self {
        let full = args.has_flag("full");
        let repetitions_default = if full { 30 } else { 5 };
        let optwin_w_max_default = if full { 25_000 } else { 4_000 };
        let stream_len = args.get("stream-len").and_then(|v| v.parse().ok()).or({
            if full {
                None
            } else {
                Some(20_000)
            }
        });
        Self {
            repetitions: args.get_parsed("repetitions", repetitions_default),
            stream_len,
            optwin_w_max: args.get_parsed("optwin-w-max", optwin_w_max_default),
            seed: args.get_parsed("seed", 20_240_614),
            shards: args.get("shards").and_then(|v| v.parse().ok()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args_of(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn parses_values_and_flags() {
        let args = args_of(&["--repetitions", "10", "--full", "--seed", "7"]);
        assert_eq!(args.get("repetitions"), Some("10"));
        assert_eq!(args.get_parsed("repetitions", 0usize), 10);
        assert_eq!(args.get_parsed("seed", 0u64), 7);
        assert!(args.has_flag("full"));
        assert!(!args.has_flag("quick"));
        assert_eq!(args.get("missing"), None);
        assert_eq!(args.get_parsed("missing", 42u32), 42);
    }

    #[test]
    fn run_scale_quick_defaults() {
        let scale = RunScale::from_args(&args_of(&[]));
        assert_eq!(scale.repetitions, 5);
        assert_eq!(scale.stream_len, Some(20_000));
        assert_eq!(scale.optwin_w_max, 4_000);
        assert_eq!(scale.shards, None);
    }

    #[test]
    fn run_scale_full_defaults() {
        let scale = RunScale::from_args(&args_of(&["--full"]));
        assert_eq!(scale.repetitions, 30);
        assert_eq!(scale.stream_len, None);
        assert_eq!(scale.optwin_w_max, 25_000);
    }

    #[test]
    fn run_scale_overrides() {
        let scale = RunScale::from_args(&args_of(&[
            "--full",
            "--repetitions",
            "3",
            "--stream-len",
            "1000",
            "--optwin-w-max",
            "500",
            "--shards",
            "8",
        ]));
        assert_eq!(scale.repetitions, 3);
        assert_eq!(scale.stream_len, Some(1_000));
        assert_eq!(scale.optwin_w_max, 500);
        assert_eq!(scale.shards, Some(8));
    }
}
