//! Ingestion throughput of the four engine API tiers:
//!
//! 1. **scalar** — one `add_element` call per element (the seed's only
//!    interface),
//! 2. **batched** — `add_batch` over the whole stream (amortized cut-table
//!    prefetch, no per-element dispatch),
//! 3. **sharded** — a [`DriftEngine`] ingesting interleaved multi-stream
//!    record batches (batched per stream **and** fanned out across shards,
//!    with a flush barrier per batch),
//! 4. **pipelined** — the service API: [`EngineHandle::submit`] enqueues
//!    every batch onto the bounded per-shard queues without waiting, and a
//!    single shutdown barrier drains the engine at the end. The submitting
//!    thread never blocks on detection work, so this tier measures the
//!    steady-state serving shape. Detectors are configured through the
//!    declarative [`DetectorSpec`] path ([`EngineBuilder::default_spec`]),
//!    which is the canonical construction route — so this tier also keeps
//!    the spec layer's overhead (none beyond construction) honest.
//!
//! Elements/second is the headline number; on a multi-core host the sharded
//! and pipelined tiers additionally scale with the shard count.
//!
//! A fifth tier measures the **skewed-load** serving shape: Zipf-distributed
//! traffic over 64 streams (a handful of hot streams carry most of the
//! records — the pattern static `id % shards` placement handles worst),
//! with and without load-aware rebalancing at flush barriers. On a
//! multi-core host the rebalanced variant un-skews the hot shard; results
//! are bit-identical either way (the migration preserves per-stream order).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use optwin_baselines::DetectorSpec;
use optwin_core::{DetectorExt, DriftDetector, Optwin, OptwinConfig};
use optwin_engine::{
    DriftEngine, EngineBuilder, EngineConfig, EngineHandle, EventSink, MemorySink, RebalancePolicy,
};
use optwin_stream::{DriftKind, DriftSchedule, ErrorStream, ErrorStreamConfig};

const STREAM_LEN: usize = 20_000;
const N_STREAMS: u64 = 32;

fn stationary_stream(len: usize, seed: u64) -> Vec<f64> {
    let schedule = DriftSchedule::stationary(len);
    ErrorStream::new(ErrorStreamConfig::binary(DriftKind::Sudden, schedule), seed).collect_all()
}

fn optwin(w_max: usize) -> Optwin {
    Optwin::with_shared_table(
        OptwinConfig::builder()
            .robustness(0.5)
            .max_window(w_max)
            .build()
            .expect("valid config"),
    )
    .expect("valid config")
}

fn bench_scalar_vs_batched(c: &mut Criterion) {
    let stream = stationary_stream(STREAM_LEN, 99);
    let mut group = c.benchmark_group("optwin_ingest_20k");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(10);

    group.bench_function("scalar_add_element", |b| {
        b.iter(|| {
            let mut d = optwin(4_000);
            for &x in &stream {
                black_box(d.add_element(x));
            }
            d.drifts_detected()
        });
    });
    group.bench_function("batched_add_batch", |b| {
        b.iter(|| {
            let mut d = optwin(4_000);
            black_box(d.add_batch(&stream)).drifts()
        });
    });
    group.bench_function("batched_scan", |b| {
        b.iter(|| {
            let mut d = optwin(4_000);
            black_box(d.scan(&stream)).len()
        });
    });
    group.finish();
}

/// The interleaved multi-stream record sequence shared by the sharded and
/// pipelined tiers.
fn interleaved_records() -> Vec<(u64, f64)> {
    let per_stream: Vec<Vec<f64>> = (0..N_STREAMS)
        .map(|s| stationary_stream(STREAM_LEN / 4, 100 + s))
        .collect();
    let mut records: Vec<(u64, f64)> = Vec::new();
    for chunk in 0..(STREAM_LEN / 4) / 500 {
        for (s, values) in per_stream.iter().enumerate() {
            for &v in &values[chunk * 500..(chunk + 1) * 500] {
                records.push((s as u64, v));
            }
        }
    }
    records
}

fn bench_sharded_engine(c: &mut Criterion) {
    let records = interleaved_records();
    let mut group = c.benchmark_group("engine_ingest_32_streams");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut engine =
                        DriftEngine::with_factory(EngineConfig::with_shards(shards), |_| {
                            Box::new(optwin(2_000)) as Box<dyn DriftDetector + Send>
                        });
                    let mut events = 0usize;
                    for batch in records.chunks(N_STREAMS as usize * 500) {
                        events += engine.ingest_batch(batch).expect("factory-backed").len();
                    }
                    black_box(events)
                });
            },
        );
    }
    group.finish();
}

fn bench_pipelined_engine(c: &mut Criterion) {
    let records = interleaved_records();
    // The same OPTWIN configuration as the closure tiers, expressed
    // declaratively: every stream auto-registers from this spec on first
    // sight (and the engine's snapshots become self-describing for free).
    let spec: DetectorSpec = "optwin:rho=0.5,w_max=2000"
        .parse()
        .expect("valid spec string");

    let mut group = c.benchmark_group("engine_pipelined_32_streams");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let sink = Arc::new(MemorySink::new());
                    let handle: EngineHandle = EngineBuilder::new()
                        .shards(shards)
                        .queue_capacity(64 * 1_024)
                        .default_spec(spec.clone())
                        .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
                        .build()
                        .expect("valid engine");
                    // Fire-and-forget submission; the only barrier is the
                    // final shutdown drain.
                    for batch in records.chunks(N_STREAMS as usize * 500) {
                        handle.submit(batch).expect("engine running");
                    }
                    handle.shutdown().expect("clean drain");
                    black_box(sink.drain().len())
                });
            },
        );
    }
    group.finish();
}

/// SplitMix64 step, for deterministic Zipf sampling without a rand dep.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `total` records whose stream ids follow a Zipf(`exponent`) law over
/// `n_streams` ranks (stream 0 hottest), values a small stationary noise.
fn zipf_records(n_streams: u64, total: usize, exponent: f64, seed: u64) -> Vec<(u64, f64)> {
    let weights: Vec<f64> = (0..n_streams)
        .map(|rank| 1.0 / ((rank + 1) as f64).powf(exponent))
        .collect();
    let sum: f64 = weights.iter().sum();
    let mut acc = 0.0;
    let cdf: Vec<f64> = weights
        .iter()
        .map(|w| {
            acc += w / sum;
            acc
        })
        .collect();
    let mut state = seed;
    (0..total)
        .map(|_| {
            let u = (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            let stream = (cdf.partition_point(|&c| c < u) as u64).min(n_streams - 1);
            let value = 0.05 + 0.02 * ((splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64);
            (stream, value)
        })
        .collect()
}

fn bench_skewed_zipf_engine(c: &mut Criterion) {
    const ZIPF_STREAMS: u64 = 64;
    const ZIPF_RECORDS: usize = 160_000;
    // s = 1.1: the hottest stream alone carries ~20 % of the traffic, the
    // top 8 streams about half — with modulo placement, shard 0 gets the
    // hottest stream *and* its share of the cold tail.
    let records = zipf_records(ZIPF_STREAMS, ZIPF_RECORDS, 1.1, 42);
    let spec: DetectorSpec = "optwin:rho=0.5,w_max=2000".parse().expect("valid spec");

    let mut group = c.benchmark_group("engine_skewed_zipf_64_streams");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.sample_size(10);
    for &(label, rebalance) in &[("static", false), ("rebalanced", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &rebalance, {
            let records = &records;
            let spec = &spec;
            move |b, &rebalance| {
                b.iter(|| {
                    let sink = Arc::new(MemorySink::new());
                    let handle: EngineHandle = EngineBuilder::new()
                        .shards(4)
                        .queue_capacity(64 * 1_024)
                        .default_spec(spec.clone())
                        .sink(Arc::clone(&sink) as Arc<dyn EventSink>)
                        .build()
                        .expect("valid engine");
                    for (i, batch) in records.chunks(16_000).enumerate() {
                        handle.submit(batch).expect("engine running");
                        // Rebalance at a flush barrier every few batches,
                        // exactly as a serving deployment would.
                        if rebalance && i % 4 == 3 {
                            handle.flush().expect("no ingestion errors");
                            handle
                                .rebalance(RebalancePolicy::Records)
                                .expect("engine running");
                        }
                    }
                    handle.shutdown().expect("clean drain");
                    black_box(sink.drain().len())
                });
            }
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scalar_vs_batched,
    bench_sharded_engine,
    bench_pipelined_engine,
    bench_skewed_zipf_engine
);
criterion_main!(benches);
