//! Durability I/O: delta-checkpoint sizing, WAL framing, and the ingest
//! overhead of continuous checkpointing (wire v5).
//!
//! Three figures back the README's "Continuous durability" section and the
//! CI size guard:
//!
//! * **Delta size vs dirty fraction.** After a full base checkpoint, a delta
//!   overlay carries only the streams that changed since the last barrier.
//!   The bench times a full incremental durability cycle (touch a fraction
//!   of the fleet → flush → checkpoint) at 1 %, 10 % and 100 % dirty, and
//!   *asserts* the acceptance bar: the 1 %-dirty delta must be at most
//!   **5 %** of the base snapshot's bytes, so a sizing regression fails the
//!   run rather than drifting on a dashboard.
//! * **WAL frame codec throughput.** The `optwin_core::snapshot` framing
//!   primitives (`wal_frame` / `wal_next_frame`) over a realistic 512-record
//!   batch payload — the fixed per-batch cost every ingested batch pays
//!   while a checkpoint directory is attached.
//! * **Checkpointed-ingest overhead.** End-to-end submit+flush throughput
//!   with the write-ahead log active versus an identically-specced fleet
//!   with no durability at all, on the same workload.
//!
//! Scale down via `OPTWIN_CHECKPOINT_BENCH_STREAMS` (CI smoke uses 400).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use optwin_baselines::DetectorSpec;
use optwin_core::snapshot::{wal_frame, wal_next_frame};
use optwin_engine::{CheckpointPolicy, EngineBuilder, EngineHandle};

fn n_streams() -> u64 {
    std::env::var("OPTWIN_CHECKPOINT_BENCH_STREAMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 100)
        .unwrap_or(2_000)
}

/// Records each stream ingests while warming up, before the base checkpoint.
const WARMUP_ELEMENTS: usize = 32;

fn spec_of(stream: u64) -> DetectorSpec {
    let kinds = DetectorSpec::all_defaults();
    kinds[(stream % kinds.len() as u64) as usize].clone()
}

/// SplitMix64 jitter in [0, 1).
fn unit(i: u64) -> f64 {
    let mut x = i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Binary error indicator — what the paper's detectors monitor in practice.
fn element(stream: u64, i: usize) -> f64 {
    f64::from(unit(stream.wrapping_mul(0x00C0_FFEE) ^ i as u64) < 0.07)
}

/// A scratch directory under the system temp dir, cleared on entry.
fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("optwin-bench-ckpt-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds an all-spec fleet; `policy` attaches a checkpoint directory (the
/// build itself then writes the generation-0 full base). All policies used
/// here disable the flush cadence so the bench controls every barrier.
fn build_fleet(streams: u64, dir: Option<(&std::path::Path, CheckpointPolicy)>) -> EngineHandle {
    let mut builder = EngineBuilder::new().shards(4).queue_capacity(256 * 1_024);
    if let Some((dir, policy)) = dir {
        builder = builder.checkpoint(dir, policy);
    }
    for stream in 0..streams {
        builder = builder.stream_spec(stream, spec_of(stream));
    }
    builder.build().expect("valid engine")
}

/// Feeds every stream in `streams` a window of records and flushes once.
fn feed(handle: &EngineHandle, streams: impl Iterator<Item = u64> + Clone, from: usize, n: usize) {
    let mut records = Vec::new();
    for i in from..from + n {
        for stream in streams.clone() {
            records.push((stream, element(stream, i)));
        }
    }
    handle.submit(&records).expect("engine running");
    handle.flush().expect("no ingestion errors");
}

fn bench_checkpoint_io(c: &mut Criterion) {
    let streams = n_streams();
    let one_percent = (streams / 100).max(1);

    // The size guard: against a *warm* compacted base, a 1%-dirty delta
    // overlay must stay at most 5% of the base snapshot. `compact_ratio(0)`
    // forces the compaction: the build writes the empty generation-0 base,
    // the first post-warmup barrier emits an all-streams delta, the next one
    // compacts the chain into a warm full base, and only then does the
    // 1%-dirty barrier produce the overlay under measurement. This is the
    // same bar the CI workflow enforces through the engine_checkpoint suite.
    let dir = scratch_dir("sizing");
    let handle = build_fleet(
        streams,
        Some((&dir, CheckpointPolicy::every_flushes(0).compact_ratio(0.0))),
    );
    feed(&handle, 0..streams, 0, WARMUP_ELEMENTS);
    let all_dirty = handle.checkpoint().expect("all-streams delta");
    assert!(!all_dirty.full, "gen 1 rides on the build's empty base");
    let warm_base = handle.checkpoint().expect("compacting checkpoint");
    assert!(warm_base.full, "ratio 0 must compact the chain immediately");
    feed(&handle, 0..one_percent, WARMUP_ELEMENTS, 1);
    let delta = handle.checkpoint().expect("delta checkpoint");
    assert!(!delta.full, "a 1%-dirty barrier must emit a delta overlay");
    assert_eq!(delta.streams, one_percent as usize);
    assert!(
        delta.bytes * 20 <= delta.base_bytes,
        "1%-dirty delta is {} B against a {} B base (> 5%)",
        delta.bytes,
        delta.base_bytes
    );
    println!(
        "delta sizing: warm base = {} B, 1%-dirty delta ({} streams) = {} B \
         ({:.2}% of base)",
        delta.base_bytes,
        delta.streams,
        delta.bytes,
        delta.bytes as f64 / delta.base_bytes as f64 * 100.0
    );
    handle.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);

    // Full incremental durability cycles at increasing dirty fractions:
    // touch the fraction, flush (WAL append + barrier), delta checkpoint.
    // `compact_ratio(∞)` keeps every cycle an overlay append.
    let dir = scratch_dir("cycles");
    let handle = build_fleet(
        streams,
        Some((
            &dir,
            CheckpointPolicy::every_flushes(0).compact_ratio(f64::INFINITY),
        )),
    );
    feed(&handle, 0..streams, 0, WARMUP_ELEMENTS);
    handle.checkpoint().expect("clear the warmup dirty set");
    let mut cycles = c.benchmark_group(format!("delta_checkpoint_{streams}_streams"));
    cycles.sample_size(10);
    let mut epoch = WARMUP_ELEMENTS + 1;
    for (label, dirty) in [
        ("dirty_1pct", one_percent),
        ("dirty_10pct", (streams / 10).max(1)),
        ("dirty_100pct", streams),
    ] {
        cycles.throughput(Throughput::Elements(dirty));
        cycles.bench_function(label, |b| {
            b.iter(|| {
                feed(&handle, 0..dirty, epoch, 1);
                epoch += 1;
                let report = handle.checkpoint().expect("delta checkpoint");
                assert_eq!(report.streams, dirty as usize);
                black_box(report.bytes)
            });
        });
    }
    cycles.finish();
    handle.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);

    // WAL frame codec: a realistic 512-record batch payload (count + 16 B
    // per record), framed and re-parsed with the core primitives.
    let mut payload = Vec::with_capacity(4 + 512 * 16);
    payload.extend_from_slice(&512u32.to_le_bytes());
    for i in 0u64..512 {
        payload.extend_from_slice(&i.to_le_bytes());
        payload.extend_from_slice(&element(i, 0).to_bits().to_le_bytes());
    }
    let mut codec = c.benchmark_group("wal_frame_codec");
    codec.throughput(Throughput::Bytes(payload.len() as u64));
    codec.bench_function("encode_512_records", |b| {
        b.iter(|| black_box(wal_frame(0, black_box(&payload))).len());
    });
    let frame = wal_frame(0, &payload);
    codec.bench_function("decode_512_records", |b| {
        b.iter(|| {
            let (kind, body, consumed) = wal_next_frame(black_box(&frame))
                .expect("frame is well-formed")
                .expect("frame is present");
            assert_eq!((kind, consumed), (0, frame.len()));
            black_box(body.len())
        });
    });
    codec.finish();

    // Ingest overhead: the same workload with the WAL active vs no
    // durability. The build's generation-0 base already switched the
    // checkpointed fleet's workers into logging mode, so every benched
    // batch pays the append + flush on its way into the shard.
    let batch_elements = 8usize;
    let mut ingest = c.benchmark_group(format!("checkpointed_ingest_{streams}_streams"));
    ingest.sample_size(10);
    ingest.throughput(Throughput::Elements(streams * batch_elements as u64));
    for (label, ckpt_dir) in [
        ("wal_active", Some(scratch_dir("ingest"))),
        ("no_durability", None),
    ] {
        let handle = build_fleet(
            streams,
            ckpt_dir.as_deref().map(|dir| {
                (
                    dir,
                    CheckpointPolicy::every_flushes(0).compact_ratio(f64::INFINITY),
                )
            }),
        );
        feed(&handle, 0..streams, 0, 1);
        let mut epoch = 1;
        ingest.bench_function(label, |b| {
            b.iter(|| {
                feed(&handle, 0..streams, epoch, batch_elements);
                epoch += batch_elements;
                black_box(epoch)
            });
        });
        handle.shutdown().expect("clean shutdown");
        if let Some(dir) = ckpt_dir {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    ingest.finish();
}

criterion_group!(benches, bench_checkpoint_io);
criterion_main!(benches);
