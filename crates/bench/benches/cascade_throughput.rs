//! Cheap-first cascade: near-DDM ingest throughput with near-OPTWIN
//! detection quality.
//!
//! Three claims, one artifact (`BENCH_cascade.json`):
//!
//! 1. **Stable path** — on a stationary stream the cascade runs only its
//!    cheap guard (the OPTWIN confirmer is dormant: not fed, not allocated),
//!    so ingest must be ≥ 3× plain OPTWIN on a warm host. The checked-in
//!    JSON carries the measured ratio; `main` enforces a conservative 2×
//!    floor as the CI regression guard. The headline pairing guards with
//!    Page–Hinkley, which stays perfectly quiet on the stationary stream;
//!    the DDM-guarded row shows the tax a twitchier guard pays (its
//!    post-reset warning clusters wake the confirmer a handful of times).
//! 2. **Escalated path** — under frequent drifts the cascade repeatedly
//!    wakes, warm-starts and drops the confirmer; this group prices that
//!    worst case next to the single detectors.
//! 3. **Detection delay** — on abrupt and gradual single-drift generators
//!    both cascades' delays sit next to plain OPTWIN's and their plain
//!    guards' in a `detection_delay` table spliced into the JSON (delays
//!    are element counts, not timings, so they bypass the criterion layer).

use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion, Throughput};

use optwin_baselines::DetectorSpec;
use optwin_core::{DriftDetector, DriftStatus};
use optwin_stream::{DriftKind, DriftSchedule, ErrorStream, ErrorStreamConfig};

const CASCADE: &str = "cascade:guard=page_hinkley,confirm=optwin";
const CASCADE_DDM: &str = "cascade:guard=ddm,confirm=optwin";
const PLAIN_OPTWIN: &str = "optwin";
const PLAIN_GUARD: &str = "page_hinkley";
const PLAIN_DDM: &str = "ddm";

/// Every config the groups and the delay table price against each other:
/// the two cascades, the plain confirmer, and the two plain guards.
const ROSTER: [(&str, &str); 5] = [
    ("cascade ph->optwin", CASCADE),
    ("cascade ddm->optwin", CASCADE_DDM),
    ("plain OPTWIN (paper defaults)", PLAIN_OPTWIN),
    ("plain Page-Hinkley (the quiet guard)", PLAIN_GUARD),
    ("plain DDM (the twitchy guard)", PLAIN_DDM),
];

fn detector(spec: &str) -> Box<dyn DriftDetector + Send> {
    spec.parse::<DetectorSpec>()
        .expect("valid spec")
        .build()
        .expect("valid config")
}

/// A stationary binary error stream — the stable path, and the worst case
/// for OPTWIN because the window grows to `w_max`.
fn stationary_stream(len: usize) -> Vec<f64> {
    let schedule = DriftSchedule::stationary(len);
    ErrorStream::new(ErrorStreamConfig::binary(DriftKind::Sudden, schedule), 99).collect_all()
}

/// A binary error stream with a sudden drift every `interval` elements —
/// the escalated path: the cascade keeps waking its confirmer.
fn drifting_stream(len: usize, interval: usize) -> Vec<f64> {
    let schedule = DriftSchedule::every(interval, len, 1);
    ErrorStream::new(ErrorStreamConfig::binary(DriftKind::Sudden, schedule), 7).collect_all()
}

/// A single-drift stream for the delay table: `kind` abrupt (width 1) or
/// gradual (linear ramp over `width` elements), drift at `at`.
fn single_drift_stream(kind: DriftKind, len: usize, at: usize, width: usize) -> Vec<f64> {
    let schedule = DriftSchedule::new(vec![at], width, len);
    ErrorStream::new(ErrorStreamConfig::binary(kind, schedule), 1_234).collect_all()
}

fn bench_cascade(c: &mut Criterion) {
    let stable = stationary_stream(20_000);
    let mut group = c.benchmark_group("cascade_stable_path_20k");
    group.throughput(Throughput::Elements(stable.len() as u64));
    group.sample_size(10);
    for (label, spec) in ROSTER {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut d = detector(spec);
                black_box(d.add_batch(&stable)).drifts()
            });
        });
    }
    group.finish();

    let drifting = drifting_stream(20_000, 2_000);
    let mut group = c.benchmark_group("cascade_escalated_path_20k_drift_every_2k");
    group.throughput(Throughput::Elements(drifting.len() as u64));
    group.sample_size(10);
    for (label, spec) in ROSTER {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut d = detector(spec);
                black_box(d.add_batch(&drifting)).drifts()
            });
        });
    }
    group.finish();
}

/// Directly-timed stable-path ratio (interleaved best-of-7, whole-stream
/// `add_batch`): this is the number the regression guard and the JSON
/// artifact carry, independent of the criterion sampling above. The two
/// sides are timed alternately so slow host phases (thermal throttling,
/// background load) hit both rather than biasing the ratio.
fn stable_path_speedup() -> f64 {
    let stable = stationary_stream(20_000);
    let run = |spec: &str| {
        let mut d = detector(spec);
        let start = Instant::now();
        black_box(d.add_batch(&stable));
        start.elapsed().as_secs_f64()
    };
    // Warm the shared OPTWIN cut table so neither side pays the one-off
    // build inside its timed window.
    drop(detector(PLAIN_OPTWIN));
    let mut cascade = f64::INFINITY;
    let mut optwin = f64::INFINITY;
    for _ in 0..7 {
        cascade = cascade.min(run(CASCADE));
        optwin = optwin.min(run(PLAIN_OPTWIN));
    }
    optwin / cascade
}

struct DelayRow {
    generator: &'static str,
    detector: &'static str,
    /// Elements from drift onset to the first drift signal at or past it;
    /// `None` when the detector never fired there.
    delay: Option<usize>,
    false_alarms: usize,
}

/// First-detection delay on single-drift generators, element-wise so the
/// reported element index is exact.
fn detection_delays() -> Vec<DelayRow> {
    const LEN: usize = 12_000;
    const AT: usize = 6_000;
    let mut rows = Vec::new();
    for (generator, kind, width) in [
        ("abrupt", DriftKind::Sudden, 1usize),
        ("gradual_w500", DriftKind::Gradual, 500),
    ] {
        let stream = single_drift_stream(kind, LEN, AT, width);
        for (name, spec) in ROSTER {
            let mut d = detector(spec);
            let mut delay = None;
            let mut false_alarms = 0;
            for (i, &x) in stream.iter().enumerate() {
                if d.add_element(x) == DriftStatus::Drift {
                    if i < AT {
                        false_alarms += 1;
                    } else if delay.is_none() {
                        delay = Some(i - AT);
                    }
                }
            }
            rows.push(DelayRow {
                generator,
                detector: name,
                delay,
                false_alarms,
            });
        }
    }
    rows
}

/// Splices the non-timing results into `BENCH_cascade.json` next to the
/// criterion records: the stable-path ratio and the delay table.
fn splice_extras(speedup: f64, rows: &[DelayRow]) {
    let dir = std::env::var("OPTWIN_BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_cascade.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        eprintln!("warning: {} missing, extras not spliced", path.display());
        return;
    };
    let Some(base) = text.rfind("  ]\n}") else {
        eprintln!("warning: {} has unexpected shape", path.display());
        return;
    };
    let mut out = String::from(&text[..base + 3]);
    out.push_str(",\n  \"stable_path_speedup_vs_optwin\": ");
    out.push_str(&format!("{speedup:.2}"));
    out.push_str(",\n  \"detection_delay\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let delay = match row.delay {
            Some(d) => d.to_string(),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"generator\": \"{}\", \"detector\": \"{}\", \"delay_elements\": {delay}, \"false_alarms\": {}}}{}\n",
            row.generator,
            row.detector,
            row.false_alarms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

criterion_group!(benches, bench_cascade);

fn main() {
    benches();
    let speedup = stable_path_speedup();
    let rows = detection_delays();
    println!("stable-path speedup vs plain OPTWIN: {speedup:.2}x");
    for row in &rows {
        match row.delay {
            Some(d) => println!(
                "delay {}/{}: {d} elements ({} false alarms)",
                row.generator, row.detector, row.false_alarms
            ),
            None => println!(
                "delay {}/{}: not detected ({} false alarms)",
                row.generator, row.detector, row.false_alarms
            ),
        }
    }
    criterion::write_json_report("cascade");
    splice_extras(speedup, &rows);
    // The CI regression guard: the checked-in artifact shows ≥ 3× on the
    // reference host; 2× is the portable floor under load and virtualization.
    assert!(
        speedup >= 2.0,
        "stable-path cascade must ingest at least 2x faster than plain OPTWIN, got {speedup:.2}x"
    );
}
