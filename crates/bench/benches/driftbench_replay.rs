//! Replay-driver ingestion cost: what the `driftbench` grid pays to push a
//! Zipf-skewed multi-stream fleet through the sharded engine, next to a
//! plain sequential `submit` of the same records.
//!
//! The interleaving itself is pure bookkeeping (weight table + burst
//! slicing), so skewed replay must track the sequential feed closely — the
//! numbers in `BENCH_driftbench.json` price exactly that overhead, plus the
//! scenario-generation cost of the adversarial catalogue.

use criterion::{black_box, criterion_group, Criterion, Throughput};
use std::sync::Arc;

use optwin_engine::{replay, EngineBuilder, EventSink, MemorySink, ReplayConfig};
use optwin_stream::ScenarioKind;

const STREAMS: usize = 64;
const LEN: usize = 2_000;

/// One abrupt-scenario sequence per stream, generated once outside the
/// timed region.
fn fleet_data() -> Vec<Vec<f64>> {
    (0..STREAMS)
        .map(|s| {
            ScenarioKind::AbruptMeanShift
                .generate(LEN, 1_000 + s as u64)
                .values
        })
        .collect()
}

fn engine(sink: &Arc<MemorySink>) -> optwin_engine::EngineHandle {
    let mut builder = EngineBuilder::new()
        .queue_capacity(64 * 1_024)
        .sink(Arc::clone(sink) as Arc<dyn EventSink>);
    for id in 0..STREAMS as u64 {
        builder = builder.stream_spec(id, "ddm".parse().expect("valid spec"));
    }
    builder.build().expect("valid engine")
}

fn bench_replay(c: &mut Criterion) {
    let data = fleet_data();
    let sources: Vec<(u64, &[f64])> = data
        .iter()
        .enumerate()
        .map(|(s, values)| (s as u64, &values[..]))
        .collect();
    let total = (STREAMS * LEN) as u64;

    let mut group = c.benchmark_group("driftbench_replay_64x2k_ddm");
    group.throughput(Throughput::Elements(total));
    group.sample_size(10);

    for (label, exponent) in [("zipf_1.1", 1.1), ("uniform", 0.0)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let sink = Arc::new(MemorySink::new());
                let handle = engine(&sink);
                let config = ReplayConfig {
                    zipf_exponent: exponent,
                    ..ReplayConfig::with_seed(9)
                };
                let report = replay(&handle, &sources, &config).expect("engine running");
                handle.shutdown().expect("clean drain");
                black_box((report.records, sink.drain().len()))
            });
        });
    }

    group.bench_function("sequential_submit", |b| {
        b.iter(|| {
            let sink = Arc::new(MemorySink::new());
            let handle = engine(&sink);
            let mut records = Vec::with_capacity(256);
            for (id, values) in &sources {
                for chunk in values.chunks(256) {
                    records.clear();
                    records.extend(chunk.iter().map(|&v| (*id, v)));
                    handle.submit(&records).expect("engine running");
                }
            }
            handle.shutdown().expect("clean drain");
            black_box(sink.drain().len())
        });
    });
    group.finish();

    // Scenario-generation cost of the full adversarial catalogue — the other
    // fixed cost every driftbench cell pays before the engine sees a record.
    let mut group = c.benchmark_group("driftbench_scenario_generation_20k");
    group.throughput(Throughput::Elements(20_000));
    group.sample_size(10);
    for scenario in ScenarioKind::all() {
        group.bench_function(scenario.id(), |b| {
            b.iter(|| black_box(scenario.generate(20_000, 42)).values.len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replay);

fn main() {
    benches();
    criterion::write_json_report("driftbench");
}
