//! Cost of building OPTWIN's pre-computed cut tables (§3.4: the ν, t_ppf and
//! f_ppf values are computed once per window length, not per element), and an
//! ablation over the robustness parameter ρ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use optwin_core::{CutTable, OptwinConfig};

fn bench_cut_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("cut_table_precompute");
    group.sample_size(10);
    for (rho, w_max) in [(0.5, 1_000usize), (0.5, 4_000), (0.1, 4_000), (1.0, 4_000)] {
        let label = format!("rho={rho}_wmax={w_max}");
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(rho, w_max),
            |b, &(rho, w_max)| {
                let config = OptwinConfig::builder()
                    .robustness(rho)
                    .max_window(w_max)
                    .build()
                    .unwrap();
                b.iter(|| {
                    let table = CutTable::new(&config).unwrap();
                    table.precompute_all().unwrap();
                    table.cached_entries()
                });
            },
        );
    }
    group.finish();

    // Single-entry lookup cost once cached (the per-element cost inside the
    // detector).
    let mut group = c.benchmark_group("cut_table_lookup");
    let config = OptwinConfig::builder()
        .robustness(0.5)
        .max_window(4_000)
        .build()
        .unwrap();
    let table = CutTable::new(&config).unwrap();
    table.precompute_all().unwrap();
    group.bench_function("cached_entry", |b| {
        let mut w = 30usize;
        b.iter(|| {
            w = if w >= 4_000 { 30 } else { w + 1 };
            table.entry(w).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cut_tables);
criterion_main!(benches);
