//! End-to-end cost of one Table 1 experiment cell and of the Figure 5
//! neural-network pipeline at reduced scale — the macro-benchmarks behind the
//! paper's run-time discussion.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use optwin_baselines::DetectorKind;
use optwin_core::{Optwin, OptwinConfig};
use optwin_eval::experiment::{run_detector_on_sequence, Table1Experiment};
use optwin_eval::nn_pipeline::{run_nn_pipeline, NnPipelineConfig};
use optwin_eval::DetectorFactory;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_cell");
    group.sample_size(10);

    // Pre-generate the stream once; the benchmark measures detector +
    // scoring cost, which is what varies between detectors.
    let (errors, schedule) = Table1Experiment::SuddenBinary.build_error_sequence(1, 20_000);
    for kind in [
        DetectorKind::OptwinRho(500),
        DetectorKind::Adwin,
        DetectorKind::Ddm,
    ] {
        group.bench_function(kind.label(), |b| {
            let factory = DetectorFactory::with_optwin_window(4_000);
            b.iter(|| {
                let mut detector = factory.build(kind);
                black_box(run_detector_on_sequence(
                    detector.as_mut(),
                    &errors,
                    &schedule,
                ))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig5_pipeline_small");
    group.sample_size(10);
    let config = NnPipelineConfig {
        total_batches: 1_500,
        pretrain_batches: 200,
        fine_tune_batches: 60,
        n_classes: 6,
        n_inputs: 32,
        batch_size: 16,
        ..NnPipelineConfig::default()
    };
    group.bench_function("OPTWIN rho=0.5", |b| {
        b.iter(|| {
            let mut detector = Optwin::new(
                OptwinConfig::builder()
                    .robustness(0.5)
                    .max_window(1_000)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            black_box(run_nn_pipeline(&config, &mut detector))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
