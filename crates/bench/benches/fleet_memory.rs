//! Fleet memory audit: the hibernation tier at **million-stream** scale.
//!
//! Builds a mostly-cold fleet with a Zipf-style hot set — all 8 detector
//! kinds tiled round-robin, fed in waves so each wave's detectors hibernate
//! (policy `cold_after_flushes = 1`) before the next wave materializes.
//! Peak resident memory therefore stays near `wave_size` live detectors
//! plus the accumulated compressed blobs, which is what makes the
//! million-stream default possible at all: the same fleet held fully live
//! would need ~25 GiB of OPTWIN windows alone.
//!
//! Reported figures:
//!
//! * **Resident bytes per hibernated stream** vs the measured all-live
//!   footprint of an identically-specced reference fleet. The bench
//!   *asserts* the paper-level acceptance bar — hibernated streams must
//!   cost at most **10 %** of their live footprint — so a regression fails
//!   the run, not just a dashboard.
//! * **Rehydration latency**, two ways: per detector kind at the detector
//!   level (`DetectorSpec::build` + `restore_state` from the captured
//!   binary state — the exact work a shard does on wake), and end-to-end
//!   at the engine level (submit one record to a sleeping stream + flush).
//! * **`stats()` latency** on the full fleet, with the fleet's hibernated
//!   blob bytes attached as the throughput figure so
//!   `BENCH_fleet_memory.json` pins the byte count alongside the timings.
//!
//! Scale down via `OPTWIN_FLEET_BENCH_STREAMS` (CI smoke uses 100 000).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use optwin_baselines::DetectorSpec;
use optwin_core::SnapshotEncoding;
use optwin_engine::{EngineBuilder, EngineHandle, HibernationPolicy};

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn n_streams() -> u64 {
    env_or("OPTWIN_FLEET_BENCH_STREAMS", 1_000_000) as u64
}

/// Streams per hibernation wave: the peak number of live detectors.
const WAVE: u64 = 8_192;
/// Records each cold stream sees before going to sleep forever.
const ELEMENTS_PER_STREAM: usize = 24;
/// The hot set: streams fed on every wave, hence (mostly) resident.
const HOT: u64 = 1_024;

fn spec_of(stream: u64) -> DetectorSpec {
    let kinds = DetectorSpec::all_defaults();
    kinds[(stream % kinds.len() as u64) as usize].clone()
}

/// SplitMix64 jitter in [0, 1).
fn unit(i: u64) -> f64 {
    let mut x = i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Binary error indicator — every shipped kind accepts it, and it is what
/// the paper's detectors monitor in production.
fn element(stream: u64, i: usize) -> f64 {
    f64::from(unit(stream.wrapping_mul(0x00C0_FFEE) ^ i as u64) < 0.07)
}

/// Feeds `streams.clone()` one wave of [`ELEMENTS_PER_STREAM`] records each,
/// then passes two flush barriers so the wave hibernates (first barrier
/// resets idleness, second finds the streams idle and compresses them).
fn feed_wave(handle: &EngineHandle, streams: impl Iterator<Item = u64> + Clone) {
    let mut records = Vec::new();
    for i in 0..ELEMENTS_PER_STREAM {
        for stream in streams.clone() {
            records.push((stream, element(stream, i)));
        }
    }
    handle.submit(&records).expect("engine running");
    handle.flush().expect("no ingestion errors");
    handle.flush().expect("no ingestion errors");
}

/// The mostly-cold fleet: every stream spec-registered up front, fed and
/// hibernated wave by wave, with the hot set re-fed on every wave.
fn build_cold_fleet(streams: u64) -> EngineHandle {
    let mut builder = EngineBuilder::new()
        .shards(8)
        .queue_capacity(512 * 1_024)
        .hibernation(HibernationPolicy::cold_after_flushes(1));
    for stream in 0..streams {
        builder = builder.stream_spec(stream, spec_of(stream));
    }
    let handle = builder.build().expect("valid engine");
    let mut wave_start = HOT;
    while wave_start < streams {
        let wave_end = (wave_start + WAVE).min(streams);
        feed_wave(&handle, (0..HOT).chain(wave_start..wave_end));
        wave_start = wave_end;
    }
    handle
}

/// Mean live bytes per stream of an identically-specced all-live fleet —
/// the baseline the hibernated figure is measured against.
fn live_bytes_per_stream() -> usize {
    let mut builder = EngineBuilder::new().shards(4);
    for stream in 0..HOT {
        builder = builder.stream_spec(stream, spec_of(stream));
    }
    let handle = builder.build().expect("valid engine");
    feed_wave(&handle, 0..HOT);
    let stats = handle.stats().expect("engine running");
    assert_eq!(stats.hibernated_streams(), 0, "no policy, nothing sleeps");
    let per_stream = stats.resident_bytes() / stats.streams;
    handle.shutdown().expect("clean shutdown");
    per_stream
}

fn bench_fleet_memory(c: &mut Criterion) {
    let streams = n_streams();
    let live_per_stream = live_bytes_per_stream();

    let handle = build_cold_fleet(streams);
    let stats = handle.stats().expect("engine running");
    let hibernated = stats.hibernated_streams();
    assert!(
        hibernated as u64 >= streams - 2 * HOT,
        "the fleet must be mostly cold ({hibernated} of {streams} hibernated)"
    );
    let hibernated_per_stream = stats.hibernated_bytes() / hibernated;
    println!(
        "fleet of {streams} streams: {hibernated} hibernated, \
         resident = {} MiB total, live reference = {live_per_stream} B/stream, \
         hibernated = {hibernated_per_stream} B/stream ({:.2}% of live)",
        stats.resident_bytes() / (1024 * 1024),
        hibernated_per_stream as f64 / live_per_stream as f64 * 100.0
    );
    // The acceptance bar: a sleeping stream costs at most 10% of a live one.
    assert!(
        hibernated_per_stream * 10 <= live_per_stream,
        "hibernated streams cost {hibernated_per_stream} B/stream, \
         more than 10% of the {live_per_stream} B/stream live footprint"
    );

    // Detector-level rehydration: exactly the work a shard does on wake —
    // rebuild from spec, restore the captured binary state.
    let mut rehydrate = c.benchmark_group("rehydration_latency");
    for spec in DetectorSpec::all_defaults() {
        let mut detector = spec.build().expect("default specs are valid");
        for i in 0..ELEMENTS_PER_STREAM {
            detector.add_element(element(spec.id().len() as u64, i));
        }
        let blob = detector
            .snapshot_state_encoded(SnapshotEncoding::Binary)
            .expect("all shipped detectors snapshot");
        rehydrate.sample_size(20);
        rehydrate.bench_function(detector.name(), |b| {
            b.iter(|| {
                let mut woken = spec.build().expect("default specs are valid");
                woken.restore_state(&blob).expect("own state restores");
                black_box(woken.elements_seen())
            });
        });
    }
    rehydrate.finish();

    let mut fleet = c.benchmark_group(format!("fleet_memory_{streams}_streams"));
    fleet.sample_size(10);

    // Engine-level wake: one record to a stream that is asleep, through
    // submit + flush (each iteration wakes a fresh cold stream).
    let mut next_cold = HOT;
    fleet.bench_function("wake_one_stream", |b| {
        b.iter(|| {
            let stream = next_cold;
            next_cold += 1;
            assert!(next_cold < streams, "ran out of cold streams to wake");
            handle.submit(&[(stream, 1.0)]).expect("engine running");
            handle.flush().expect("no ingestion errors");
            black_box(stream)
        });
    });

    // Stats on the full fleet; the throughput figure pins the fleet's
    // compressed blob bytes into BENCH_fleet_memory.json.
    fleet.throughput(Throughput::Bytes(stats.hibernated_bytes() as u64));
    fleet.bench_function("stats_query", |b| {
        b.iter(|| {
            let stats = handle.stats().expect("engine running");
            black_box(stats.hibernated_streams())
        });
    });
    fleet.finish();

    handle.shutdown().expect("clean shutdown");
}

criterion_group!(benches, bench_fleet_memory);
criterion_main!(benches);
