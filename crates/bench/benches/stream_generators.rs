//! Throughput of the stream substrate: synthetic generators and the
//! Naive-Bayes prequential loop that feeds the classification experiments.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use optwin_learners::{NaiveBayes, OnlineLearner};
use optwin_stream::generators::{
    Agrawal, AgrawalFunction, RandomRbf, RandomRbfConfig, Stagger, StaggerConcept,
};
use optwin_stream::InstanceStream;

const N: usize = 10_000;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators_10k_instances");
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(10);

    group.bench_function("STAGGER", |b| {
        b.iter(|| {
            let mut g = Stagger::new(StaggerConcept::SizeSmallAndColorRed, 1);
            for _ in 0..N {
                black_box(g.next_instance());
            }
        });
    });
    group.bench_function("AGRAWAL", |b| {
        b.iter(|| {
            let mut g = Agrawal::new(AgrawalFunction::F7, 1);
            for _ in 0..N {
                black_box(g.next_instance());
            }
        });
    });
    group.bench_function("RandomRBF", |b| {
        b.iter(|| {
            let mut g = RandomRbf::new(RandomRbfConfig::default(), 1);
            for _ in 0..N {
                black_box(g.next_instance());
            }
        });
    });
    group.finish();

    let mut group = c.benchmark_group("naive_bayes_prequential_10k");
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(10);
    group.bench_function("AGRAWAL+NB", |b| {
        b.iter(|| {
            let mut g = Agrawal::new(AgrawalFunction::F2, 1);
            let mut nb = NaiveBayes::new(&g.schema(), g.n_classes());
            let mut errors = 0u32;
            for _ in 0..N {
                let inst = g.next_instance();
                if nb.predict(&inst) != inst.label {
                    errors += 1;
                }
                nb.learn(&inst);
            }
            black_box(errors)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
