//! Snapshot wire-format comparison: **v3 JSON** number arrays vs the **v4
//! compact binary** window encoding, on a 1 000-stream OPTWIN fleet at the
//! paper's `w_max = 25 000` — the configuration the ROADMAP called out as
//! expensive to checkpoint.
//!
//! Two tiers, each for both layouts:
//!
//! * **encode** — `EngineHandle::snapshot_with(..)` + `to_json()`: the full
//!   serialize path a checkpoint pays.
//! * **decode** — `EngineSnapshot::from_json` + a factory-less
//!   `EngineBuilder::restore(..).build()`: the full restore path a restart
//!   pays (the spawned engine is shut down inside the iteration).
//!
//! The payload sizes of both layouts are printed up front — for binary
//! error streams (the paper's input) the v4 windows bit-pack to ~1/8 byte
//! per element, for real-valued loss streams they fall back to raw 8-byte
//! frames (still well below the ~19 bytes JSON spends per
//! full-precision float).
//!
//! Fleet size and fill level scale down via `OPTWIN_SNAPSHOT_BENCH_STREAMS`
//! / `OPTWIN_SNAPSHOT_BENCH_ELEMENTS` for small hosts.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use optwin_baselines::DetectorSpec;
use optwin_core::SnapshotEncoding;
use optwin_engine::{EngineBuilder, EngineHandle, EngineSnapshot};

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn n_streams() -> u64 {
    env_or("OPTWIN_SNAPSHOT_BENCH_STREAMS", 1_000) as u64
}

fn elements_per_stream() -> usize {
    env_or("OPTWIN_SNAPSHOT_BENCH_ELEMENTS", 2_500)
}

/// SplitMix64 jitter in [0, 1).
fn unit(i: u64) -> f64 {
    let mut x = i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Builds the fleet and fills every window: `streams` OPTWIN detectors at
/// `w_max = 25_000`, fed `elements` values each — binary error indicators
/// or real-valued losses.
fn filled_fleet(streams: u64, elements: usize, binary: bool) -> EngineHandle {
    let spec: DetectorSpec = "optwin:rho=0.5,w_max=25000".parse().expect("valid spec");
    let handle = EngineBuilder::new()
        .shards(4)
        .queue_capacity(256 * 1_024)
        .default_spec(spec)
        .build()
        .expect("valid engine");
    let mut records = Vec::with_capacity(streams as usize * 500);
    for start in (0..elements).step_by(500) {
        records.clear();
        for stream in 0..streams {
            for i in start..(start + 500).min(elements) {
                let u = unit(stream.wrapping_mul(0x00C0_FFEE) ^ i as u64);
                let value = if binary {
                    f64::from(u < 0.07)
                } else {
                    0.07 + 0.05 * (u - 0.5)
                };
                records.push((stream, value));
            }
        }
        handle.submit(&records).expect("engine running");
    }
    handle.flush().expect("no ingestion errors");
    handle
}

fn bench_snapshot_codec(c: &mut Criterion) {
    let streams = n_streams();
    let elements = elements_per_stream();

    // Size report: both layouts, both value profiles (the latency tiers
    // below use the binary profile — the paper's input).
    let real = filled_fleet(streams.min(64), elements, false);
    let real_v3 = real
        .snapshot_with(SnapshotEncoding::Json)
        .expect("snapshot-capable")
        .to_json();
    let real_v4 = real.snapshot_compact().expect("snapshot-capable").to_json();
    real.shutdown().expect("clean shutdown");
    println!(
        "real-valued losses, {} streams x {elements}: v3 = {} KiB, v4 = {} KiB ({:.1}%)",
        streams.min(64),
        real_v3.len() / 1024,
        real_v4.len() / 1024,
        real_v4.len() as f64 / real_v3.len() as f64 * 100.0
    );
    drop((real_v3, real_v4));

    let handle = filled_fleet(streams, elements, true);
    let v3_json = handle
        .snapshot_with(SnapshotEncoding::Json)
        .expect("snapshot-capable")
        .to_json();
    let v4_json = handle
        .snapshot_compact()
        .expect("snapshot-capable")
        .to_json();
    println!(
        "binary error streams, {streams} streams x {elements} (w_max=25k): \
         v3 = {} KiB, v4 = {} KiB ({:.1}%)",
        v3_json.len() / 1024,
        v4_json.len() / 1024,
        v4_json.len() as f64 / v3_json.len() as f64 * 100.0
    );

    let total_elements = streams * elements as u64;
    let mut encode = c.benchmark_group(format!("snapshot_encode_{streams}_streams"));
    encode.throughput(Throughput::Elements(total_elements));
    encode.sample_size(10);
    encode.bench_function("v3_json", |b| {
        b.iter(|| {
            let json = handle
                .snapshot_with(SnapshotEncoding::Json)
                .expect("snapshot-capable")
                .to_json();
            black_box(json.len())
        });
    });
    encode.bench_function("v4_binary", |b| {
        b.iter(|| {
            let json = handle
                .snapshot_compact()
                .expect("snapshot-capable")
                .to_json();
            black_box(json.len())
        });
    });
    encode.finish();

    let mut decode = c.benchmark_group(format!("snapshot_decode_{streams}_streams"));
    decode.throughput(Throughput::Elements(total_elements));
    // Restoring a 1k-detector fleet takes tens of seconds per iteration on
    // a laptop-class core (the v3 JSON parse dominates); keep the sample
    // count low so the whole bench stays in single-digit minutes.
    decode.sample_size(3);
    for (label, json) in [("v3_json", &v3_json), ("v4_binary", &v4_json)] {
        decode.bench_function(label, |b| {
            b.iter(|| {
                let snapshot = EngineSnapshot::from_json(json).expect("well-formed JSON");
                let restored = EngineBuilder::new()
                    .shards(4)
                    .restore(snapshot)
                    .build()
                    .expect("self-describing snapshot");
                let streams = restored.stats().expect("engine running").streams;
                restored.shutdown().expect("clean shutdown");
                black_box(streams)
            });
        });
    }
    decode.finish();
    handle.shutdown().expect("clean shutdown");
}

criterion_group!(benches, bench_snapshot_codec);
criterion_main!(benches);
