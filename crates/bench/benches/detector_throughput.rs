//! Per-element detector throughput (the §3.4 runtime claim).
//!
//! The paper reports per-iteration costs of ~1e-5 s for OPTWIN and ~6e-6 s
//! for ADWIN; the absolute numbers depend on the host, but the *shape* —
//! both detectors ingest elements in the microsecond range, OPTWIN's cost is
//! O(1) amortized and does not grow with the window — is what this benchmark
//! verifies.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use optwin_baselines::{Adwin, Ddm, Ecdd, Eddm, Kswin, PageHinkley, Stepd};
use optwin_core::{DriftDetector, Optwin, OptwinConfig};
use optwin_stream::{DriftKind, DriftSchedule, ErrorStream, ErrorStreamConfig};

/// A stationary binary error stream (no drift), the worst case for OPTWIN
/// because the window grows to `w_max`.
fn stationary_stream(len: usize) -> Vec<f64> {
    let schedule = DriftSchedule::stationary(len);
    ErrorStream::new(ErrorStreamConfig::binary(DriftKind::Sudden, schedule), 99).collect_all()
}

fn bench_detectors(c: &mut Criterion) {
    let stream = stationary_stream(20_000);
    let mut group = c.benchmark_group("detector_ingest_20k_stationary");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(10);

    group.bench_function("OPTWIN rho=0.5 (w_max=4k)", |b| {
        b.iter(|| {
            let mut d = Optwin::new(
                OptwinConfig::builder()
                    .robustness(0.5)
                    .max_window(4_000)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            for &x in &stream {
                black_box(d.add_element(x));
            }
        });
    });
    group.bench_function("ADWIN", |b| {
        b.iter(|| {
            let mut d = Adwin::with_defaults();
            for &x in &stream {
                black_box(d.add_element(x));
            }
        });
    });
    group.bench_function("DDM", |b| {
        b.iter(|| {
            let mut d = Ddm::with_defaults();
            for &x in &stream {
                black_box(d.add_element(x));
            }
        });
    });
    group.bench_function("EDDM", |b| {
        b.iter(|| {
            let mut d = Eddm::with_defaults();
            for &x in &stream {
                black_box(d.add_element(x));
            }
        });
    });
    group.bench_function("STEPD", |b| {
        b.iter(|| {
            let mut d = Stepd::with_defaults();
            for &x in &stream {
                black_box(d.add_element(x));
            }
        });
    });
    group.bench_function("ECDD", |b| {
        b.iter(|| {
            let mut d = Ecdd::with_defaults();
            for &x in &stream {
                black_box(d.add_element(x));
            }
        });
    });
    group.bench_function("PageHinkley", |b| {
        b.iter(|| {
            let mut d = PageHinkley::with_defaults();
            for &x in &stream {
                black_box(d.add_element(x));
            }
        });
    });
    group.bench_function("KSWIN", |b| {
        b.iter(|| {
            let mut d = Kswin::with_defaults();
            for &x in &stream {
                black_box(d.add_element(x));
            }
        });
    });
    group.finish();

    // The batch-first hot paths: `add_batch` over the whole stream. OPTWIN
    // shares a process-wide pre-warmed cut table (the engine's construction
    // route), so this tier isolates the per-batch kernel cost rather than the
    // one-off table build the scalar tier above pays every iteration.
    let mut group = c.benchmark_group("detector_ingest_20k_batched");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(10);
    group.bench_function("OPTWIN rho=0.5 (w_max=4k) add_batch", |b| {
        b.iter(|| {
            let mut d = Optwin::with_shared_table(
                OptwinConfig::builder()
                    .robustness(0.5)
                    .max_window(4_000)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            black_box(d.add_batch(&stream)).drifts()
        });
    });
    group.bench_function("KSWIN add_batch", |b| {
        b.iter(|| {
            let mut d = Kswin::with_defaults();
            black_box(d.add_batch(&stream)).drifts()
        });
    });
    group.finish();

    // OPTWIN cost as a function of w_max: amortized O(1) means the per-element
    // cost should stay flat as the window bound grows.
    let mut group = c.benchmark_group("optwin_cost_vs_w_max");
    group.sample_size(10);
    for w_max in [1_000usize, 4_000, 16_000] {
        group.throughput(Throughput::Elements(stream.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(w_max), &w_max, |b, &w_max| {
            b.iter(|| {
                let mut d = Optwin::new(
                    OptwinConfig::builder()
                        .robustness(0.5)
                        .max_window(w_max)
                        .build()
                        .unwrap(),
                )
                .unwrap();
                for &x in &stream {
                    black_box(d.add_element(x));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
