//! Synthetic stand-ins for the real-world datasets used in Table 2.
//!
//! The paper evaluates the classification pipeline on two real-world
//! benchmark datasets — **Electricity** (ELEC2, 45 312 instances, 2 classes,
//! 8 attributes) and **Covertype** (581 012 instances, 7 classes, 54
//! attributes). Neither dataset can be redistributed inside this repository,
//! so this module provides synthetic streams that preserve the properties the
//! experiment depends on (see DESIGN.md §3):
//!
//! * the same label cardinality and a comparable attribute mix,
//! * strong temporal autocorrelation / seasonality (Electricity) and
//!   spatially clustered class-conditional distributions (Covertype),
//! * *unlabelled* regime shifts at positions unknown to the detectors, so
//!   that Table 2's "accuracy under unknown drift" setting is exercised by
//!   the same code path as with the original data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::{Feature, FeatureKind, Instance, InstanceStream};

/// Synthetic stand-in for the Electricity (ELEC2) dataset.
///
/// Two classes ("price up" / "price down"), six numeric attributes with
/// daily/weekly seasonality plus autoregressive noise, and occasional market
/// regime shifts that change the relationship between demand and the label.
#[derive(Debug, Clone)]
pub struct ElectricityLike {
    rng: StdRng,
    index: usize,
    /// Current market regime (changes at random intervals).
    regime: usize,
    /// Index at which the next hidden regime shift happens.
    next_shift: usize,
    /// Autoregressive state for demand and transfer.
    demand_state: f64,
    transfer_state: f64,
}

impl ElectricityLike {
    /// Expected interval (in instances) between hidden regime shifts.
    const SHIFT_INTERVAL: usize = 12_000;

    /// Creates a stream with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let next_shift = Self::SHIFT_INTERVAL / 2 + rng.gen_range(0..Self::SHIFT_INTERVAL);
        Self {
            rng,
            index: 0,
            regime: 0,
            next_shift,
            demand_state: 0.5,
            transfer_state: 0.5,
        }
    }

    /// Number of hidden regime shifts that have occurred so far (diagnostic;
    /// not exposed to detectors).
    #[must_use]
    pub fn regime(&self) -> usize {
        self.regime
    }
}

impl InstanceStream for ElectricityLike {
    fn next_instance(&mut self) -> Instance {
        if self.index >= self.next_shift {
            self.regime += 1;
            self.next_shift +=
                Self::SHIFT_INTERVAL / 2 + self.rng.gen_range(0..ElectricityLike::SHIFT_INTERVAL);
        }
        self.index += 1;

        // Time-of-day and day-of-week encodings (48 half-hour periods).
        let period = (self.index % 48) as f64 / 48.0;
        let day = ((self.index / 48) % 7) as f64 / 7.0;

        // Demand follows a daily sinusoid plus AR(1) noise.
        let seasonal = 0.5
            + 0.3 * (2.0 * std::f64::consts::PI * period).sin()
            + 0.05 * (2.0 * std::f64::consts::PI * day).sin();
        self.demand_state =
            0.9 * self.demand_state + 0.1 * seasonal + 0.03 * (self.rng.gen::<f64>() - 0.5);
        self.transfer_state = 0.95 * self.transfer_state + 0.05 * self.rng.gen::<f64>();

        let nsw_demand = self.demand_state.clamp(0.0, 1.0);
        let vic_demand = (self.demand_state * 0.8 + 0.1 * self.rng.gen::<f64>()).clamp(0.0, 1.0);
        let transfer = self.transfer_state.clamp(0.0, 1.0);
        let nsw_price = (nsw_demand + 0.2 * (self.rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0);
        let vic_price = (vic_demand + 0.2 * (self.rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0);

        // The label relates price movement to demand; the regime flips the
        // direction and shifts the threshold, emulating market changes. The
        // thresholds are centred on the typical range of the raw scores below
        // so that both classes stay well represented in every regime.
        let threshold = match self.regime % 3 {
            0 => 0.34,
            1 => 0.30,
            _ => 0.38,
        };
        let raw_score = if self.regime.is_multiple_of(2) {
            0.6 * nsw_demand + 0.3 * vic_demand - 0.2 * transfer
        } else {
            0.5 * nsw_price + 0.4 * transfer - 0.2 * vic_demand
        };
        let noisy_score = raw_score + 0.08 * (self.rng.gen::<f64>() - 0.5);
        let label = u32::from(noisy_score > threshold);

        Instance::new(
            vec![
                Feature::Numeric(period),
                Feature::Numeric(day),
                Feature::Numeric(nsw_price),
                Feature::Numeric(nsw_demand),
                Feature::Numeric(vic_price),
                Feature::Numeric(vic_demand),
                Feature::Numeric(transfer),
            ],
            label,
        )
    }

    fn n_classes(&self) -> usize {
        2
    }

    fn schema(&self) -> Vec<FeatureKind> {
        vec![FeatureKind::Numeric; 7]
    }
}

/// Synthetic stand-in for the Covertype dataset.
///
/// Seven classes whose class-conditional distributions are Gaussian clusters
/// over ten cartographic-style numeric attributes plus two categorical
/// attributes (wilderness area, soil type). The stream wanders between
/// "geographic regions": every region re-weights the class priors and slowly
/// shifts the cluster centres, producing unlabelled gradual drifts.
#[derive(Debug, Clone)]
pub struct CovertypeLike {
    rng: StdRng,
    index: usize,
    region: usize,
    next_region_change: usize,
    /// Per-class cluster centres over the numeric attributes.
    centres: Vec<Vec<f64>>,
    /// Current class priors (re-weighted per region).
    priors: Vec<f64>,
}

impl CovertypeLike {
    const N_CLASSES: usize = 7;
    const N_NUMERIC: usize = 10;
    /// Expected interval between region changes.
    const REGION_INTERVAL: usize = 15_000;

    /// Creates a stream with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let centres: Vec<Vec<f64>> = (0..Self::N_CLASSES)
            .map(|_| (0..Self::N_NUMERIC).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let priors = Self::region_priors(&mut rng);
        let next_region_change =
            Self::REGION_INTERVAL / 2 + rng.gen_range(0..Self::REGION_INTERVAL);
        Self {
            rng,
            index: 0,
            region: 0,
            next_region_change,
            centres,
            priors,
        }
    }

    fn region_priors(rng: &mut StdRng) -> Vec<f64> {
        let raw: Vec<f64> = (0..Self::N_CLASSES)
            .map(|_| rng.gen::<f64>() + 0.1)
            .collect();
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|w| w / total).collect()
    }

    /// Current hidden region index (diagnostics).
    #[must_use]
    pub fn region(&self) -> usize {
        self.region
    }

    fn sample_class(&mut self) -> usize {
        let x: f64 = self.rng.gen();
        let mut acc = 0.0;
        for (k, p) in self.priors.iter().enumerate() {
            acc += p;
            if x < acc {
                return k;
            }
        }
        Self::N_CLASSES - 1
    }
}

impl InstanceStream for CovertypeLike {
    fn next_instance(&mut self) -> Instance {
        if self.index >= self.next_region_change {
            self.region += 1;
            self.next_region_change +=
                Self::REGION_INTERVAL / 2 + self.rng.gen_range(0..Self::REGION_INTERVAL);
            self.priors = Self::region_priors(&mut self.rng);
            // Shift the cluster centres slightly: a gradual covariate drift.
            for centre in &mut self.centres {
                for c in centre.iter_mut() {
                    *c = (*c + 0.15 * (self.rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0);
                }
            }
        }
        self.index += 1;

        let class = self.sample_class();
        let centre = self.centres[class].clone();
        let mut features: Vec<Feature> = centre
            .iter()
            .map(|c| {
                let u1: f64 = self.rng.gen_range(1e-12..1.0);
                let u2: f64 = self.rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                Feature::Numeric((c + 0.12 * z).clamp(0.0, 1.0))
            })
            .collect();
        // Wilderness area (4 values) and soil type (40 values) correlate with
        // the class but are noisy.
        let wilderness = (class as u32 + self.rng.gen_range(0..2)) % 4;
        let soil = (class as u32 * 5 + self.rng.gen_range(0..10)) % 40;
        features.push(Feature::Categorical(wilderness));
        features.push(Feature::Categorical(soil));

        Instance::new(features, class as u32)
    }

    fn n_classes(&self) -> usize {
        Self::N_CLASSES
    }

    fn schema(&self) -> Vec<FeatureKind> {
        let mut schema = vec![FeatureKind::Numeric; Self::N_NUMERIC];
        schema.push(FeatureKind::Categorical { arity: 4 });
        schema.push(FeatureKind::Categorical { arity: 40 });
        schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn electricity_shape_and_determinism() {
        let mut a = ElectricityLike::new(3);
        let mut b = ElectricityLike::new(3);
        for _ in 0..500 {
            assert_eq!(a.next_instance(), b.next_instance());
        }
        let inst = a.next_instance();
        assert_eq!(inst.features.len(), 7);
        assert!(inst.label <= 1);
        assert_eq!(a.n_classes(), 2);
    }

    #[test]
    fn electricity_has_both_classes_and_regime_shifts() {
        let mut s = ElectricityLike::new(11);
        let mut ups = 0u32;
        let n = 40_000;
        for _ in 0..n {
            ups += s.next_instance().label;
        }
        let rate = f64::from(ups) / f64::from(n);
        assert!(
            rate > 0.15 && rate < 0.85,
            "class balance degenerate: {rate}"
        );
        assert!(s.regime() >= 1, "expected at least one hidden regime shift");
    }

    #[test]
    fn covertype_shape_and_classes() {
        let mut s = CovertypeLike::new(5);
        let mut seen = [false; 7];
        for _ in 0..20_000 {
            let inst = s.next_instance();
            assert_eq!(inst.features.len(), 12);
            seen[inst.label as usize] = true;
        }
        assert!(
            seen.iter().filter(|&&x| x).count() >= 6,
            "most classes should appear: {seen:?}"
        );
        assert_eq!(s.n_classes(), 7);
        assert!(matches!(
            s.schema()[11],
            FeatureKind::Categorical { arity: 40 }
        ));
    }

    #[test]
    fn covertype_regions_change_priors() {
        let mut s = CovertypeLike::new(9);
        let count_labels = |s: &mut CovertypeLike, n: usize| {
            let mut counts = [0u32; 7];
            for _ in 0..n {
                counts[s.next_instance().label as usize] += 1;
            }
            counts
        };
        let first = count_labels(&mut s, 8_000);
        // Skip ahead until at least one region change has happened.
        while s.region() == 0 {
            let _ = s.next_instance();
        }
        let second = count_labels(&mut s, 8_000);
        let diff: i64 = first
            .iter()
            .zip(&second)
            .map(|(a, b)| (i64::from(*a) - i64::from(*b)).abs())
            .sum();
        assert!(diff > 800, "priors did not change noticeably: {diff}");
    }

    #[test]
    fn covertype_deterministic() {
        let mut a = CovertypeLike::new(21);
        let mut b = CovertypeLike::new(21);
        for _ in 0..300 {
            assert_eq!(a.next_instance(), b.next_instance());
        }
    }
}
