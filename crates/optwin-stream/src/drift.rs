//! Concept-drift composition of instance streams.
//!
//! Mirrors MOA's `ConceptDriftStream`: two concept streams are combined so
//! that, around a drift *position*, instances are increasingly drawn from the
//! new concept according to a sigmoid of configurable *width*. A width of 1
//! produces a sudden drift; the paper's gradual experiments use widths in the
//! hundreds to thousands of instances.
//!
//! [`MultiConceptStream`] chains an arbitrary number of concepts with a
//! regular drift schedule ("drift every 20 000 instances"), which is the
//! layout used by the paper's Table 1/2 classification experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::{FeatureKind, Instance, InstanceStream};
use crate::schedule::DriftSchedule;

/// Two concept streams joined by a (possibly gradual) drift.
#[derive(Debug)]
pub struct ConceptDriftStream<A, B> {
    old: A,
    new: B,
    /// Centre of the transition, in instances from the start of this stream.
    position: usize,
    /// Width of the sigmoidal transition (1 = sudden).
    width: usize,
    index: usize,
    rng: StdRng,
}

impl<A: InstanceStream, B: InstanceStream> ConceptDriftStream<A, B> {
    /// Joins `old` and `new` with a drift centred at `position` and the given
    /// transition `width` (use 1 for a sudden drift).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or the two streams disagree on their schema
    /// size or class count.
    #[must_use]
    pub fn new(old: A, new: B, position: usize, width: usize, seed: u64) -> Self {
        assert!(width >= 1, "drift width must be at least 1");
        assert_eq!(
            old.n_classes(),
            new.n_classes(),
            "both concepts must have the same number of classes"
        );
        assert_eq!(
            old.schema().len(),
            new.schema().len(),
            "both concepts must have the same number of attributes"
        );
        Self {
            old,
            new,
            position,
            width,
            index: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Probability of drawing from the *new* concept at stream index `i`
    /// (MOA's sigmoid: `1 / (1 + e^{−4 (i − position) / width})`).
    #[must_use]
    pub fn new_concept_probability(&self, i: usize) -> f64 {
        let x = -4.0 * (i as f64 - self.position as f64) / self.width as f64;
        1.0 / (1.0 + x.exp())
    }

    /// Number of instances drawn so far.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }
}

impl<A: InstanceStream, B: InstanceStream> InstanceStream for ConceptDriftStream<A, B> {
    fn next_instance(&mut self) -> Instance {
        let p_new = if self.width <= 1 {
            if self.index >= self.position {
                1.0
            } else {
                0.0
            }
        } else {
            self.new_concept_probability(self.index)
        };
        self.index += 1;
        if self.rng.gen::<f64>() < p_new {
            self.new.next_instance()
        } else {
            self.old.next_instance()
        }
    }

    fn n_classes(&self) -> usize {
        self.old.n_classes()
    }

    fn schema(&self) -> Vec<FeatureKind> {
        self.old.schema()
    }
}

/// A stream that cycles through a sequence of concepts according to a
/// [`DriftSchedule`], drawing each instance from the concept active at the
/// current index (with a sigmoidal mixture inside gradual transition zones).
pub struct MultiConceptStream {
    concepts: Vec<Box<dyn InstanceStream + Send>>,
    schedule: DriftSchedule,
    index: usize,
    rng: StdRng,
}

impl std::fmt::Debug for MultiConceptStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiConceptStream")
            .field("n_concepts", &self.concepts.len())
            .field("schedule", &self.schedule)
            .field("index", &self.index)
            .finish()
    }
}

impl MultiConceptStream {
    /// Creates a stream from a list of concept streams and a drift schedule.
    /// Concept `k` is active in segment `k` (the schedule's positions mark
    /// the segment boundaries); if there are more segments than concepts the
    /// concepts are reused cyclically.
    ///
    /// # Panics
    ///
    /// Panics if no concepts are supplied or the concepts disagree on schema
    /// size or class count.
    #[must_use]
    pub fn new(
        concepts: Vec<Box<dyn InstanceStream + Send>>,
        schedule: DriftSchedule,
        seed: u64,
    ) -> Self {
        assert!(!concepts.is_empty(), "at least one concept is required");
        let classes = concepts[0].n_classes();
        let features = concepts[0].schema().len();
        for c in &concepts {
            assert_eq!(c.n_classes(), classes, "concepts must agree on class count");
            assert_eq!(
                c.schema().len(),
                features,
                "concepts must agree on attribute count"
            );
        }
        Self {
            concepts,
            schedule,
            index: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The ground-truth drift schedule of this stream.
    #[must_use]
    pub fn schedule(&self) -> &DriftSchedule {
        &self.schedule
    }

    /// Number of instances drawn so far.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Which concept index is (predominantly) active at stream index `i`.
    fn concept_index_at(&mut self, i: usize) -> usize {
        let segment = self.schedule.concept_at(i);
        let width = self.schedule.width();
        if width <= 1 || segment > self.schedule.n_drifts() {
            return segment % self.concepts.len();
        }
        // Inside a gradual transition zone the previous concept may still be
        // sampled with sigmoidally decreasing probability.
        if segment > 0 {
            let drift_pos = self.schedule.positions()[segment - 1];
            let x = -4.0 * (i as f64 - drift_pos as f64 - width as f64 / 2.0) / width as f64;
            let p_new = 1.0 / (1.0 + x.exp());
            if self.rng.gen::<f64>() >= p_new {
                return (segment - 1) % self.concepts.len();
            }
        }
        segment % self.concepts.len()
    }
}

impl InstanceStream for MultiConceptStream {
    fn next_instance(&mut self) -> Instance {
        let idx = self.concept_index_at(self.index);
        self.index += 1;
        self.concepts[idx].next_instance()
    }

    fn n_classes(&self) -> usize {
        self.concepts[0].n_classes()
    }

    fn schema(&self) -> Vec<FeatureKind> {
        self.concepts[0].schema()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{Sea, SeaConcept, Stagger, StaggerConcept};

    #[test]
    fn sudden_drift_switches_exactly_at_position() {
        // Use two degenerate concepts that are easy to tell apart: SEA with
        // extreme thresholds produce very different positive rates.
        let old = Sea::new(SeaConcept::Theta7, 1);
        let new = Sea::new(SeaConcept::Theta95, 2);
        let mut s = ConceptDriftStream::new(old, new, 500, 1, 3);
        let labels: Vec<u32> = (0..1_000).map(|_| s.next_instance().label).collect();
        let rate_before: f64 = f64::from(labels[..500].iter().sum::<u32>()) / 500.0;
        let rate_after: f64 = f64::from(labels[500..].iter().sum::<u32>()) / 500.0;
        assert!(
            rate_after > rate_before + 0.1,
            "{rate_before} vs {rate_after}"
        );
    }

    #[test]
    fn sigmoid_probability_is_monotone_and_centred() {
        let s = ConceptDriftStream::new(
            Sea::new(SeaConcept::Theta7, 1),
            Sea::new(SeaConcept::Theta95, 2),
            1_000,
            200,
            3,
        );
        assert!(s.new_concept_probability(0) < 0.01);
        assert!((s.new_concept_probability(1_000) - 0.5).abs() < 1e-12);
        assert!(s.new_concept_probability(2_000) > 0.99);
        let mut prev = 0.0;
        for i in (0..2_000).step_by(50) {
            let p = s.new_concept_probability(i);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    #[should_panic(expected = "same number of classes")]
    fn rejects_mismatched_concepts() {
        struct ManyClasses;
        impl InstanceStream for ManyClasses {
            fn next_instance(&mut self) -> Instance {
                Instance::new(vec![], 0)
            }
            fn n_classes(&self) -> usize {
                7
            }
            fn schema(&self) -> Vec<FeatureKind> {
                vec![]
            }
        }
        let _ = ConceptDriftStream::new(Sea::new(SeaConcept::Theta7, 1), ManyClasses, 10, 1, 0);
    }

    #[test]
    fn multi_concept_stream_follows_schedule() {
        let schedule = DriftSchedule::every(1_000, 3_000, 1);
        let concepts: Vec<Box<dyn InstanceStream + Send>> = vec![
            Box::new(Stagger::new(StaggerConcept::SizeSmallAndColorRed, 1)),
            Box::new(Stagger::new(StaggerConcept::ColorGreenOrShapeCircular, 2)),
            Box::new(Stagger::new(StaggerConcept::SizeMediumOrLarge, 3)),
        ];
        let mut s = MultiConceptStream::new(concepts, schedule, 9);
        let labels: Vec<u32> = (0..3_000).map(|_| s.next_instance().label).collect();
        let rate = |range: std::ops::Range<usize>| {
            let slice = &labels[range];
            f64::from(slice.iter().sum::<u32>()) / slice.len() as f64
        };
        // Expected positive rates: 1/9, 5/9, 2/3 per segment.
        assert!((rate(0..1_000) - 1.0 / 9.0).abs() < 0.05);
        assert!((rate(1_000..2_000) - 5.0 / 9.0).abs() < 0.05);
        assert!((rate(2_000..3_000) - 2.0 / 3.0).abs() < 0.05);
        assert_eq!(s.schedule().n_drifts(), 2);
        assert_eq!(s.index(), 3_000);
    }

    #[test]
    fn multi_concept_stream_cycles_when_fewer_concepts_than_segments() {
        let schedule = DriftSchedule::every(500, 2_000, 1);
        let concepts: Vec<Box<dyn InstanceStream + Send>> = vec![
            Box::new(Stagger::new(StaggerConcept::SizeSmallAndColorRed, 1)),
            Box::new(Stagger::new(StaggerConcept::SizeMediumOrLarge, 2)),
        ];
        let mut s = MultiConceptStream::new(concepts, schedule, 9);
        let labels: Vec<u32> = (0..2_000).map(|_| s.next_instance().label).collect();
        let rate0 = f64::from(labels[..500].iter().sum::<u32>()) / 500.0;
        let rate2 = f64::from(labels[1_000..1_500].iter().sum::<u32>()) / 500.0;
        // Segments 0 and 2 use the same concept.
        assert!((rate0 - rate2).abs() < 0.08);
    }

    #[test]
    fn gradual_transition_mixes_concepts() {
        let schedule = DriftSchedule::new(vec![1_000], 600, 3_000);
        let concepts: Vec<Box<dyn InstanceStream + Send>> = vec![
            Box::new(Sea::new(SeaConcept::Theta7, 1)),
            Box::new(Sea::new(SeaConcept::Theta95, 2)),
        ];
        let mut s = MultiConceptStream::new(concepts, schedule, 4);
        let labels: Vec<u32> = (0..3_000).map(|_| s.next_instance().label).collect();
        let rate = |range: std::ops::Range<usize>| {
            let slice = &labels[range];
            f64::from(slice.iter().sum::<u32>()) / slice.len() as f64
        };
        let before = rate(0..900);
        let middle = rate(1_050..1_350);
        let after = rate(2_000..3_000);
        assert!(before < after);
        // The transition zone sits strictly between the two pure rates.
        assert!(middle > before - 0.02);
        assert!(middle < after + 0.02);
    }

    #[test]
    #[should_panic(expected = "at least one concept")]
    fn rejects_empty_concept_list() {
        let _ = MultiConceptStream::new(vec![], DriftSchedule::stationary(10), 0);
    }
}
