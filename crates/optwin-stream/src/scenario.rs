//! Adversarial drift scenarios — the `driftbench` catalogue.
//!
//! The paper evaluates detectors on exactly two error-stream drift shapes
//! (abrupt and gradual mean shifts). Production traffic misbehaves in many
//! more ways, and a detector tuned on the paper pair can fail silently on
//! them. This module widens the catalogue to seven scenario kinds — the two
//! paper shapes plus five adversarial ones:
//!
//! | id | shape | ground truth |
//! |----|-------|--------------|
//! | `abrupt` | sudden Bernoulli error-rate jumps (5 % ↔ 25 %) | drift at every jump |
//! | `gradual` | sigmoid-width error-rate ramps (the paper's gradual pair) | drift at every ramp start |
//! | `recurring` | the error rate cycles through three levels and *returns to previously seen concepts* | drift at every switch |
//! | `ramp` | one slow linear ramp stretching over half the stream | a single wide drift |
//! | `seasonal` | sinusoidal error-rate oscillation, period ≪ stream length | **no drift** — every detection is an FP |
//! | `variance` | real-valued losses, mean pinned, standard deviation jumps | drift at every σ jump |
//! | `heavy-tail` | stationary real-valued losses contaminated by Pareto outliers | **no drift** — every detection is an FP |
//!
//! Every scenario emits a value sequence plus its ground-truth
//! [`DriftSchedule`], fully determined by `(kind, stream_len, seed)`, so
//! detection quality over the grid is reproducible and can be pinned by a
//! golden results file (`tests/driftbench_quality.rs`).

use std::fmt;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error_stream::{DriftKind, ErrorStream, ErrorStreamConfig};
use crate::schedule::DriftSchedule;

/// Base Bernoulli error rate shared by the mean-shift scenarios (the
/// paper's 5 %).
const BASE_RATE: f64 = 0.05;
/// Drifted Bernoulli error rate shared by the mean-shift scenarios (the
/// paper's 25 %).
const DRIFTED_RATE: f64 = 0.25;

/// One of the seven `driftbench` scenario kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Sudden Bernoulli error-rate jumps — the paper's abrupt experiments.
    AbruptMeanShift,
    /// Sigmoid-width error-rate ramps — the paper's gradual experiments.
    GradualMeanShift,
    /// The error rate cycles through three levels, returning to concepts it
    /// has visited before. Detectors that reset their baseline on drift see
    /// every return as a fresh drift; detectors with long memories may
    /// recognise the old concept and stay quiet — both behaviours show up
    /// as recall on this scenario.
    RecurringConcepts,
    /// One linear error-rate ramp stretched over half the stream: so slow
    /// that window-based detectors straddle the ramp with both
    /// sub-windows and short-memory detectors absorb it into their
    /// baseline.
    LinearRamp,
    /// Sinusoidal error-rate oscillation around a stationary mean. The
    /// schedule records **no drift**: a mean-shift detector that fires on
    /// the seasonal swing produces pure false positives.
    SeasonalOscillation,
    /// Real-valued losses whose mean never moves while the standard
    /// deviation jumps. Mean-shift detectors are structurally blind here;
    /// the scenario measures exactly that blind spot (and rewards
    /// distribution-shape detectors such as KSWIN).
    VarianceOnly,
    /// Stationary real-valued losses contaminated by heavy-tailed Pareto
    /// outliers. The schedule records **no drift**: a detector robust to
    /// outliers stays quiet, a fragile one pays in false positives.
    HeavyTailedNoise,
}

impl ScenarioKind {
    /// All seven scenarios in catalogue order (paper pair first).
    #[must_use]
    pub fn all() -> [ScenarioKind; 7] {
        [
            ScenarioKind::AbruptMeanShift,
            ScenarioKind::GradualMeanShift,
            ScenarioKind::RecurringConcepts,
            ScenarioKind::LinearRamp,
            ScenarioKind::SeasonalOscillation,
            ScenarioKind::VarianceOnly,
            ScenarioKind::HeavyTailedNoise,
        ]
    }

    /// Stable kebab-case id used in JSON reports and on the CLI.
    #[must_use]
    pub fn id(&self) -> &'static str {
        match self {
            ScenarioKind::AbruptMeanShift => "abrupt",
            ScenarioKind::GradualMeanShift => "gradual",
            ScenarioKind::RecurringConcepts => "recurring",
            ScenarioKind::LinearRamp => "ramp",
            ScenarioKind::SeasonalOscillation => "seasonal",
            ScenarioKind::VarianceOnly => "variance",
            ScenarioKind::HeavyTailedNoise => "heavy-tail",
        }
    }

    /// Human-readable label for tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioKind::AbruptMeanShift => "abrupt mean shift",
            ScenarioKind::GradualMeanShift => "gradual mean shift",
            ScenarioKind::RecurringConcepts => "recurring concepts",
            ScenarioKind::LinearRamp => "slow linear ramp",
            ScenarioKind::SeasonalOscillation => "seasonal oscillation",
            ScenarioKind::VarianceOnly => "variance-only drift",
            ScenarioKind::HeavyTailedNoise => "heavy-tailed noise",
        }
    }

    /// `true` when the scenario emits binary (Bernoulli) error indicators —
    /// the only signal kind the binary-only detectors (DDM, EDDM, ECDD)
    /// accept. The variance-only and heavy-tail scenarios are necessarily
    /// real-valued (a Bernoulli stream cannot move its variance without
    /// moving its mean, nor grow a heavy tail), so those detectors are
    /// skipped there, mirroring the paper's treatment of the non-binary
    /// rows.
    #[must_use]
    pub fn binary_signal(&self) -> bool {
        !matches!(
            self,
            ScenarioKind::VarianceOnly | ScenarioKind::HeavyTailedNoise
        )
    }

    /// Number of ground-truth drifts the scenario injects into a stream of
    /// `stream_len` elements.
    #[must_use]
    pub fn n_drifts(&self, stream_len: usize) -> usize {
        self.generate_schedule(stream_len).n_drifts()
    }

    /// The ground-truth schedule for a stream of `stream_len` elements
    /// (independent of the seed — only the noise is random, never the drift
    /// layout).
    #[must_use]
    pub fn generate_schedule(&self, stream_len: usize) -> DriftSchedule {
        let interval = (stream_len / 5).max(1);
        match self {
            ScenarioKind::AbruptMeanShift => DriftSchedule::every(interval, stream_len, 1),
            ScenarioKind::GradualMeanShift => {
                DriftSchedule::every(interval, stream_len, 1_000.min((interval / 2).max(1)))
            }
            ScenarioKind::RecurringConcepts => {
                let step = (stream_len / 6).max(1);
                DriftSchedule::every(step, stream_len, 1)
            }
            ScenarioKind::LinearRamp => {
                // One ramp covering 40% of the stream, starting at the
                // midpoint: slow enough to defeat short windows, while the
                // scoring pre-window (width / 2 before the start) still
                // leaves a genuine false-positive region at the front.
                let start = (stream_len / 2).max(1);
                let width = (stream_len * 2 / 5).max(1);
                DriftSchedule::new(vec![start], width, stream_len)
            }
            ScenarioKind::SeasonalOscillation | ScenarioKind::HeavyTailedNoise => {
                DriftSchedule::stationary(stream_len)
            }
            ScenarioKind::VarianceOnly => DriftSchedule::every(interval, stream_len, 1),
        }
    }

    /// Generates the scenario: `stream_len` error values plus the
    /// ground-truth schedule. Fully deterministic in `(self, stream_len,
    /// seed)`.
    #[must_use]
    pub fn generate(&self, stream_len: usize, seed: u64) -> GeneratedScenario {
        let schedule = self.generate_schedule(stream_len);
        let values = match self {
            // The paper pair delegates to the Table 1 error streams.
            ScenarioKind::AbruptMeanShift => ErrorStream::new(
                ErrorStreamConfig::binary(DriftKind::Sudden, schedule.clone()),
                seed,
            )
            .collect_all(),
            ScenarioKind::GradualMeanShift | ScenarioKind::LinearRamp => ErrorStream::new(
                ErrorStreamConfig::binary(DriftKind::Gradual, schedule.clone()),
                seed,
            )
            .collect_all(),
            ScenarioKind::RecurringConcepts => {
                // Segment s draws Bernoulli(RATES[s % 3]): segment 3 returns
                // to segment 0's concept, segment 4 to segment 1's, …
                const RATES: [f64; 3] = [BASE_RATE, DRIFTED_RATE, 0.12];
                let mut rng = StdRng::seed_from_u64(seed);
                (0..stream_len)
                    .map(|i| {
                        let p = RATES[schedule.concept_at(i) % RATES.len()];
                        f64::from(rng.gen::<f64>() < p)
                    })
                    .collect()
            }
            ScenarioKind::SeasonalOscillation => {
                // Period well below the stream length, amplitude well below
                // the abrupt scenario's jump: a detector tuned for the
                // 5 % -> 25 % shift should ride the swell without firing.
                let period = (stream_len / 10).max(200) as f64;
                let mut rng = StdRng::seed_from_u64(seed);
                (0..stream_len)
                    .map(|i| {
                        let phase = 2.0 * std::f64::consts::PI * i as f64 / period;
                        let p = 0.15 + 0.08 * phase.sin();
                        f64::from(rng.gen::<f64>() < p)
                    })
                    .collect()
            }
            ScenarioKind::VarianceOnly => {
                // Mean pinned at 0.5; sigma alternates 0.05 <-> 0.15 at the
                // drift positions.
                let mut gen = Gaussian::new(seed);
                (0..stream_len)
                    .map(|i| {
                        let sigma = if schedule.concept_at(i) % 2 == 1 {
                            0.15
                        } else {
                            0.05
                        };
                        (0.5 + sigma * gen.next()).clamp(0.0, 1.0)
                    })
                    .collect()
            }
            ScenarioKind::HeavyTailedNoise => {
                // Stationary Gaussian core with 3 % Pareto contamination
                // (alpha = 1.3: finite mean, infinite variance — values are
                // deliberately NOT clamped, the tail is the adversary).
                let mut gen = Gaussian::new(seed);
                let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
                (0..stream_len)
                    .map(|_| {
                        if rng.gen::<f64>() < 0.03 {
                            let u: f64 = rng.gen_range(1e-12..1.0);
                            0.3 / u.powf(1.0 / 1.3)
                        } else {
                            (0.2 + 0.05 * gen.next()).clamp(0.0, 1.0)
                        }
                    })
                    .collect()
            }
        };
        GeneratedScenario { values, schedule }
    }
}

impl fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

impl FromStr for ScenarioKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ScenarioKind::all()
            .into_iter()
            .find(|k| k.id() == s)
            .ok_or_else(|| {
                let ids: Vec<&str> = ScenarioKind::all().iter().map(|k| k.id()).collect();
                format!(
                    "unknown scenario `{s}`; expected one of: {}",
                    ids.join(", ")
                )
            })
    }
}

/// A generated scenario: the error values a detector consumes plus the
/// ground truth the scorer needs.
#[derive(Debug, Clone)]
pub struct GeneratedScenario {
    /// The error sequence (`stream_len` values).
    pub values: Vec<f64>,
    /// Ground-truth drift schedule of the sequence.
    pub schedule: DriftSchedule,
}

/// Seeded Box–Muller Gaussian source (both variates used, matching the
/// generator idiom of [`crate::error_stream`]).
struct Gaussian {
    rng: StdRng,
    spare: Option<f64>,
}

impl Gaussian {
    fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    fn next(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    fn variance(xs: &[f64]) -> f64 {
        let m = mean(xs);
        xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn catalogue_ids_round_trip() {
        for kind in ScenarioKind::all() {
            let parsed: ScenarioKind = kind.id().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(kind.to_string(), kind.id());
            assert!(!kind.label().is_empty());
        }
        assert!("no-such-scenario".parse::<ScenarioKind>().is_err());
    }

    #[test]
    fn every_scenario_is_deterministic_and_well_formed() {
        for kind in ScenarioKind::all() {
            let a = kind.generate(6_000, 7);
            let b = kind.generate(6_000, 7);
            assert_eq!(a.values, b.values, "{kind}");
            assert_eq!(a.schedule, b.schedule, "{kind}");
            assert_eq!(a.values.len(), 6_000, "{kind}");
            assert_eq!(a.schedule.stream_len(), 6_000, "{kind}");
            assert_eq!(kind.n_drifts(6_000), a.schedule.n_drifts(), "{kind}");
            let c = kind.generate(6_000, 8);
            assert_ne!(a.values, c.values, "{kind}: seed must matter");
            if kind.binary_signal() {
                assert!(
                    a.values.iter().all(|&v| v == 0.0 || v == 1.0),
                    "{kind} must be binary"
                );
            }
        }
    }

    #[test]
    fn recurring_concepts_revisit_previous_levels() {
        let s = ScenarioKind::RecurringConcepts.generate(12_000, 3);
        assert_eq!(s.schedule.n_drifts(), 5);
        let seg = |k: usize| mean(&s.values[k * 2_000..(k + 1) * 2_000]);
        // Segments 0 and 3 share the base concept, 1 and 4 the drifted one.
        assert!((seg(0) - seg(3)).abs() < 0.03, "{} vs {}", seg(0), seg(3));
        assert!((seg(1) - seg(4)).abs() < 0.04, "{} vs {}", seg(1), seg(4));
        assert!(seg(1) > seg(0) + 0.1);
        assert!(seg(2) > seg(0) + 0.03 && seg(2) < seg(1) - 0.05);
    }

    #[test]
    fn linear_ramp_is_slow_and_monotone() {
        let s = ScenarioKind::LinearRamp.generate(20_000, 5);
        assert_eq!(s.schedule.n_drifts(), 1);
        assert_eq!(s.schedule.positions(), &[10_000]);
        assert_eq!(s.schedule.width(), 8_000);
        // The scoring pre-window opens at 10 000 - 4 000 = 6 000, so
        // [0, 6 000) stays a genuine false-positive region.
        assert_eq!(s.schedule.transition_start(0), 6_000);
        let before = mean(&s.values[..5_500]);
        let middle = mean(&s.values[13_500..14_500]);
        let after = mean(&s.values[18_500..]);
        assert!(before < 0.08, "{before}");
        assert!(after > 0.2, "{after}");
        assert!(middle > before + 0.05 && middle < after - 0.02, "{middle}");
    }

    #[test]
    fn seasonal_oscillation_has_no_ground_truth_drift() {
        let s = ScenarioKind::SeasonalOscillation.generate(10_000, 11);
        assert_eq!(s.schedule.n_drifts(), 0);
        // The rate genuinely oscillates: peak windows run hotter than
        // trough windows (period = 1 000 here; peak near i = 250, trough
        // near i = 750 within each cycle).
        let peak: Vec<f64> = (0..10)
            .flat_map(|c| s.values[c * 1_000 + 150..c * 1_000 + 350].to_vec())
            .collect();
        let trough: Vec<f64> = (0..10)
            .flat_map(|c| s.values[c * 1_000 + 650..c * 1_000 + 850].to_vec())
            .collect();
        assert!(mean(&peak) > mean(&trough) + 0.08);
    }

    #[test]
    fn variance_only_moves_sigma_not_mean() {
        let s = ScenarioKind::VarianceOnly.generate(10_000, 13);
        assert_eq!(s.schedule.n_drifts(), 4);
        let calm = &s.values[..2_000];
        let loud = &s.values[2_000..4_000];
        assert!((mean(calm) - mean(loud)).abs() < 0.02, "mean must not move");
        assert!(variance(loud) > variance(calm) * 4.0, "sigma must jump");
    }

    #[test]
    fn heavy_tail_contaminates_a_stationary_core() {
        let s = ScenarioKind::HeavyTailedNoise.generate(20_000, 17);
        assert_eq!(s.schedule.n_drifts(), 0);
        // ~3% of elements are Pareto draws; roughly a fifth of those exceed
        // 1.0 (P[x > 1] = (0.3)^1.3 ≈ 0.21), and the tail reaches far past
        // the clamped Gaussian core.
        let outliers = s.values.iter().filter(|&&v| v > 1.0).count();
        assert!(outliers > 50 && outliers < 300, "{outliers}");
        assert!(s.values.iter().cloned().fold(0.0, f64::max) > 3.0);
        // The core stays near its stationary mean.
        let core: Vec<f64> = s.values.iter().copied().filter(|&v| v <= 1.0).collect();
        assert!((mean(&core) - 0.2).abs() < 0.02);
    }
}
