//! AGRAWAL generator (Agrawal, Imielinski & Swami, 1993).
//!
//! Generates hypothetical loan-application records with nine attributes:
//!
//! | # | attribute | type | range |
//! |---|-----------|------|-------|
//! | 0 | salary    | numeric | 20 000 – 150 000 |
//! | 1 | commission| numeric | 0, or 10 000 – 75 000 when salary < 75 000 |
//! | 2 | age       | numeric | 20 – 80 |
//! | 3 | elevel    | categorical | 0 – 4 |
//! | 4 | car       | categorical | 0 – 19 |
//! | 5 | zipcode   | categorical | 0 – 8 |
//! | 6 | hvalue    | numeric | 50 000 – 1 000 000 (zipcode-dependent) |
//! | 7 | hyears    | numeric | 1 – 30 |
//! | 8 | loan      | numeric | 0 – 500 000 |
//!
//! and labels them with one of ten binary predicate functions (`F1`–`F10`).
//! Switching the function is the concept drift. The predicates follow the
//! published scheme (group A vs. group B based on age/salary/education/loan
//! thresholds and the "disposable income" formulas); the exact constants
//! reproduce the MOA implementation where known and otherwise use the values
//! from the original paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::{Feature, FeatureKind, Instance, InstanceStream};

/// The ten AGRAWAL labelling functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgrawalFunction {
    /// Group A iff `age < 40 || age >= 60`.
    F1,
    /// Age-banded salary ranges.
    F2,
    /// Age-banded education levels.
    F3,
    /// Age-banded education levels and salary ranges.
    F4,
    /// Age-banded salary and loan ranges.
    F5,
    /// Age-banded total income (salary + commission) ranges.
    F6,
    /// Disposable income `2·(salary + commission)/3 − loan/5 − 20 000 > 0`.
    F7,
    /// Disposable income `2·(salary + commission)/3 − 5 000·elevel − 20 000 > 0`.
    F8,
    /// Disposable `2·(salary + commission)/3 − 5 000·elevel − loan/5 − 10 000 > 0`.
    F9,
    /// Home-equity based disposable income.
    F10,
}

impl AgrawalFunction {
    /// All ten functions in order.
    #[must_use]
    pub fn all() -> [AgrawalFunction; 10] {
        use AgrawalFunction::*;
        [F1, F2, F3, F4, F5, F6, F7, F8, F9, F10]
    }

    /// The function used for the k-th concept segment when cycling.
    #[must_use]
    pub fn cycle(k: usize) -> Self {
        Self::all()[k % 10]
    }

    /// Applies the predicate to a raw record, returning 1 for "group A".
    #[allow(clippy::many_single_char_names)]
    #[must_use]
    pub fn label(&self, r: &Record) -> u32 {
        let group_a = match self {
            AgrawalFunction::F1 => r.age < 40.0 || r.age >= 60.0,
            AgrawalFunction::F2 => {
                if r.age < 40.0 {
                    (50_000.0..=100_000.0).contains(&r.salary)
                } else if r.age < 60.0 {
                    (75_000.0..=125_000.0).contains(&r.salary)
                } else {
                    (25_000.0..=75_000.0).contains(&r.salary)
                }
            }
            AgrawalFunction::F3 => {
                if r.age < 40.0 {
                    r.elevel <= 1
                } else if r.age < 60.0 {
                    (1..=3).contains(&r.elevel)
                } else {
                    (2..=4).contains(&r.elevel)
                }
            }
            AgrawalFunction::F4 => {
                if r.age < 40.0 {
                    if r.elevel <= 1 {
                        (25_000.0..=75_000.0).contains(&r.salary)
                    } else {
                        (50_000.0..=100_000.0).contains(&r.salary)
                    }
                } else if r.age < 60.0 {
                    if (1..=3).contains(&r.elevel) {
                        (50_000.0..=100_000.0).contains(&r.salary)
                    } else {
                        (75_000.0..=125_000.0).contains(&r.salary)
                    }
                } else if (2..=4).contains(&r.elevel) {
                    (50_000.0..=100_000.0).contains(&r.salary)
                } else {
                    (25_000.0..=75_000.0).contains(&r.salary)
                }
            }
            AgrawalFunction::F5 => {
                if r.age < 40.0 {
                    if (50_000.0..=100_000.0).contains(&r.salary) {
                        (100_000.0..=300_000.0).contains(&r.loan)
                    } else {
                        (200_000.0..=400_000.0).contains(&r.loan)
                    }
                } else if r.age < 60.0 {
                    if (75_000.0..=125_000.0).contains(&r.salary) {
                        (200_000.0..=400_000.0).contains(&r.loan)
                    } else {
                        (300_000.0..=500_000.0).contains(&r.loan)
                    }
                } else if (25_000.0..=75_000.0).contains(&r.salary) {
                    (300_000.0..=500_000.0).contains(&r.loan)
                } else {
                    (100_000.0..=300_000.0).contains(&r.loan)
                }
            }
            AgrawalFunction::F6 => {
                let total = r.salary + r.commission;
                if r.age < 40.0 {
                    (50_000.0..=100_000.0).contains(&total)
                } else if r.age < 60.0 {
                    (75_000.0..=125_000.0).contains(&total)
                } else {
                    (25_000.0..=75_000.0).contains(&total)
                }
            }
            AgrawalFunction::F7 => {
                2.0 * (r.salary + r.commission) / 3.0 - r.loan / 5.0 - 20_000.0 > 0.0
            }
            AgrawalFunction::F8 => {
                2.0 * (r.salary + r.commission) / 3.0 - 5_000.0 * f64::from(r.elevel) - 20_000.0
                    > 0.0
            }
            AgrawalFunction::F9 => {
                2.0 * (r.salary + r.commission) / 3.0
                    - 5_000.0 * f64::from(r.elevel)
                    - r.loan / 5.0
                    - 10_000.0
                    > 0.0
            }
            AgrawalFunction::F10 => {
                let equity = if r.hyears >= 20.0 {
                    0.1 * r.hvalue * (r.hyears - 20.0)
                } else {
                    0.0
                };
                2.0 * (r.salary + r.commission) / 3.0 - 5_000.0 * f64::from(r.elevel) + equity / 5.0
                    - r.loan / 5.0
                    - 10_000.0
                    > 0.0
            }
        };
        u32::from(group_a)
    }
}

/// A raw AGRAWAL record before conversion into an [`Instance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// Yearly salary.
    pub salary: f64,
    /// Yearly commission (0 unless salary < 75 000).
    pub commission: f64,
    /// Age in years.
    pub age: f64,
    /// Education level, 0–4.
    pub elevel: u32,
    /// Make of car, 0–19.
    pub car: u32,
    /// Zip code group, 0–8.
    pub zipcode: u32,
    /// House value (depends on the zip code group).
    pub hvalue: f64,
    /// Years the house has been owned.
    pub hyears: f64,
    /// Total loan amount.
    pub loan: f64,
}

/// Configuration-free AGRAWAL generator.
#[derive(Debug, Clone)]
pub struct Agrawal {
    function: AgrawalFunction,
    /// Probability of flipping the label (class noise); the paper's
    /// experiments use noise-free streams, so this defaults to 0.
    noise: f64,
    rng: StdRng,
}

impl Agrawal {
    /// Creates a generator for the given labelling function and seed.
    #[must_use]
    pub fn new(function: AgrawalFunction, seed: u64) -> Self {
        Self {
            function,
            noise: 0.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Sets the label-noise probability (fraction of flipped labels).
    ///
    /// # Panics
    ///
    /// Panics if `noise` is not in `[0, 1)`.
    #[must_use]
    pub fn with_noise(mut self, noise: f64) -> Self {
        assert!((0.0..1.0).contains(&noise), "noise must be in [0, 1)");
        self.noise = noise;
        self
    }

    /// The active labelling function.
    #[must_use]
    pub fn function(&self) -> AgrawalFunction {
        self.function
    }

    fn sample_record(&mut self) -> Record {
        let salary = self.rng.gen_range(20_000.0..150_000.0);
        let commission = if salary >= 75_000.0 {
            0.0
        } else {
            self.rng.gen_range(10_000.0..75_000.0)
        };
        let age = self.rng.gen_range(20.0..80.0);
        let elevel = self.rng.gen_range(0..5u32);
        let car = self.rng.gen_range(0..20u32);
        let zipcode = self.rng.gen_range(0..9u32);
        // House values depend on the zip code group, as in the original
        // generator: more expensive zip codes have higher base values.
        let zip_factor = f64::from(zipcode + 1);
        let hvalue = self.rng.gen_range(0.5..1.5) * 100_000.0 * zip_factor * 0.5
            + self.rng.gen_range(50_000.0..100_000.0);
        let hyears = self.rng.gen_range(1.0..30.0);
        let loan = self.rng.gen_range(0.0..500_000.0);
        Record {
            salary,
            commission,
            age,
            elevel,
            car,
            zipcode,
            hvalue,
            hyears,
            loan,
        }
    }
}

impl InstanceStream for Agrawal {
    fn next_instance(&mut self) -> Instance {
        let record = self.sample_record();
        let mut label = self.function.label(&record);
        if self.noise > 0.0 && self.rng.gen::<f64>() < self.noise {
            label = 1 - label;
        }
        let features = vec![
            Feature::Numeric(record.salary),
            Feature::Numeric(record.commission),
            Feature::Numeric(record.age),
            Feature::Categorical(record.elevel),
            Feature::Categorical(record.car),
            Feature::Categorical(record.zipcode),
            Feature::Numeric(record.hvalue),
            Feature::Numeric(record.hyears),
            Feature::Numeric(record.loan),
        ];
        Instance::new(features, label)
    }

    fn n_classes(&self) -> usize {
        2
    }

    fn schema(&self) -> Vec<FeatureKind> {
        vec![
            FeatureKind::Numeric,
            FeatureKind::Numeric,
            FeatureKind::Numeric,
            FeatureKind::Categorical { arity: 5 },
            FeatureKind::Categorical { arity: 20 },
            FeatureKind::Categorical { arity: 9 },
            FeatureKind::Numeric,
            FeatureKind::Numeric,
            FeatureKind::Numeric,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> Record {
        Record {
            salary: 60_000.0,
            commission: 20_000.0,
            age: 35.0,
            elevel: 1,
            car: 3,
            zipcode: 2,
            hvalue: 200_000.0,
            hyears: 25.0,
            loan: 100_000.0,
        }
    }

    #[test]
    fn f1_depends_only_on_age() {
        let mut r = record();
        r.age = 35.0;
        assert_eq!(AgrawalFunction::F1.label(&r), 1);
        r.age = 45.0;
        assert_eq!(AgrawalFunction::F1.label(&r), 0);
        r.age = 65.0;
        assert_eq!(AgrawalFunction::F1.label(&r), 1);
    }

    #[test]
    fn f2_salary_bands() {
        let mut r = record();
        r.age = 30.0;
        r.salary = 60_000.0;
        assert_eq!(AgrawalFunction::F2.label(&r), 1);
        r.salary = 120_000.0;
        assert_eq!(AgrawalFunction::F2.label(&r), 0);
        r.age = 50.0;
        assert_eq!(AgrawalFunction::F2.label(&r), 1);
        r.age = 70.0;
        assert_eq!(AgrawalFunction::F2.label(&r), 0);
    }

    #[test]
    fn f7_disposable_income() {
        let mut r = record();
        // 2*(80k)/3 = 53.3k; loan/5 = 20k; 53.3 - 20 - 20 > 0 → A.
        assert_eq!(AgrawalFunction::F7.label(&r), 1);
        r.loan = 400_000.0;
        // 53.3 - 80 - 20 < 0 → B.
        assert_eq!(AgrawalFunction::F7.label(&r), 0);
    }

    #[test]
    fn all_functions_produce_both_classes() {
        for function in AgrawalFunction::all() {
            let mut gen = Agrawal::new(function, 1234);
            let labels: Vec<u32> = (0..3_000).map(|_| gen.next_instance().label).collect();
            let positives: u32 = labels.iter().sum();
            assert!(
                positives > 30 && positives < 2_970,
                "{function:?} is degenerate: {positives}/3000 positives"
            );
        }
    }

    #[test]
    fn commission_is_zero_for_high_salaries() {
        let mut gen = Agrawal::new(AgrawalFunction::F1, 5);
        for _ in 0..500 {
            let inst = gen.next_instance();
            let salary = inst.features[0].as_numeric().unwrap();
            let commission = inst.features[1].as_numeric().unwrap();
            if salary >= 75_000.0 {
                assert_eq!(commission, 0.0);
            } else {
                assert!(commission >= 10_000.0);
            }
        }
    }

    #[test]
    fn noise_flips_labels() {
        let clean = Agrawal::new(AgrawalFunction::F1, 77);
        let noisy = Agrawal::new(AgrawalFunction::F1, 77).with_noise(0.3);
        let mut c = clean;
        let mut n = noisy;
        let mut flips = 0;
        for _ in 0..2_000 {
            if c.next_instance().label != n.next_instance().label {
                flips += 1;
            }
        }
        assert!(flips > 400, "expected roughly 30% flips, got {flips}/2000");
    }

    #[test]
    #[should_panic(expected = "noise must be in")]
    fn rejects_invalid_noise() {
        let _ = Agrawal::new(AgrawalFunction::F1, 0).with_noise(1.0);
    }

    #[test]
    fn schema_shape() {
        let gen = Agrawal::new(AgrawalFunction::F3, 0);
        assert_eq!(gen.n_features(), 9);
        assert_eq!(gen.n_classes(), 2);
        assert_eq!(gen.function(), AgrawalFunction::F3);
        assert!(matches!(
            gen.schema()[3],
            FeatureKind::Categorical { arity: 5 }
        ));
    }

    #[test]
    fn function_cycle() {
        assert_eq!(AgrawalFunction::cycle(0), AgrawalFunction::F1);
        assert_eq!(AgrawalFunction::cycle(9), AgrawalFunction::F10);
        assert_eq!(AgrawalFunction::cycle(10), AgrawalFunction::F1);
    }
}
