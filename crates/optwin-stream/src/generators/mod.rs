//! Synthetic concept generators (MOA re-implementations).
//!
//! The paper's "Classification" experiments use three MOA generators —
//! STAGGER, AGRAWAL and RandomRBF — with a sudden or gradual concept change
//! every 20 000 instances. Each generator here exposes a *concept* parameter;
//! switching the concept (via [`crate::drift::ConceptDriftStream`] or
//! [`crate::drift::MultiConceptStream`]) is what produces the drift.
//!
//! SEA and Sine are additional classic generators provided as extensions for
//! ablation experiments.

mod agrawal;
mod random_rbf;
mod sea;
mod sine;
mod stagger;

pub use agrawal::{Agrawal, AgrawalFunction};
pub use random_rbf::{RandomRbf, RandomRbfConfig};
pub use sea::{Sea, SeaConcept};
pub use sine::{Sine, SineConcept};
pub use stagger::{Stagger, StaggerConcept};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InstanceStream;

    /// All generators must be deterministic given the seed.
    #[test]
    fn generators_are_deterministic() {
        fn collect_labels<S: InstanceStream>(mut s: S, n: usize) -> Vec<u32> {
            (0..n).map(|_| s.next_instance().label).collect()
        }

        let a1 = collect_labels(Stagger::new(StaggerConcept::SizeSmallAndColorRed, 7), 200);
        let a2 = collect_labels(Stagger::new(StaggerConcept::SizeSmallAndColorRed, 7), 200);
        assert_eq!(a1, a2);

        let b1 = collect_labels(Agrawal::new(AgrawalFunction::F1, 7), 200);
        let b2 = collect_labels(Agrawal::new(AgrawalFunction::F1, 7), 200);
        assert_eq!(b1, b2);

        let c1 = collect_labels(RandomRbf::new(RandomRbfConfig::default(), 7), 200);
        let c2 = collect_labels(RandomRbf::new(RandomRbfConfig::default(), 7), 200);
        assert_eq!(c1, c2);

        let d1 = collect_labels(Sea::new(SeaConcept::Theta8, 7), 200);
        let d2 = collect_labels(Sea::new(SeaConcept::Theta8, 7), 200);
        assert_eq!(d1, d2);

        let e1 = collect_labels(Sine::new(SineConcept::Sine1, 7), 200);
        let e2 = collect_labels(Sine::new(SineConcept::Sine1, 7), 200);
        assert_eq!(e1, e2);
    }

    /// Different seeds should produce different instance sequences.
    #[test]
    fn different_seeds_differ() {
        let mut s1 = Agrawal::new(AgrawalFunction::F2, 1);
        let mut s2 = Agrawal::new(AgrawalFunction::F2, 2);
        let differs = (0..100).any(|_| s1.next_instance() != s2.next_instance());
        assert!(differs);
    }

    /// Switching the concept must actually change the labelling function:
    /// a noticeable fraction of identical feature vectors get a different
    /// label under the new concept.
    #[test]
    fn concept_switch_changes_labelling() {
        // STAGGER: compare labels of the same instances under two concepts.
        let mut gen = Stagger::new(StaggerConcept::SizeSmallAndColorRed, 11);
        let mut disagreements = 0;
        for _ in 0..1_000 {
            let inst = gen.next_instance();
            let relabeled = StaggerConcept::ColorGreenOrShapeCircular.label(&inst.features);
            if relabeled != inst.label {
                disagreements += 1;
            }
        }
        assert!(
            disagreements > 200,
            "concepts are too similar: {disagreements} / 1000 disagreements"
        );
    }
}
