//! STAGGER concepts generator (Schlimmer & Granger, 1986).
//!
//! Instances have three categorical attributes — size ∈ {small, medium,
//! large}, color ∈ {red, green, blue} and shape ∈ {square, circular,
//! triangular} — drawn uniformly at random. The binary label is one of three
//! boolean concepts; concept changes between the three functions are the
//! classic benchmark for sudden drift.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::{Feature, FeatureKind, Instance, InstanceStream};

/// The three STAGGER labelling concepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaggerConcept {
    /// `size = small AND color = red`.
    SizeSmallAndColorRed,
    /// `color = green OR shape = circular`.
    ColorGreenOrShapeCircular,
    /// `size = medium OR size = large`.
    SizeMediumOrLarge,
}

impl StaggerConcept {
    /// The concept used for the k-th segment when cycling through concepts.
    #[must_use]
    pub fn cycle(k: usize) -> Self {
        match k % 3 {
            0 => StaggerConcept::SizeSmallAndColorRed,
            1 => StaggerConcept::ColorGreenOrShapeCircular,
            _ => StaggerConcept::SizeMediumOrLarge,
        }
    }

    /// Applies the concept's labelling function to a feature vector
    /// (size, color, shape — each a categorical index).
    #[must_use]
    pub fn label(&self, features: &[Feature]) -> u32 {
        let size = features[0].as_categorical().unwrap_or(0);
        let color = features[1].as_categorical().unwrap_or(0);
        let shape = features[2].as_categorical().unwrap_or(0);
        let positive = match self {
            StaggerConcept::SizeSmallAndColorRed => size == 0 && color == 0,
            StaggerConcept::ColorGreenOrShapeCircular => color == 1 || shape == 1,
            StaggerConcept::SizeMediumOrLarge => size == 1 || size == 2,
        };
        u32::from(positive)
    }
}

/// The STAGGER instance generator.
#[derive(Debug, Clone)]
pub struct Stagger {
    concept: StaggerConcept,
    rng: StdRng,
}

impl Stagger {
    /// Creates a generator for the given concept and seed.
    #[must_use]
    pub fn new(concept: StaggerConcept, seed: u64) -> Self {
        Self {
            concept,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The active concept.
    #[must_use]
    pub fn concept(&self) -> StaggerConcept {
        self.concept
    }
}

impl InstanceStream for Stagger {
    fn next_instance(&mut self) -> Instance {
        let features = vec![
            Feature::Categorical(self.rng.gen_range(0..3)),
            Feature::Categorical(self.rng.gen_range(0..3)),
            Feature::Categorical(self.rng.gen_range(0..3)),
        ];
        let label = self.concept.label(&features);
        Instance::new(features, label)
    }

    fn n_classes(&self) -> usize {
        2
    }

    fn schema(&self) -> Vec<FeatureKind> {
        vec![
            FeatureKind::Categorical { arity: 3 },
            FeatureKind::Categorical { arity: 3 },
            FeatureKind::Categorical { arity: 3 },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_concept_definitions() {
        let small_red = vec![
            Feature::Categorical(0),
            Feature::Categorical(0),
            Feature::Categorical(2),
        ];
        let large_green_circle = vec![
            Feature::Categorical(2),
            Feature::Categorical(1),
            Feature::Categorical(1),
        ];
        assert_eq!(StaggerConcept::SizeSmallAndColorRed.label(&small_red), 1);
        assert_eq!(
            StaggerConcept::SizeSmallAndColorRed.label(&large_green_circle),
            0
        );
        assert_eq!(
            StaggerConcept::ColorGreenOrShapeCircular.label(&large_green_circle),
            1
        );
        assert_eq!(
            StaggerConcept::ColorGreenOrShapeCircular.label(&small_red),
            0
        );
        assert_eq!(
            StaggerConcept::SizeMediumOrLarge.label(&large_green_circle),
            1
        );
        assert_eq!(StaggerConcept::SizeMediumOrLarge.label(&small_red), 0);
    }

    #[test]
    fn concept_cycle_rotates() {
        assert_eq!(
            StaggerConcept::cycle(0),
            StaggerConcept::SizeSmallAndColorRed
        );
        assert_eq!(
            StaggerConcept::cycle(1),
            StaggerConcept::ColorGreenOrShapeCircular
        );
        assert_eq!(StaggerConcept::cycle(2), StaggerConcept::SizeMediumOrLarge);
        assert_eq!(
            StaggerConcept::cycle(3),
            StaggerConcept::SizeSmallAndColorRed
        );
    }

    #[test]
    fn class_balance_reflects_concept() {
        // Concept 1 (small AND red) is positive for 1/9 of uniform instances;
        // concept 3 (medium OR large) for 2/3.
        let positive_rate = |concept: StaggerConcept| {
            let mut gen = Stagger::new(concept, 99);
            let n = 9_000;
            let pos: u32 = (0..n).map(|_| gen.next_instance().label).sum();
            f64::from(pos) / f64::from(n)
        };
        assert!((positive_rate(StaggerConcept::SizeSmallAndColorRed) - 1.0 / 9.0).abs() < 0.02);
        assert!((positive_rate(StaggerConcept::SizeMediumOrLarge) - 2.0 / 3.0).abs() < 0.02);
        assert!(
            (positive_rate(StaggerConcept::ColorGreenOrShapeCircular) - 5.0 / 9.0).abs() < 0.02
        );
    }

    #[test]
    fn schema_and_metadata() {
        let gen = Stagger::new(StaggerConcept::SizeMediumOrLarge, 0);
        assert_eq!(gen.n_classes(), 2);
        assert_eq!(gen.n_features(), 3);
        assert_eq!(gen.concept(), StaggerConcept::SizeMediumOrLarge);
        assert!(matches!(
            gen.schema()[0],
            FeatureKind::Categorical { arity: 3 }
        ));
    }
}
