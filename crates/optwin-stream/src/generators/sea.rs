//! SEA concepts generator (Street & Kim, 2001) — extension.
//!
//! Three numeric attributes are drawn uniformly from `[0, 10]`; only the
//! first two are relevant. The label is 1 iff `x₁ + x₂ ≤ θ`, with θ taking a
//! different value per concept (the classic values are 8, 9, 7 and 9.5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::{Feature, FeatureKind, Instance, InstanceStream};

/// The four classic SEA concept thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeaConcept {
    /// θ = 8.
    Theta8,
    /// θ = 9.
    Theta9,
    /// θ = 7.
    Theta7,
    /// θ = 9.5.
    Theta95,
}

impl SeaConcept {
    /// The numeric threshold of this concept.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        match self {
            SeaConcept::Theta8 => 8.0,
            SeaConcept::Theta9 => 9.0,
            SeaConcept::Theta7 => 7.0,
            SeaConcept::Theta95 => 9.5,
        }
    }

    /// The concept used for the k-th segment when cycling.
    #[must_use]
    pub fn cycle(k: usize) -> Self {
        match k % 4 {
            0 => SeaConcept::Theta8,
            1 => SeaConcept::Theta9,
            2 => SeaConcept::Theta7,
            _ => SeaConcept::Theta95,
        }
    }
}

/// The SEA instance generator.
#[derive(Debug, Clone)]
pub struct Sea {
    concept: SeaConcept,
    noise: f64,
    rng: StdRng,
}

impl Sea {
    /// Creates a generator for the given concept and seed.
    #[must_use]
    pub fn new(concept: SeaConcept, seed: u64) -> Self {
        Self {
            concept,
            noise: 0.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Sets the label-noise probability (the original paper uses 10 %).
    ///
    /// # Panics
    ///
    /// Panics if `noise` is not in `[0, 1)`.
    #[must_use]
    pub fn with_noise(mut self, noise: f64) -> Self {
        assert!((0.0..1.0).contains(&noise), "noise must be in [0, 1)");
        self.noise = noise;
        self
    }

    /// The active concept.
    #[must_use]
    pub fn concept(&self) -> SeaConcept {
        self.concept
    }
}

impl InstanceStream for Sea {
    fn next_instance(&mut self) -> Instance {
        let x1 = self.rng.gen_range(0.0..10.0);
        let x2 = self.rng.gen_range(0.0..10.0);
        let x3 = self.rng.gen_range(0.0..10.0);
        let mut label = u32::from(x1 + x2 <= self.concept.threshold());
        if self.noise > 0.0 && self.rng.gen::<f64>() < self.noise {
            label = 1 - label;
        }
        Instance::new(
            vec![
                Feature::Numeric(x1),
                Feature::Numeric(x2),
                Feature::Numeric(x3),
            ],
            label,
        )
    }

    fn n_classes(&self) -> usize {
        2
    }

    fn schema(&self) -> Vec<FeatureKind> {
        vec![FeatureKind::Numeric; 3]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_respect_threshold() {
        let mut gen = Sea::new(SeaConcept::Theta8, 1);
        for _ in 0..500 {
            let inst = gen.next_instance();
            let sum =
                inst.features[0].as_numeric().unwrap() + inst.features[1].as_numeric().unwrap();
            assert_eq!(inst.label, u32::from(sum <= 8.0));
        }
    }

    #[test]
    fn positive_rate_tracks_threshold() {
        let rate = |concept: SeaConcept| {
            let mut gen = Sea::new(concept, 3);
            let n = 10_000;
            let pos: u32 = (0..n).map(|_| gen.next_instance().label).sum();
            f64::from(pos) / f64::from(n)
        };
        // P(x1 + x2 <= θ) for uniform [0,10]²: θ²/200 for θ <= 10.
        assert!((rate(SeaConcept::Theta7) - 49.0 / 200.0).abs() < 0.02);
        assert!((rate(SeaConcept::Theta9) - 81.0 / 200.0).abs() < 0.02);
        assert!(rate(SeaConcept::Theta95) > rate(SeaConcept::Theta7));
    }

    #[test]
    fn cycle_and_metadata() {
        assert_eq!(SeaConcept::cycle(0), SeaConcept::Theta8);
        assert_eq!(SeaConcept::cycle(5), SeaConcept::Theta9);
        let gen = Sea::new(SeaConcept::Theta95, 0);
        assert_eq!(gen.concept().threshold(), 9.5);
        assert_eq!(gen.n_classes(), 2);
        assert_eq!(gen.n_features(), 3);
    }

    #[test]
    fn noise_flips_labels() {
        // Compare the emitted label against the label recomputed from the
        // instance's own features: the mismatch rate equals the noise level.
        let mut noisy = Sea::new(SeaConcept::Theta8, 42).with_noise(0.1);
        let flips = (0..5_000)
            .filter(|_| {
                let inst = noisy.next_instance();
                let sum =
                    inst.features[0].as_numeric().unwrap() + inst.features[1].as_numeric().unwrap();
                inst.label != u32::from(sum <= 8.0)
            })
            .count();
        assert!((350..650).contains(&flips), "flips = {flips}");
    }
}
