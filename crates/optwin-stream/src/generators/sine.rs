//! Sine generators (Gama et al., 2004) — extension.
//!
//! Two numeric attributes are drawn uniformly from `[0, 1]`. Under `SINE1`
//! the label is 1 iff the point lies below the curve `x₂ = sin(x₁)`; under
//! `SINE2` iff it lies below `x₂ = 0.5 + 0.3 sin(3π x₁)`. The *reversed*
//! variants flip the labels, which is the classic way to produce a sudden
//! drift with these generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::{Feature, FeatureKind, Instance, InstanceStream};

/// Sine labelling concepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SineConcept {
    /// Below `sin(x₁)` is positive.
    Sine1,
    /// Above `sin(x₁)` is positive (reversed SINE1).
    Sine1Reversed,
    /// Below `0.5 + 0.3 sin(3π x₁)` is positive.
    Sine2,
    /// Above `0.5 + 0.3 sin(3π x₁)` is positive (reversed SINE2).
    Sine2Reversed,
}

impl SineConcept {
    /// Labels a point `(x1, x2)` under this concept.
    #[must_use]
    pub fn label(&self, x1: f64, x2: f64) -> u32 {
        let below_sine1 = x2 < x1.sin();
        let below_sine2 = x2 < 0.5 + 0.3 * (3.0 * std::f64::consts::PI * x1).sin();
        let positive = match self {
            SineConcept::Sine1 => below_sine1,
            SineConcept::Sine1Reversed => !below_sine1,
            SineConcept::Sine2 => below_sine2,
            SineConcept::Sine2Reversed => !below_sine2,
        };
        u32::from(positive)
    }

    /// Alternates between a concept and its reversal (the standard sudden
    /// drift sequence for sine streams).
    #[must_use]
    pub fn cycle(k: usize) -> Self {
        match k % 2 {
            0 => SineConcept::Sine1,
            _ => SineConcept::Sine1Reversed,
        }
    }
}

/// The Sine instance generator.
#[derive(Debug, Clone)]
pub struct Sine {
    concept: SineConcept,
    rng: StdRng,
}

impl Sine {
    /// Creates a generator for the given concept and seed.
    #[must_use]
    pub fn new(concept: SineConcept, seed: u64) -> Self {
        Self {
            concept,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The active concept.
    #[must_use]
    pub fn concept(&self) -> SineConcept {
        self.concept
    }
}

impl InstanceStream for Sine {
    fn next_instance(&mut self) -> Instance {
        let x1 = self.rng.gen::<f64>();
        let x2 = self.rng.gen::<f64>();
        let label = self.concept.label(x1, x2);
        Instance::new(vec![Feature::Numeric(x1), Feature::Numeric(x2)], label)
    }

    fn n_classes(&self) -> usize {
        2
    }

    fn schema(&self) -> Vec<FeatureKind> {
        vec![FeatureKind::Numeric; 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversal_flips_every_label() {
        for i in 0..200 {
            let x1 = f64::from(i) / 200.0;
            let x2 = f64::from((i * 7) % 200) / 200.0;
            assert_ne!(
                SineConcept::Sine1.label(x1, x2),
                SineConcept::Sine1Reversed.label(x1, x2)
            );
            assert_ne!(
                SineConcept::Sine2.label(x1, x2),
                SineConcept::Sine2Reversed.label(x1, x2)
            );
        }
    }

    #[test]
    fn sine2_boundary() {
        // Points clearly below / above the SINE2 curve at x1 = 0 (curve at 0.5).
        assert_eq!(SineConcept::Sine2.label(0.0, 0.2), 1);
        assert_eq!(SineConcept::Sine2.label(0.0, 0.8), 0);
    }

    #[test]
    fn generator_shape_and_cycle() {
        let mut gen = Sine::new(SineConcept::Sine1, 5);
        let inst = gen.next_instance();
        assert_eq!(inst.features.len(), 2);
        assert!(inst.label <= 1);
        assert_eq!(gen.n_classes(), 2);
        assert_eq!(gen.concept(), SineConcept::Sine1);
        assert_eq!(SineConcept::cycle(0), SineConcept::Sine1);
        assert_eq!(SineConcept::cycle(1), SineConcept::Sine1Reversed);
    }

    #[test]
    fn class_balance_is_reasonable() {
        let mut gen = Sine::new(SineConcept::Sine1, 8);
        let n = 10_000;
        let pos: u32 = (0..n).map(|_| gen.next_instance().label).sum();
        let rate = f64::from(pos) / f64::from(n);
        // ∫₀¹ sin(x) dx = 1 − cos(1) ≈ 0.4597
        assert!((rate - 0.4597).abs() < 0.02, "rate = {rate}");
    }
}
