//! RandomRBF generator (Bifet et al., 2009).
//!
//! A fixed set of random radial-basis-function centroids is generated in the
//! unit hypercube; each centroid carries a class label, a weight and a
//! standard deviation. Instances are produced by picking a centroid
//! (weight-proportional), choosing a random direction and offsetting the
//! centre by a Gaussian-distributed displacement.
//!
//! Concept drifts are produced either by regenerating the centroid set from a
//! new *model seed* (sudden drift between segments, as in the paper's
//! experiments) or by letting the centroids move with a constant speed
//! (incremental drift).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::{Feature, FeatureKind, Instance, InstanceStream};

/// Configuration for [`RandomRbf`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomRbfConfig {
    /// Number of centroids (MOA default 50).
    pub n_centroids: usize,
    /// Number of numeric attributes (MOA default 10).
    pub n_features: usize,
    /// Number of classes (MOA default 2; the paper uses the default).
    pub n_classes: usize,
    /// Speed at which centroids move per instance (0 = static concept).
    pub drift_speed: f64,
    /// Model seed controlling the centroid layout; instances are drawn with
    /// the separate stream seed passed to [`RandomRbf::new`]. Changing the
    /// model seed changes the concept.
    pub model_seed: u64,
}

impl Default for RandomRbfConfig {
    fn default() -> Self {
        Self {
            n_centroids: 50,
            n_features: 10,
            n_classes: 2,
            drift_speed: 0.0,
            model_seed: 1,
        }
    }
}

#[derive(Debug, Clone)]
struct Centroid {
    centre: Vec<f64>,
    class: u32,
    std: f64,
    weight: f64,
    direction: Vec<f64>,
}

/// The RandomRBF instance generator.
#[derive(Debug, Clone)]
pub struct RandomRbf {
    config: RandomRbfConfig,
    centroids: Vec<Centroid>,
    cumulative_weights: Vec<f64>,
    rng: StdRng,
}

impl RandomRbf {
    /// Creates a generator with the given configuration and stream seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero centroids, features or classes.
    #[must_use]
    pub fn new(config: RandomRbfConfig, stream_seed: u64) -> Self {
        assert!(
            config.n_centroids > 0,
            "RandomRBF needs at least one centroid"
        );
        assert!(
            config.n_features > 0,
            "RandomRBF needs at least one feature"
        );
        assert!(config.n_classes > 0, "RandomRBF needs at least one class");
        let mut model_rng = StdRng::seed_from_u64(config.model_seed);
        let centroids: Vec<Centroid> = (0..config.n_centroids)
            .map(|_| {
                let centre: Vec<f64> = (0..config.n_features)
                    .map(|_| model_rng.gen::<f64>())
                    .collect();
                let mut direction: Vec<f64> = (0..config.n_features)
                    .map(|_| model_rng.gen::<f64>() - 0.5)
                    .collect();
                let norm: f64 = direction.iter().map(|d| d * d).sum::<f64>().sqrt();
                if norm > 0.0 {
                    for d in &mut direction {
                        *d /= norm;
                    }
                }
                Centroid {
                    centre,
                    class: model_rng.gen_range(0..config.n_classes as u32),
                    std: model_rng.gen_range(0.05..0.15),
                    weight: model_rng.gen::<f64>(),
                    direction,
                }
            })
            .collect();
        let mut cumulative_weights = Vec::with_capacity(centroids.len());
        let mut acc = 0.0;
        for c in &centroids {
            acc += c.weight;
            cumulative_weights.push(acc);
        }
        Self {
            config,
            centroids,
            cumulative_weights,
            rng: StdRng::seed_from_u64(stream_seed),
        }
    }

    /// The configuration this generator was built with.
    #[must_use]
    pub fn config(&self) -> &RandomRbfConfig {
        &self.config
    }

    /// Returns a new generator with a different concept (new model seed) but
    /// the same shape parameters — the sudden-drift mechanism used by the
    /// experiments.
    #[must_use]
    pub fn with_new_concept(&self, model_seed: u64, stream_seed: u64) -> Self {
        Self::new(
            RandomRbfConfig {
                model_seed,
                ..self.config
            },
            stream_seed,
        )
    }

    fn pick_centroid(&mut self) -> usize {
        let total = *self
            .cumulative_weights
            .last()
            .expect("at least one centroid");
        let x = self.rng.gen_range(0.0..total);
        match self
            .cumulative_weights
            .binary_search_by(|w| w.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Equal))
        {
            Ok(i) | Err(i) => i.min(self.centroids.len() - 1),
        }
    }

    /// Standard normal sample via Box–Muller.
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl InstanceStream for RandomRbf {
    fn next_instance(&mut self) -> Instance {
        // Move centroids if incremental drift is configured.
        if self.config.drift_speed > 0.0 {
            let speed = self.config.drift_speed;
            for c in &mut self.centroids {
                for (x, d) in c.centre.iter_mut().zip(&c.direction) {
                    *x += d * speed;
                    // Bounce off the unit hypercube walls.
                    if *x < 0.0 || *x > 1.0 {
                        *x = x.clamp(0.0, 1.0);
                    }
                }
            }
        }

        let idx = self.pick_centroid();
        let n = self.config.n_features;
        // Random direction scaled to a Gaussian-distributed length.
        let offset: Vec<f64> = (0..n).map(|_| self.rng.gen::<f64>() - 0.5).collect();
        let norm: f64 = offset.iter().map(|d| d * d).sum::<f64>().sqrt();
        let magnitude = self.gaussian() * self.centroids[idx].std;
        let centroid = &self.centroids[idx];
        let features: Vec<Feature> = centroid
            .centre
            .iter()
            .zip(&offset)
            .map(|(c, o)| {
                let displaced = if norm > 0.0 {
                    c + o / norm * magnitude
                } else {
                    *c
                };
                Feature::Numeric(displaced)
            })
            .collect();
        Instance::new(features, centroid.class)
    }

    fn n_classes(&self) -> usize {
        self.config.n_classes
    }

    fn schema(&self) -> Vec<FeatureKind> {
        vec![FeatureKind::Numeric; self.config.n_features]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_expected_shape() {
        let mut gen = RandomRbf::new(RandomRbfConfig::default(), 3);
        let inst = gen.next_instance();
        assert_eq!(inst.features.len(), 10);
        assert!(inst.label < 2);
        assert_eq!(gen.n_classes(), 2);
        assert_eq!(gen.schema().len(), 10);
    }

    #[test]
    fn instances_cluster_around_centroids() {
        // With small per-centroid std, instances stay near the unit cube.
        let mut gen = RandomRbf::new(RandomRbfConfig::default(), 9);
        for _ in 0..1_000 {
            let inst = gen.next_instance();
            for f in &inst.features {
                let v = f.as_numeric().unwrap();
                assert!(
                    (-1.0..=2.0).contains(&v),
                    "value {v} too far from the unit cube"
                );
            }
        }
    }

    #[test]
    fn new_concept_changes_the_distribution() {
        let base = RandomRbf::new(RandomRbfConfig::default(), 5);
        let mut a = base.clone();
        let mut b = base.with_new_concept(999, 5);
        // Mean feature vectors should differ noticeably between concepts.
        let mean = |g: &mut RandomRbf| {
            let mut acc = vec![0.0; 10];
            for _ in 0..2_000 {
                let inst = g.next_instance();
                for (a, f) in acc.iter_mut().zip(&inst.features) {
                    *a += f.as_numeric().unwrap();
                }
            }
            acc.into_iter().map(|v| v / 2_000.0).collect::<Vec<_>>()
        };
        let ma = mean(&mut a);
        let mb = mean(&mut b);
        let distance: f64 = ma
            .iter()
            .zip(&mb)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(
            distance > 0.02,
            "concepts too similar: distance = {distance}"
        );
    }

    #[test]
    fn incremental_drift_moves_centroids() {
        let config = RandomRbfConfig {
            drift_speed: 0.001,
            ..RandomRbfConfig::default()
        };
        let mut gen = RandomRbf::new(config, 5);
        let first_centre = gen.centroids[0].centre.clone();
        for _ in 0..1_000 {
            let _ = gen.next_instance();
        }
        let moved: f64 = gen.centroids[0]
            .centre
            .iter()
            .zip(&first_centre)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(moved > 0.01, "centroids did not move: {moved}");
    }

    #[test]
    fn multiple_classes_supported() {
        let config = RandomRbfConfig {
            n_classes: 5,
            ..RandomRbfConfig::default()
        };
        let mut gen = RandomRbf::new(config, 4);
        let mut seen = [false; 5];
        for _ in 0..2_000 {
            seen[gen.next_instance().label as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() >= 3);
    }

    #[test]
    #[should_panic(expected = "at least one centroid")]
    fn rejects_zero_centroids() {
        let _ = RandomRbf::new(
            RandomRbfConfig {
                n_centroids: 0,
                ..RandomRbfConfig::default()
            },
            0,
        );
    }
}
