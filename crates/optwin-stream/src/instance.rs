//! The instance model shared by stream generators and online learners.

/// A single feature value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Feature {
    /// A real-valued attribute.
    Numeric(f64),
    /// A categorical attribute, encoded as an index into its value set.
    Categorical(u32),
}

impl Feature {
    /// The numeric value, if this is a numeric feature.
    #[must_use]
    pub fn as_numeric(&self) -> Option<f64> {
        match self {
            Feature::Numeric(v) => Some(*v),
            Feature::Categorical(_) => None,
        }
    }

    /// The category index, if this is a categorical feature.
    #[must_use]
    pub fn as_categorical(&self) -> Option<u32> {
        match self {
            Feature::Numeric(_) => None,
            Feature::Categorical(c) => Some(*c),
        }
    }

    /// A numeric representation usable by purely numeric learners
    /// (categorical values are cast to their index).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        match self {
            Feature::Numeric(v) => *v,
            Feature::Categorical(c) => f64::from(*c),
        }
    }
}

/// Schema information for one attribute of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// Real-valued attribute.
    Numeric,
    /// Categorical attribute with the given number of distinct values.
    Categorical {
        /// Number of distinct categories.
        arity: u32,
    },
}

/// A labelled instance drawn from a data stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Attribute values, in the order declared by the stream's schema.
    pub features: Vec<Feature>,
    /// Class label (0-based).
    pub label: u32,
}

impl Instance {
    /// Creates an instance from features and a label.
    #[must_use]
    pub fn new(features: Vec<Feature>, label: u32) -> Self {
        Self { features, label }
    }
}

/// A (possibly unbounded) stream of labelled instances.
///
/// Streams are deterministic given their construction seed; repeated
/// [`InstanceStream::next_instance`] calls advance the stream.
pub trait InstanceStream {
    /// Draws the next instance from the stream.
    fn next_instance(&mut self) -> Instance;

    /// Number of classes the label can take.
    fn n_classes(&self) -> usize;

    /// Schema of the attributes produced by this stream.
    fn schema(&self) -> Vec<FeatureKind>;

    /// Number of attributes (defaults to the schema length).
    fn n_features(&self) -> usize {
        self.schema().len()
    }
}

/// Blanket implementation so `Box<dyn InstanceStream>` can be used wherever a
/// concrete stream is expected.
impl<S: InstanceStream + ?Sized> InstanceStream for Box<S> {
    fn next_instance(&mut self) -> Instance {
        (**self).next_instance()
    }

    fn n_classes(&self) -> usize {
        (**self).n_classes()
    }

    fn schema(&self) -> Vec<FeatureKind> {
        (**self).schema()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_accessors() {
        let n = Feature::Numeric(2.5);
        let c = Feature::Categorical(3);
        assert_eq!(n.as_numeric(), Some(2.5));
        assert_eq!(n.as_categorical(), None);
        assert_eq!(c.as_categorical(), Some(3));
        assert_eq!(c.as_numeric(), None);
        assert_eq!(n.to_f64(), 2.5);
        assert_eq!(c.to_f64(), 3.0);
    }

    #[test]
    fn instance_construction() {
        let inst = Instance::new(vec![Feature::Numeric(1.0), Feature::Categorical(0)], 1);
        assert_eq!(inst.features.len(), 2);
        assert_eq!(inst.label, 1);
    }

    #[test]
    fn boxed_stream_is_a_stream() {
        struct Constant;
        impl InstanceStream for Constant {
            fn next_instance(&mut self) -> Instance {
                Instance::new(vec![Feature::Numeric(0.0)], 0)
            }
            fn n_classes(&self) -> usize {
                2
            }
            fn schema(&self) -> Vec<FeatureKind> {
                vec![FeatureKind::Numeric]
            }
        }
        let mut boxed: Box<dyn InstanceStream> = Box::new(Constant);
        assert_eq!(boxed.next_instance().label, 0);
        assert_eq!(boxed.n_classes(), 2);
        assert_eq!(boxed.n_features(), 1);
    }
}
