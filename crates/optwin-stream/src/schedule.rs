//! Ground-truth drift schedules.
//!
//! A [`DriftSchedule`] records where the concept drifts of a synthetic stream
//! actually are, so that the evaluation harness can score detections (true
//! positives, false positives, false negatives, delay) against the ground
//! truth — exactly what the paper's Table 1 reports.

/// Ground truth about the drifts injected into a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftSchedule {
    /// Positions (0-based element index) at which each drift *starts*.
    positions: Vec<usize>,
    /// Transition width in elements (1 for sudden drifts; the sigmoid width
    /// for gradual drifts).
    width: usize,
    /// Total stream length the schedule describes.
    stream_len: usize,
}

impl DriftSchedule {
    /// Creates a schedule from explicit drift start positions.
    ///
    /// # Panics
    ///
    /// Panics if positions are not strictly increasing or exceed
    /// `stream_len`, if the first position is 0 (a drift at element 0 leaves
    /// no pre-drift segment, so every detection would become a true-positive
    /// candidate for it — reject it rather than score it arbitrarily), or if
    /// `width` is zero.
    #[must_use]
    pub fn new(positions: Vec<usize>, width: usize, stream_len: usize) -> Self {
        assert!(width >= 1, "drift width must be at least 1");
        assert!(
            positions.first() != Some(&0),
            "first drift position must be positive: a drift at element 0 has no pre-drift segment"
        );
        let mut prev = 0usize;
        for (i, &p) in positions.iter().enumerate() {
            assert!(
                i == 0 || p > prev,
                "drift positions must be strictly increasing"
            );
            assert!(
                p < stream_len,
                "drift position {p} beyond stream length {stream_len}"
            );
            prev = p;
        }
        Self {
            positions,
            width,
            stream_len,
        }
    }

    /// A schedule with drifts every `interval` elements (the paper uses
    /// 100 000-element streams with drifts every 20 000 instances).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `width` is zero.
    #[must_use]
    pub fn every(interval: usize, stream_len: usize, width: usize) -> Self {
        assert!(interval > 0, "drift interval must be positive");
        let positions: Vec<usize> = (1..)
            .map(|k| k * interval)
            .take_while(|&p| p < stream_len)
            .collect();
        Self::new(positions, width, stream_len)
    }

    /// A schedule with no drifts at all.
    #[must_use]
    pub fn stationary(stream_len: usize) -> Self {
        Self::new(Vec::new(), 1, stream_len)
    }

    /// The drift start positions.
    #[must_use]
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// The transition width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total stream length covered by this schedule.
    #[must_use]
    pub fn stream_len(&self) -> usize {
        self.stream_len
    }

    /// Number of drifts.
    #[must_use]
    pub fn n_drifts(&self) -> usize {
        self.positions.len()
    }

    /// Index of the concept active at element `i` (0 before the first drift).
    ///
    /// For gradual drifts the concept is considered switched at the drift
    /// *start* position (the centre of the sigmoid is `position + width/2`).
    #[must_use]
    pub fn concept_at(&self, i: usize) -> usize {
        self.positions.iter().take_while(|&&p| p <= i).count()
    }

    /// End of the segment that starts at drift `k` (i.e. the next drift
    /// position, or the stream length for the last segment).
    #[must_use]
    pub fn segment_end(&self, k: usize) -> usize {
        self.positions
            .get(k + 1)
            .copied()
            .unwrap_or(self.stream_len)
    }

    /// First element index at which drift `k`'s transition is already
    /// observable.
    ///
    /// For sudden drifts (`width <= 1`) this is the drift position itself.
    /// For gradual drifts the generators begin sampling the new concept
    /// *before* the recorded start position (the sigmoid of
    /// [`crate::drift::ConceptDriftStream`] is centred at
    /// `position + width/2`, so its leading tail reaches back to roughly
    /// `position - width/2`), hence the transition window opens `width / 2`
    /// elements early — clamped so it never reaches at or before the
    /// previous drift's start position, and never before element 0.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n_drifts()`.
    #[must_use]
    pub fn transition_start(&self, k: usize) -> usize {
        let pre = if self.width <= 1 { 0 } else { self.width / 2 };
        let start = self.positions[k].saturating_sub(pre);
        if k == 0 {
            start
        } else {
            start.max(self.positions[k - 1] + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_generates_expected_positions() {
        let s = DriftSchedule::every(20_000, 100_000, 1);
        assert_eq!(s.positions(), &[20_000, 40_000, 60_000, 80_000]);
        assert_eq!(s.n_drifts(), 4);
        assert_eq!(s.width(), 1);
        assert_eq!(s.stream_len(), 100_000);
    }

    #[test]
    fn concept_at_boundaries() {
        let s = DriftSchedule::every(10, 40, 1);
        assert_eq!(s.concept_at(0), 0);
        assert_eq!(s.concept_at(9), 0);
        assert_eq!(s.concept_at(10), 1);
        assert_eq!(s.concept_at(19), 1);
        assert_eq!(s.concept_at(20), 2);
        assert_eq!(s.concept_at(39), 3);
    }

    #[test]
    fn segment_end() {
        let s = DriftSchedule::new(vec![100, 300], 1, 500);
        // Segment 0 starts at drift 0 (position 100) and ends at 300;
        // segment 1 ends at the stream end.
        assert_eq!(s.segment_end(0), 300);
        assert_eq!(s.segment_end(1), 500);
    }

    #[test]
    fn stationary_schedule() {
        let s = DriftSchedule::stationary(1_000);
        assert_eq!(s.n_drifts(), 0);
        assert_eq!(s.concept_at(999), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unordered_positions() {
        let _ = DriftSchedule::new(vec![50, 50], 1, 100);
    }

    #[test]
    #[should_panic(expected = "beyond stream length")]
    fn rejects_positions_beyond_length() {
        let _ = DriftSchedule::new(vec![200], 1, 100);
    }

    #[test]
    #[should_panic(expected = "width must be at least 1")]
    fn rejects_zero_width() {
        let _ = DriftSchedule::new(vec![10], 0, 100);
    }

    #[test]
    #[should_panic(expected = "first drift position must be positive")]
    fn rejects_drift_at_position_zero() {
        let _ = DriftSchedule::new(vec![0, 50], 1, 100);
    }

    #[test]
    fn transition_start_is_width_aware() {
        // Sudden drifts: the transition starts exactly at the position.
        let sudden = DriftSchedule::new(vec![100, 300], 1, 500);
        assert_eq!(sudden.transition_start(0), 100);
        assert_eq!(sudden.transition_start(1), 300);
        // Gradual drifts: the window opens width/2 early.
        let gradual = DriftSchedule::new(vec![2_000], 1_000, 4_000);
        assert_eq!(gradual.transition_start(0), 1_500);
        // Clamped at 0 when the pre-window would underflow the stream start.
        let early = DriftSchedule::new(vec![100], 1_000, 4_000);
        assert_eq!(early.transition_start(0), 0);
        // Clamped past the previous drift position when widths overlap.
        let dense = DriftSchedule::new(vec![1_000, 1_200], 1_000, 4_000);
        assert_eq!(dense.transition_start(0), 500);
        assert_eq!(dense.transition_start(1), 1_001);
        // transition_start is strictly increasing even under clamping.
        assert!(dense.transition_start(0) < dense.transition_start(1));
    }
}
