//! Direct error streams (the paper's "Concept Drift interface" experiments).
//!
//! The first family of experiments in §4.1 does not involve any learner:
//! MOA generates a stream of error values directly — binary (Bernoulli) or
//! non-binary (bounded real values) — and injects sudden or gradual drifts by
//! changing the generating distribution. The drift detectors consume these
//! values as if they were a learner's errors.
//!
//! [`ErrorStream`] reproduces that setup: it produces `stream_len` values
//! whose distribution changes at the positions given by a
//! [`DriftSchedule`], either abruptly (sudden) or by linear interpolation of
//! the distribution parameters across the drift width (gradual).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schedule::DriftSchedule;

/// Whether the stream emits binary error indicators or real-valued losses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SignalKind {
    /// Bernoulli error indicators in `{0, 1}`; the parameter pair is the
    /// (pre-drift, post-drift) error probability.
    Binary {
        /// Error probability before the first drift.
        base_rate: f64,
        /// Error probability after the last drift (intermediate drifts
        /// interpolate between the two, alternating upward).
        drifted_rate: f64,
    },
    /// Bounded real-valued losses drawn from a normal distribution clamped to
    /// `[0, 1]`.
    RealValued {
        /// Mean and standard deviation before the first drift.
        base: (f64, f64),
        /// Mean and standard deviation after a drift.
        drifted: (f64, f64),
    },
}

/// Whether drifts are injected abruptly or gradually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// The distribution switches at the drift position.
    Sudden,
    /// The distribution parameters are linearly interpolated across the
    /// drift width.
    Gradual,
}

/// Configuration of an [`ErrorStream`].
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorStreamConfig {
    /// Kind of values emitted.
    pub signal: SignalKind,
    /// Sudden or gradual drift injection.
    pub drift: DriftKind,
    /// Ground-truth drift schedule.
    pub schedule: DriftSchedule,
}

impl ErrorStreamConfig {
    /// The configuration used by the paper's "binary drift" experiments:
    /// a Bernoulli error stream whose error rate rises from 5 % to 25 %.
    #[must_use]
    pub fn binary(drift: DriftKind, schedule: DriftSchedule) -> Self {
        Self {
            signal: SignalKind::Binary {
                base_rate: 0.05,
                drifted_rate: 0.25,
            },
            drift,
            schedule,
        }
    }

    /// The configuration used by the paper's "non-binary drift" experiments:
    /// a real-valued loss whose mean and spread increase at the drift.
    #[must_use]
    pub fn real_valued(drift: DriftKind, schedule: DriftSchedule) -> Self {
        Self {
            signal: SignalKind::RealValued {
                base: (0.2, 0.05),
                drifted: (0.5, 0.10),
            },
            drift,
            schedule,
        }
    }
}

/// A seeded error stream with ground-truth drifts.
#[derive(Debug, Clone)]
pub struct ErrorStream {
    config: ErrorStreamConfig,
    rng: StdRng,
    index: usize,
}

impl ErrorStream {
    /// Creates a stream from a configuration and seed.
    #[must_use]
    pub fn new(config: ErrorStreamConfig, seed: u64) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
            index: 0,
        }
    }

    /// The ground-truth drift schedule.
    #[must_use]
    pub fn schedule(&self) -> &DriftSchedule {
        &self.config.schedule
    }

    /// Total number of elements this stream will emit.
    #[must_use]
    pub fn len(&self) -> usize {
        self.config.schedule.stream_len()
    }

    /// `true` when the configured stream length is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of "drifted-ness" at index `i`: 0 before a drift, 1 after it
    /// has fully taken effect, linearly interpolated inside a gradual drift
    /// window. Alternates back to 0 on every second drift so that repeated
    /// drifts remain visible to the detectors.
    fn drift_level(&self, i: usize) -> f64 {
        let schedule = &self.config.schedule;
        let segment = schedule.concept_at(i);
        let level_of_segment = |s: usize| if s % 2 == 1 { 1.0 } else { 0.0 };
        if segment == 0 {
            return 0.0;
        }
        match self.config.drift {
            DriftKind::Sudden => level_of_segment(segment),
            DriftKind::Gradual => {
                let drift_pos = schedule.positions()[segment - 1];
                let width = schedule.width().max(1);
                let progress = ((i - drift_pos) as f64 / width as f64).clamp(0.0, 1.0);
                let from = level_of_segment(segment - 1);
                let to = level_of_segment(segment);
                from + (to - from) * progress
            }
        }
    }

    /// Generates the next error value, or `None` once the configured length
    /// has been produced.
    pub fn next_value(&mut self) -> Option<f64> {
        if self.index >= self.config.schedule.stream_len() {
            return None;
        }
        let level = self.drift_level(self.index);
        self.index += 1;
        let value = match self.config.signal {
            SignalKind::Binary {
                base_rate,
                drifted_rate,
            } => {
                let p = base_rate + (drifted_rate - base_rate) * level;
                f64::from(self.rng.gen::<f64>() < p)
            }
            SignalKind::RealValued { base, drifted } => {
                let mean = base.0 + (drifted.0 - base.0) * level;
                let std = base.1 + (drifted.1 - base.1) * level;
                let z = self.gaussian();
                (mean + std * z).clamp(0.0, 1.0)
            }
        };
        Some(value)
    }

    /// Collects the entire stream into a vector (convenience for the
    /// experiment harness).
    #[must_use]
    pub fn collect_all(mut self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(v) = self.next_value() {
            out.push(v);
        }
        out
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Iterator for ErrorStream {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        self.next_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn binary_sudden_drift_changes_error_rate() {
        let schedule = DriftSchedule::new(vec![5_000], 1, 10_000);
        let stream = ErrorStream::new(ErrorStreamConfig::binary(DriftKind::Sudden, schedule), 1);
        let values = stream.collect_all();
        assert_eq!(values.len(), 10_000);
        assert!(values.iter().all(|&v| v == 0.0 || v == 1.0));
        assert!((mean(&values[..5_000]) - 0.05).abs() < 0.01);
        assert!((mean(&values[5_000..]) - 0.25).abs() < 0.02);
    }

    #[test]
    fn binary_gradual_drift_interpolates() {
        let schedule = DriftSchedule::new(vec![4_000], 2_000, 10_000);
        let stream = ErrorStream::new(ErrorStreamConfig::binary(DriftKind::Gradual, schedule), 2);
        let values = stream.collect_all();
        let before = mean(&values[..3_900]);
        let middle = mean(&values[4_800..5_200]);
        let after = mean(&values[7_000..]);
        assert!(before < 0.07);
        assert!(after > 0.22);
        assert!(
            middle > before + 0.03 && middle < after,
            "middle = {middle}"
        );
    }

    #[test]
    fn real_valued_drift_changes_mean_and_spread() {
        let schedule = DriftSchedule::new(vec![5_000], 1, 10_000);
        let stream = ErrorStream::new(
            ErrorStreamConfig::real_valued(DriftKind::Sudden, schedule),
            3,
        );
        let values = stream.collect_all();
        let var = |xs: &[f64]| {
            let m = mean(xs);
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
        };
        assert!((mean(&values[..5_000]) - 0.2).abs() < 0.01);
        assert!((mean(&values[5_000..]) - 0.5).abs() < 0.01);
        assert!(var(&values[5_000..]) > var(&values[..5_000]) * 2.0);
        assert!(values.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn repeated_drifts_alternate() {
        // Four drifts: the level alternates 0 → 1 → 0 → 1 → 0 so every drift
        // is an actual change.
        let schedule = DriftSchedule::every(2_000, 10_000, 1);
        let stream = ErrorStream::new(ErrorStreamConfig::binary(DriftKind::Sudden, schedule), 4);
        let values = stream.collect_all();
        let seg = |k: usize| mean(&values[k * 2_000..(k + 1) * 2_000]);
        assert!(seg(0) < 0.08);
        assert!(seg(1) > 0.2);
        assert!(seg(2) < 0.08);
        assert!(seg(3) > 0.2);
        assert!(seg(4) < 0.08);
    }

    #[test]
    fn deterministic_given_seed() {
        let schedule = DriftSchedule::new(vec![100], 1, 500);
        let a = ErrorStream::new(
            ErrorStreamConfig::binary(DriftKind::Sudden, schedule.clone()),
            7,
        )
        .collect_all();
        let b = ErrorStream::new(ErrorStreamConfig::binary(DriftKind::Sudden, schedule), 7)
            .collect_all();
        assert_eq!(a, b);
    }

    #[test]
    fn iterator_interface_and_len() {
        let schedule = DriftSchedule::stationary(100);
        let stream = ErrorStream::new(ErrorStreamConfig::binary(DriftKind::Sudden, schedule), 1);
        assert_eq!(stream.len(), 100);
        assert!(!stream.is_empty());
        let collected: Vec<f64> = stream.collect();
        assert_eq!(collected.len(), 100);
    }
}
