//! # optwin-stream — data-stream substrate
//!
//! The OPTWIN paper evaluates drift detectors inside the MOA stream-mining
//! framework. This crate re-implements the parts of MOA the experiments rely
//! on, in pure Rust:
//!
//! * [`instance`] — the instance/feature model shared with the learners.
//! * [`generators`] — synthetic concept generators: STAGGER, AGRAWAL,
//!   RandomRBF (the paper's Table 1/2 datasets) plus SEA and Sine
//!   (extensions).
//! * [`drift`] — MOA's `ConceptDriftStream`: composes two concept streams
//!   with a sudden or sigmoidal (gradual) transition, and a multi-concept
//!   schedule helper that produces "drift every 20 000 instances" streams.
//! * [`error_stream`] — the "Concept Drift interface" experiments: direct
//!   binary (Bernoulli) and non-binary (Gaussian) error streams with sudden
//!   or gradual drifts, bypassing any learner.
//! * [`realworld`] — synthetic stand-ins for the Electricity and Covertype
//!   datasets (see DESIGN.md §3 for the substitution rationale).
//! * [`scenario`] — the `driftbench` scenario catalogue: the paper's
//!   abrupt/gradual pair plus five adversarial workloads (recurring
//!   concepts, slow ramps, seasonal oscillation, variance-only drift,
//!   heavy-tailed noise), each with ground truth.
//! * [`schedule`] — ground-truth drift schedules shared by generators and
//!   the evaluation harness.
//!
//! All stochastic components are seeded explicitly and therefore fully
//! reproducible.
//!
//! ```
//! use optwin_stream::generators::{Stagger, StaggerConcept};
//! use optwin_stream::InstanceStream;
//!
//! let mut stream = Stagger::new(StaggerConcept::SizeSmallAndColorRed, 42);
//! let instance = stream.next_instance();
//! assert_eq!(instance.features.len(), 3);
//! assert!(instance.label <= 1);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod drift;
pub mod error_stream;
pub mod generators;
pub mod instance;
pub mod realworld;
pub mod scenario;
pub mod schedule;

pub use drift::{ConceptDriftStream, MultiConceptStream};
pub use error_stream::{DriftKind, ErrorStream, ErrorStreamConfig, SignalKind};
pub use instance::{Feature, FeatureKind, Instance, InstanceStream};
pub use scenario::{GeneratedScenario, ScenarioKind};
pub use schedule::DriftSchedule;
