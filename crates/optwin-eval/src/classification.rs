//! The Table 2 experiments: Naive-Bayes accuracy under each drift detector.
//!
//! The paper trains MOA's Naive Bayes classifier prequentially on synthetic
//! streams (STAGGER, RandomRBF, AGRAWAL — with sudden and gradual drifts) and
//! on two real-world datasets (Electricity, Covertype — replaced here by the
//! synthetic stand-ins of [`optwin_stream::realworld`]). The classifier is
//! reset whenever its drift detector fires; the reported number is the final
//! prequential accuracy. A "No drift detector" row serves as the baseline.

use serde::{Deserialize, Serialize};

use optwin_baselines::DetectorKind;
use optwin_core::DriftStatus;
use optwin_learners::{NaiveBayes, OnlineLearner};
use optwin_stream::realworld::{CovertypeLike, ElectricityLike};
use optwin_stream::{DriftSchedule, InstanceStream};

use crate::experiment::Table1Experiment;
use crate::factory::DetectorFactory;

/// One column group of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClassificationExperiment {
    /// STAGGER with sudden concept changes.
    SuddenStagger,
    /// RandomRBF with sudden concept changes.
    SuddenRandomRbf,
    /// AGRAWAL with sudden concept changes.
    SuddenAgrawal,
    /// STAGGER with gradual concept changes.
    GradualStagger,
    /// RandomRBF with gradual concept changes.
    GradualRandomRbf,
    /// AGRAWAL with gradual concept changes.
    GradualAgrawal,
    /// Electricity-like real-world substitute stream.
    Electricity,
    /// Covertype-like real-world substitute stream.
    Covertype,
}

impl ClassificationExperiment {
    /// All eight column groups in the order of Table 2.
    #[must_use]
    pub fn all() -> [ClassificationExperiment; 8] {
        [
            ClassificationExperiment::SuddenStagger,
            ClassificationExperiment::SuddenRandomRbf,
            ClassificationExperiment::SuddenAgrawal,
            ClassificationExperiment::GradualStagger,
            ClassificationExperiment::GradualRandomRbf,
            ClassificationExperiment::GradualAgrawal,
            ClassificationExperiment::Electricity,
            ClassificationExperiment::Covertype,
        ]
    }

    /// The column label used in Table 2.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ClassificationExperiment::SuddenStagger => "STAGGER (sudden)",
            ClassificationExperiment::SuddenRandomRbf => "Random RBF (sudden)",
            ClassificationExperiment::SuddenAgrawal => "AGRAWAL (sudden)",
            ClassificationExperiment::GradualStagger => "STAGGER (gradual)",
            ClassificationExperiment::GradualRandomRbf => "Random RBF (gradual)",
            ClassificationExperiment::GradualAgrawal => "AGRAWAL (gradual)",
            ClassificationExperiment::Electricity => "Electricity (synthetic stand-in)",
            ClassificationExperiment::Covertype => "Covertype (synthetic stand-in)",
        }
    }

    /// Default stream length (the paper uses 100 000 for synthetic streams,
    /// ~45 000 for Electricity and ~580 000 for Covertype; the stand-ins use
    /// comparable but capped lengths so the harness stays fast).
    #[must_use]
    pub fn default_stream_len(&self) -> usize {
        match self {
            ClassificationExperiment::Electricity => 45_000,
            ClassificationExperiment::Covertype => 100_000,
            _ => 100_000,
        }
    }

    /// Whether the experiment has a known drift schedule (the real-world
    /// streams do not — that is exactly why Table 1 excludes them).
    #[must_use]
    pub fn has_known_drifts(&self) -> bool {
        !matches!(
            self,
            ClassificationExperiment::Electricity | ClassificationExperiment::Covertype
        )
    }

    /// Builds the instance stream for this experiment.
    #[must_use]
    pub fn build_stream(&self, seed: u64, stream_len: usize) -> Box<dyn InstanceStream + Send> {
        let interval = stream_len / 5;
        match self {
            ClassificationExperiment::SuddenStagger => {
                let schedule = DriftSchedule::every(interval, stream_len, 1);
                Box::new(Table1Experiment::Stagger.build_classification_stream(seed, &schedule))
            }
            ClassificationExperiment::SuddenRandomRbf => {
                let schedule = DriftSchedule::every(interval, stream_len, 1);
                Box::new(Table1Experiment::RandomRbf.build_classification_stream(seed, &schedule))
            }
            ClassificationExperiment::SuddenAgrawal => {
                let schedule = DriftSchedule::every(interval, stream_len, 1);
                Box::new(Table1Experiment::Agrawal.build_classification_stream(seed, &schedule))
            }
            ClassificationExperiment::GradualStagger => {
                let schedule = DriftSchedule::every(interval, stream_len, interval / 10);
                Box::new(Table1Experiment::Stagger.build_classification_stream(seed, &schedule))
            }
            ClassificationExperiment::GradualRandomRbf => {
                let schedule = DriftSchedule::every(interval, stream_len, interval / 10);
                Box::new(Table1Experiment::RandomRbf.build_classification_stream(seed, &schedule))
            }
            ClassificationExperiment::GradualAgrawal => {
                let schedule = DriftSchedule::every(interval, stream_len, interval / 10);
                Box::new(Table1Experiment::Agrawal.build_classification_stream(seed, &schedule))
            }
            ClassificationExperiment::Electricity => Box::new(ElectricityLike::new(seed)),
            ClassificationExperiment::Covertype => Box::new(CovertypeLike::new(seed)),
        }
    }
}

/// The accuracy outcome of one (experiment, detector) cell of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassificationOutcome {
    /// Experiment (column) this outcome belongs to.
    pub experiment: ClassificationExperiment,
    /// Detector label, or `"No drift detector"` for the baseline row.
    pub detector: String,
    /// Final prequential accuracy (×100 gives the percentage of the paper).
    pub accuracy: f64,
    /// Number of drifts the detector flagged over the run.
    pub detections: usize,
    /// Stream length processed.
    pub instances: usize,
}

/// Runs one Table 2 cell: Naive Bayes + the given detector (or none).
#[must_use]
pub fn run_classification_cell(
    experiment: ClassificationExperiment,
    detector_kind: Option<DetectorKind>,
    factory: &mut DetectorFactory,
    stream_len: Option<usize>,
    seed: u64,
) -> ClassificationOutcome {
    let stream_len = stream_len.unwrap_or_else(|| experiment.default_stream_len());
    let mut stream = experiment.build_stream(seed, stream_len);
    let mut learner = NaiveBayes::new(&stream.schema(), stream.n_classes());
    let mut detector = detector_kind.map(|kind| factory.build(kind));

    let mut correct = 0usize;
    let mut detections = 0usize;
    for _ in 0..stream_len {
        let inst = stream.next_instance();
        let predicted = learner.predict(&inst);
        let error = if predicted == inst.label {
            correct += 1;
            0.0
        } else {
            1.0
        };
        if let Some(d) = detector.as_mut() {
            if d.add_element(error) == DriftStatus::Drift {
                detections += 1;
                learner.reset();
            }
        }
        learner.learn(&inst);
    }

    ClassificationOutcome {
        experiment,
        detector: detector_kind.map_or_else(|| "No drift detector".to_string(), |k| k.label()),
        accuracy: correct as f64 / stream_len as f64,
        detections,
        instances: stream_len,
    }
}

/// Runs a full Table 2 column: the no-detector baseline plus every detector
/// in the paper line-up.
#[must_use]
pub fn run_classification_column(
    experiment: ClassificationExperiment,
    factory: &mut DetectorFactory,
    stream_len: Option<usize>,
    seed: u64,
) -> Vec<ClassificationOutcome> {
    let mut rows = vec![run_classification_cell(
        experiment, None, factory, stream_len, seed,
    )];
    for kind in DetectorKind::paper_lineup() {
        rows.push(run_classification_cell(
            experiment,
            Some(kind),
            factory,
            stream_len,
            seed,
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_metadata() {
        assert_eq!(ClassificationExperiment::all().len(), 8);
        assert!(ClassificationExperiment::SuddenStagger.has_known_drifts());
        assert!(!ClassificationExperiment::Electricity.has_known_drifts());
        assert_eq!(
            ClassificationExperiment::Covertype.default_stream_len(),
            100_000
        );
        assert!(ClassificationExperiment::GradualAgrawal
            .label()
            .contains("AGRAWAL"));
    }

    #[test]
    fn streams_build_for_every_experiment() {
        for exp in ClassificationExperiment::all() {
            let mut stream = exp.build_stream(7, 2_000);
            let inst = stream.next_instance();
            assert!(!inst.features.is_empty());
            assert!(stream.n_classes() >= 2);
        }
    }

    #[test]
    fn adaptation_improves_accuracy_on_drifting_stagger() {
        let mut factory = DetectorFactory::with_optwin_window(1_000);
        let baseline = run_classification_cell(
            ClassificationExperiment::SuddenStagger,
            None,
            &mut factory,
            Some(15_000),
            3,
        );
        let with_optwin = run_classification_cell(
            ClassificationExperiment::SuddenStagger,
            Some(DetectorKind::OptwinRho(500)),
            &mut factory,
            Some(15_000),
            3,
        );
        assert!(
            with_optwin.accuracy > baseline.accuracy + 0.02,
            "OPTWIN-adapted {} vs baseline {}",
            with_optwin.accuracy,
            baseline.accuracy
        );
        assert!(with_optwin.detections >= 1);
        assert_eq!(baseline.detector, "No drift detector");
    }

    #[test]
    fn full_column_has_all_rows() {
        let mut factory = DetectorFactory::with_optwin_window(500);
        let rows = run_classification_column(
            ClassificationExperiment::SuddenStagger,
            &mut factory,
            Some(4_000),
            1,
        );
        // Baseline + 8 detectors.
        assert_eq!(rows.len(), 9);
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.accuracy)));
    }
}
