//! Result rendering: plain-text tables (mirroring the paper's layout) and
//! JSON persistence for the benchmark binaries.

use std::fmt::Write as _;

use serde::Serialize;

use crate::classification::ClassificationOutcome;
use crate::experiment::Table1Aggregate;

/// Renders a set of Table 1 rows (one experiment) as a fixed-width text
/// table with the same columns as the paper: Delay, FP, P, R, F1.
#[must_use]
pub fn render_table1(rows: &[Table1Aggregate]) -> String {
    let mut out = String::new();
    if rows.is_empty() {
        return out;
    }
    let _ = writeln!(out, "Experiment: {}", rows[0].experiment.label());
    let _ = writeln!(
        out,
        "{:<18} {:>10} {:>8} {:>7} {:>7} {:>7}",
        "Drift Detector", "Delay", "FP", "P", "R", "F1"
    );
    for row in rows {
        let delay = row
            .metrics
            .mean_delay
            .map_or_else(|| "-".to_string(), |d| format!("{d:.2}"));
        let _ = writeln!(
            out,
            "{:<18} {:>10} {:>8.2} {:>6.0}% {:>6.0}% {:>6.0}%",
            row.detector,
            delay,
            row.metrics.mean_false_positives_per_run,
            row.metrics.precision * 100.0,
            row.metrics.recall * 100.0,
            row.metrics.f1 * 100.0,
        );
    }
    out
}

/// Renders Table 2 rows (one experiment column) as a fixed-width text table.
#[must_use]
pub fn render_table2(rows: &[ClassificationOutcome]) -> String {
    let mut out = String::new();
    if rows.is_empty() {
        return out;
    }
    let _ = writeln!(out, "Dataset: {}", rows[0].experiment.label());
    let _ = writeln!(
        out,
        "{:<20} {:>10} {:>12}",
        "Drift Detector", "Accuracy", "Detections"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<20} {:>9.2}% {:>12}",
            row.detector,
            row.accuracy * 100.0,
            row.detections
        );
    }
    out
}

/// Serialises any result record to pretty JSON (used by the binaries to dump
/// machine-readable results next to the printed tables).
///
/// # Errors
///
/// Returns a `serde_json::Error` if serialisation fails (practically
/// unreachable for the plain data types used here).
pub fn to_json<T: Serialize>(value: &T) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classification::ClassificationExperiment;
    use crate::experiment::Table1Experiment;
    use crate::metrics::AggregateMetrics;
    use crate::metrics::DetectionOutcome;

    fn fake_row() -> Table1Aggregate {
        let outcome = DetectionOutcome {
            true_positives: 4,
            false_positives: 1,
            false_negatives: 0,
            delays: vec![10.0, 20.0, 30.0, 40.0],
            mean_delay: Some(25.0),
        };
        Table1Aggregate {
            experiment: Table1Experiment::SuddenBinary,
            detector: "OPTWIN rho=0.5".to_string(),
            metrics: AggregateMetrics::from_outcomes(&[outcome]),
            mean_detector_seconds: 0.01,
        }
    }

    #[test]
    fn table1_rendering_contains_all_columns() {
        let text = render_table1(&[fake_row()]);
        assert!(text.contains("sudden binary drift"));
        assert!(text.contains("OPTWIN rho=0.5"));
        assert!(text.contains("Delay"));
        assert!(text.contains("F1"));
        assert!(text.contains("25.00"));
        assert!(render_table1(&[]).is_empty());
    }

    #[test]
    fn table2_rendering() {
        let rows = vec![ClassificationOutcome {
            experiment: ClassificationExperiment::SuddenStagger,
            detector: "ADWIN".to_string(),
            accuracy: 0.9989,
            detections: 4,
            instances: 100_000,
        }];
        let text = render_table2(&rows);
        assert!(text.contains("STAGGER"));
        assert!(text.contains("ADWIN"));
        assert!(text.contains("99.89%"));
        assert!(render_table2(&[]).is_empty());
    }

    #[test]
    fn json_serialisation_works() {
        let json = to_json(&fake_row()).unwrap();
        assert!(json.contains("\"detector\""));
        assert!(json.contains("OPTWIN rho=0.5"));
    }
}
