//! # optwin-eval — evaluation harness
//!
//! Everything needed to regenerate the paper's evaluation section:
//!
//! * [`metrics`] — scoring of drift detections against a ground-truth
//!   schedule (TP / FP / FN, precision, recall, F1, detection delay), with
//!   micro-averaged aggregation over repeated runs exactly as in Table 1.
//! * [`factory`] — uniform construction of every detector in the paper's
//!   line-up (three OPTWIN configurations plus the five baselines and the
//!   extension detectors), with shared OPTWIN cut tables across repetitions.
//! * [`experiment`] — the seven Table 1 experiment configurations (binary /
//!   non-binary error streams with sudden / gradual drifts, and the STAGGER /
//!   RandomRBF / AGRAWAL classification streams) and the runner that executes
//!   a detector over them.
//! * [`classification`] — the Table 2 experiments: prequential Naive-Bayes
//!   accuracy under each detector on synthetic and real-world-like streams.
//! * [`nn_pipeline`] — the Figure 5 experiment: drift detection over the loss
//!   of a neural network with label-swap drifts and fine-tuning cost
//!   accounting.
//! * [`report`] — plain-text table rendering and JSON-serialisable result
//!   records used by the benchmark binaries.
//! * [`driftbench`] — the adversarial scenario grid: every detector spec
//!   kind plus composite cascades/ensembles across the full
//!   [`optwin_stream::ScenarioKind`] catalogue, replayed through the sharded
//!   engine and scored into a JSON-serialisable quality report.
//!
//! ```
//! use optwin_eval::metrics::score_detections;
//! use optwin_stream::DriftSchedule;
//!
//! let schedule = DriftSchedule::new(vec![1_000, 2_000], 1, 3_000);
//! let outcome = score_detections(&schedule, &[1_050, 1_500, 2_040]);
//! assert_eq!(outcome.true_positives, 2);
//! assert_eq!(outcome.false_positives, 1);
//! assert_eq!(outcome.false_negatives, 0);
//! assert!((outcome.mean_delay.unwrap() - 45.0).abs() < 1e-9);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod classification;
pub mod driftbench;
pub mod experiment;
pub mod factory;
pub mod metrics;
pub mod nn_pipeline;
pub mod report;

pub use classification::{ClassificationExperiment, ClassificationOutcome};
pub use driftbench::{
    default_lineup, run_driftbench, DriftbenchCell, DriftbenchConfig, DriftbenchReport,
};
pub use experiment::{
    run_table1_experiment, run_table1_experiment_sharded, run_table1_fleet, run_table1_specs,
    DetectionRun, Table1Aggregate, Table1Experiment,
};
pub use factory::DetectorFactory;
pub use metrics::{score_detections, AggregateMetrics, DetectionOutcome};
pub use nn_pipeline::{NnPipelineConfig, NnPipelineOutcome};
