//! The Figure 5 experiment: drift detection over the loss of a neural
//! network with label-swap drifts.
//!
//! The paper pre-trains a CNN on CIFAR-10, then simulates an online-learning
//! scenario: the stream consists of image batches (32 images each); every
//! 20 % of the stream the labels of two classes are swapped (a sudden actual
//! drift); at every iteration the model's batch loss is fed to a drift
//! detector; whenever the detector fires, the next `fine_tune_batches`
//! batches are used to fine-tune the model. The headline result is that
//! OPTWIN's lower FP rate triggers far fewer unnecessary fine-tuning phases
//! than ADWIN, making the whole pipeline ~21 % faster.
//!
//! As documented in DESIGN.md §3, the CNN/CIFAR-10 pair is replaced by a
//! one-hidden-layer MLP over Gaussian class prototypes; the loss dynamics
//! (low pre-trained loss → sharp jump at a label swap → decay during
//! fine-tuning) are preserved, which is all the detectors observe.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use optwin_core::{DriftDetector, DriftStatus};
use optwin_learners::{Mlp, MlpConfig, PrototypeTask};
use optwin_stream::DriftSchedule;

use crate::metrics::{score_detections, DetectionOutcome};

/// Configuration of the neural-network pipeline experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NnPipelineConfig {
    /// Number of streamed batches (the paper streams 312 400 batches; the
    /// default here is smaller so the experiment completes in seconds while
    /// preserving the structure — the binaries can override it).
    pub total_batches: usize,
    /// Batch size (32 in the paper).
    pub batch_size: usize,
    /// Number of label-swap drifts, evenly spaced (4 in the paper).
    pub n_drifts: usize,
    /// Number of batches used to pre-train the model before streaming.
    pub pretrain_batches: usize,
    /// Number of batches of fine-tuning triggered by each detection
    /// (the paper fine-tunes for 3 epochs = 9 372 batches; scaled down
    /// proportionally by default).
    pub fine_tune_batches: usize,
    /// Number of classes of the synthetic task.
    pub n_classes: usize,
    /// Input dimensionality of the synthetic task.
    pub n_inputs: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for NnPipelineConfig {
    fn default() -> Self {
        Self {
            total_batches: 15_000,
            batch_size: 32,
            n_drifts: 4,
            pretrain_batches: 1_500,
            fine_tune_batches: 450,
            n_classes: 10,
            n_inputs: 64,
            seed: 17,
        }
    }
}

/// Outcome of one pipeline run with one detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NnPipelineOutcome {
    /// Name of the detector driving the adaptation.
    pub detector: String,
    /// Batch indices at which the detector fired.
    pub detections: Vec<usize>,
    /// Scoring of the detections against the label-swap schedule.
    pub outcome: DetectionOutcome,
    /// Total number of fine-tuning batches triggered.
    pub fine_tune_iterations: usize,
    /// Wall-clock seconds of the whole streaming phase (detection +
    /// fine-tuning), the quantity behind the paper's "21 % faster" claim.
    pub wall_seconds: f64,
    /// Mean wall-clock seconds per detector invocation.
    pub seconds_per_detection_call: f64,
    /// Mean batch loss observed right before the end of the run (diagnostic:
    /// the model should have recovered from the last drift).
    pub final_loss: f64,
}

/// Runs the Figure 5 pipeline with the given detector.
pub fn run_nn_pipeline(
    config: &NnPipelineConfig,
    detector: &mut (impl DriftDetector + ?Sized),
) -> NnPipelineOutcome {
    let mut task = PrototypeTask::new(config.n_classes, config.n_inputs, 0.15, config.seed);
    let mut model = Mlp::new(MlpConfig {
        n_inputs: config.n_inputs,
        n_hidden: 64,
        n_classes: config.n_classes,
        learning_rate: 0.05,
        seed: config.seed ^ 0x5555,
    });

    // Pre-training phase (the paper: 100 epochs on CIFAR-10, ~89 % accuracy).
    for _ in 0..config.pretrain_batches {
        let batch = task.sample_batch(config.batch_size);
        model.train_batch(&batch);
    }

    // Drift schedule: a label swap every total/(n_drifts+1) batches.
    let interval = config.total_batches / (config.n_drifts + 1);
    let schedule = DriftSchedule::every(interval, config.total_batches, 1);

    let mut detections = Vec::new();
    let mut fine_tune_remaining = 0usize;
    let mut fine_tune_iterations = 0usize;
    let mut detector_seconds = 0.0f64;
    let mut last_loss = 0.0;

    let start = Instant::now();
    for batch_idx in 0..config.total_batches {
        // Inject the label swaps at the scheduled positions.
        if schedule.positions().contains(&batch_idx) {
            let k = schedule.concept_at(batch_idx);
            // Swap a different pair of classes at every drift.
            let a = (2 * k) % config.n_classes;
            let b = (2 * k + 1) % config.n_classes;
            task.swap_labels(a, b);
        }

        let batch = task.sample_batch(config.batch_size);
        let loss = if fine_tune_remaining > 0 {
            // Fine-tuning: train on the batch (the paper fine-tunes for 3
            // epochs after each detection).
            fine_tune_remaining -= 1;
            fine_tune_iterations += 1;
            model.train_batch(&batch)
        } else {
            model.batch_loss(&batch)
        };
        last_loss = loss;

        let t0 = Instant::now();
        let status = detector.add_element(loss);
        detector_seconds += t0.elapsed().as_secs_f64();
        if status == DriftStatus::Drift {
            detections.push(batch_idx);
            fine_tune_remaining = config.fine_tune_batches;
        }
    }
    let wall_seconds = start.elapsed().as_secs_f64();

    let outcome = score_detections(&schedule, &detections);
    NnPipelineOutcome {
        detector: detector.name().to_string(),
        detections,
        outcome,
        fine_tune_iterations,
        wall_seconds,
        seconds_per_detection_call: detector_seconds / config.total_batches as f64,
        final_loss: last_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optwin_baselines::Adwin;
    use optwin_core::{Optwin, OptwinConfig};

    fn small_config() -> NnPipelineConfig {
        NnPipelineConfig {
            total_batches: 2_500,
            batch_size: 16,
            n_drifts: 4,
            pretrain_batches: 300,
            fine_tune_batches: 80,
            n_classes: 6,
            n_inputs: 32,
            seed: 3,
        }
    }

    #[test]
    fn optwin_detects_label_swaps_with_few_false_positives() {
        let config = small_config();
        let mut optwin = Optwin::new(
            OptwinConfig::builder()
                .robustness(0.5)
                .max_window(1_000)
                .build()
                .unwrap(),
        )
        .unwrap();
        let outcome = run_nn_pipeline(&config, &mut optwin);
        assert!(
            outcome.outcome.true_positives >= 3,
            "expected most swaps detected: {:?}",
            outcome.outcome
        );
        assert!(
            outcome.outcome.false_positives <= 2,
            "too many FPs: {:?}",
            outcome.outcome
        );
        assert!(outcome.fine_tune_iterations > 0);
        assert_eq!(outcome.detector, "OPTWIN");
    }

    #[test]
    fn adwin_also_detects_but_pipeline_structure_is_comparable() {
        let config = small_config();
        let mut adwin = Adwin::with_defaults();
        let outcome = run_nn_pipeline(&config, &mut adwin);
        assert!(outcome.outcome.true_positives >= 2, "{:?}", outcome.outcome);
        assert!(outcome.wall_seconds > 0.0);
        assert!(outcome.seconds_per_detection_call >= 0.0);
    }

    #[test]
    fn fine_tuning_cost_scales_with_detections() {
        let config = small_config();
        let mut optwin = Optwin::new(
            OptwinConfig::builder()
                .robustness(0.5)
                .max_window(1_000)
                .build()
                .unwrap(),
        )
        .unwrap();
        let outcome = run_nn_pipeline(&config, &mut optwin);
        let expected_max = outcome.detections.len() * config.fine_tune_batches;
        assert!(outcome.fine_tune_iterations <= expected_max);
        assert!(
            outcome.fine_tune_iterations
                >= outcome.detections.len().saturating_sub(1) * config.fine_tune_batches.min(10),
        );
    }
}
