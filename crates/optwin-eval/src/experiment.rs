//! The Table 1 experiment configurations and runner.
//!
//! Table 1 of the paper evaluates every detector on seven synthetic
//! configurations, each repeated 30 times with different seeds:
//!
//! 1. gradual binary drift (Bernoulli error stream),
//! 2. gradual non-binary drift (real-valued error stream),
//! 3. sudden binary drift,
//! 4. sudden non-binary drift,
//! 5. sudden STAGGER (Naive Bayes errors),
//! 6. sudden RandomRBF (Naive Bayes errors),
//! 7. sudden AGRAWAL (Naive Bayes errors),
//!
//! reporting the average detection delay, FP count, micro-averaged precision,
//! recall and F1 per detector.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use optwin_baselines::{DetectorKind, DetectorSpec};
use optwin_core::DriftDetector;
use optwin_engine::{EngineBuilder, EngineConfig, EventSink, MemorySink, RebalancePolicy};
use optwin_learners::{NaiveBayes, OnlineLearner};
use optwin_stream::drift::MultiConceptStream;
use optwin_stream::generators::{
    Agrawal, AgrawalFunction, RandomRbf, RandomRbfConfig, Stagger, StaggerConcept,
};
use optwin_stream::{DriftKind, DriftSchedule, ErrorStream, ErrorStreamConfig, InstanceStream};

use crate::factory::DetectorFactory;
use crate::metrics::{score_detections, AggregateMetrics, DetectionOutcome};

/// One of the paper's Table 1 experiment configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Table1Experiment {
    /// Bernoulli error stream with gradual drifts.
    GradualBinary,
    /// Real-valued error stream with gradual drifts.
    GradualNonBinary,
    /// Bernoulli error stream with sudden drifts.
    SuddenBinary,
    /// Real-valued error stream with sudden drifts.
    SuddenNonBinary,
    /// STAGGER stream classified by Naive Bayes, sudden concept changes.
    Stagger,
    /// RandomRBF stream classified by Naive Bayes, sudden concept changes.
    RandomRbf,
    /// AGRAWAL stream classified by Naive Bayes, sudden concept changes.
    Agrawal,
}

impl Table1Experiment {
    /// All seven experiments in the order of Table 1.
    #[must_use]
    pub fn all() -> [Table1Experiment; 7] {
        [
            Table1Experiment::GradualBinary,
            Table1Experiment::GradualNonBinary,
            Table1Experiment::SuddenBinary,
            Table1Experiment::SuddenNonBinary,
            Table1Experiment::Stagger,
            Table1Experiment::RandomRbf,
            Table1Experiment::Agrawal,
        ]
    }

    /// The label used in the paper's table.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Table1Experiment::GradualBinary => "gradual binary drift",
            Table1Experiment::GradualNonBinary => "gradual non-binary drift",
            Table1Experiment::SuddenBinary => "sudden binary drift",
            Table1Experiment::SuddenNonBinary => "sudden non-binary drift",
            Table1Experiment::Stagger => "sudden STAGGER",
            Table1Experiment::RandomRbf => "sudden RANDOM RBF",
            Table1Experiment::Agrawal => "sudden AGRAWAL",
        }
    }

    /// Whether the experiment produces binary error indicators (DDM, EDDM and
    /// ECDD can only run on those; the paper omits them from the non-binary
    /// rows).
    #[must_use]
    pub fn binary_signal(&self) -> bool {
        !matches!(
            self,
            Table1Experiment::GradualNonBinary | Table1Experiment::SuddenNonBinary
        )
    }

    /// The detector line-up that is applicable to this experiment.
    #[must_use]
    pub fn applicable_detectors(&self) -> Vec<DetectorKind> {
        DetectorKind::paper_lineup()
            .into_iter()
            .filter(|kind| self.binary_signal() || !kind.binary_only())
            .collect()
    }

    /// Stream length used by the experiment. The error-stream experiments use
    /// shorter streams than the 100 000-instance classification streams, as
    /// in the paper's MOA "Concept Drift interface" runs.
    #[must_use]
    pub fn default_stream_len(&self) -> usize {
        match self {
            Table1Experiment::GradualBinary
            | Table1Experiment::GradualNonBinary
            | Table1Experiment::SuddenBinary
            | Table1Experiment::SuddenNonBinary => 20_000,
            _ => 100_000,
        }
    }

    /// Default number of drifts injected.
    ///
    /// The error-stream experiments inject a **single** upward drift per run
    /// (error rate 5 % → 25 %, or loss mean 0.2 → 0.5). This matches the
    /// paper's reported 100 % recall for the one-directional detectors (DDM,
    /// ECDD, and OPTWIN in its degradation-only configuration), which could
    /// not all detect a drift that lowers the error rate. The classification
    /// experiments keep the paper's "drift every 20 000 instances" layout
    /// (four drifts per 100 000-instance stream): there every concept switch
    /// degrades the stale classifier, so all drifts are upward in the error
    /// signal.
    #[must_use]
    pub fn default_n_drifts(&self) -> usize {
        match self {
            Table1Experiment::GradualBinary
            | Table1Experiment::GradualNonBinary
            | Table1Experiment::SuddenBinary
            | Table1Experiment::SuddenNonBinary => 1,
            _ => 4,
        }
    }

    /// Builds the error sequence (one value per stream element, as seen by a
    /// drift detector) plus its ground-truth schedule for the given seed and
    /// stream length.
    #[must_use]
    pub fn build_error_sequence(&self, seed: u64, stream_len: usize) -> (Vec<f64>, DriftSchedule) {
        let interval = stream_len / (self.default_n_drifts() + 1);
        match self {
            Table1Experiment::GradualBinary => {
                let schedule = DriftSchedule::every(interval, stream_len, 1_000.min(interval / 2));
                let stream = ErrorStream::new(
                    ErrorStreamConfig::binary(DriftKind::Gradual, schedule.clone()),
                    seed,
                );
                (stream.collect_all(), schedule)
            }
            Table1Experiment::GradualNonBinary => {
                let schedule = DriftSchedule::every(interval, stream_len, 1_000.min(interval / 2));
                let stream = ErrorStream::new(
                    ErrorStreamConfig::real_valued(DriftKind::Gradual, schedule.clone()),
                    seed,
                );
                (stream.collect_all(), schedule)
            }
            Table1Experiment::SuddenBinary => {
                let schedule = DriftSchedule::every(interval, stream_len, 1);
                let stream = ErrorStream::new(
                    ErrorStreamConfig::binary(DriftKind::Sudden, schedule.clone()),
                    seed,
                );
                (stream.collect_all(), schedule)
            }
            Table1Experiment::SuddenNonBinary => {
                let schedule = DriftSchedule::every(interval, stream_len, 1);
                let stream = ErrorStream::new(
                    ErrorStreamConfig::real_valued(DriftKind::Sudden, schedule.clone()),
                    seed,
                );
                (stream.collect_all(), schedule)
            }
            Table1Experiment::Stagger | Table1Experiment::RandomRbf | Table1Experiment::Agrawal => {
                let schedule = DriftSchedule::every(interval, stream_len, 1);
                let mut stream = self.build_classification_stream(seed, &schedule);
                let mut learner = NaiveBayes::new(&stream.schema(), stream.n_classes());
                let mut errors = Vec::with_capacity(stream_len);
                for _ in 0..stream_len {
                    let inst = stream.next_instance();
                    let error = if learner.predict(&inst) == inst.label {
                        0.0
                    } else {
                        1.0
                    };
                    errors.push(error);
                    learner.learn(&inst);
                }
                (errors, schedule)
            }
        }
    }

    /// Builds the classification stream behind the STAGGER / RandomRBF /
    /// AGRAWAL experiments.
    ///
    /// # Panics
    ///
    /// Panics if called for one of the error-stream experiments.
    #[must_use]
    pub fn build_classification_stream(
        &self,
        seed: u64,
        schedule: &DriftSchedule,
    ) -> MultiConceptStream {
        let n_segments = schedule.n_drifts() + 1;
        let concepts: Vec<Box<dyn InstanceStream + Send>> = match self {
            Table1Experiment::Stagger => (0..n_segments)
                .map(|k| {
                    Box::new(Stagger::new(StaggerConcept::cycle(k), seed + k as u64))
                        as Box<dyn InstanceStream + Send>
                })
                .collect(),
            Table1Experiment::RandomRbf => (0..n_segments)
                .map(|k| {
                    let config = RandomRbfConfig {
                        model_seed: seed.wrapping_mul(31).wrapping_add(k as u64),
                        ..RandomRbfConfig::default()
                    };
                    Box::new(RandomRbf::new(config, seed + k as u64))
                        as Box<dyn InstanceStream + Send>
                })
                .collect(),
            Table1Experiment::Agrawal => (0..n_segments)
                .map(|k| {
                    Box::new(Agrawal::new(AgrawalFunction::cycle(k), seed + k as u64))
                        as Box<dyn InstanceStream + Send>
                })
                .collect(),
            _ => panic!("{self:?} is not a classification experiment"),
        };
        MultiConceptStream::new(concepts, schedule.clone(), seed + 1_000)
    }
}

/// The result of running one detector over one generated stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionRun {
    /// Indices at which the detector flagged drifts.
    pub detections: Vec<usize>,
    /// Scoring of those detections against the ground truth.
    pub outcome: DetectionOutcome,
    /// Wall-clock seconds spent inside the detector (`add_element` only).
    pub detector_seconds: f64,
}

/// Runs a detector over a pre-generated error sequence (through its batch
/// path) and scores it.
#[must_use]
pub fn run_detector_on_sequence(
    detector: &mut (impl DriftDetector + ?Sized),
    errors: &[f64],
    schedule: &DriftSchedule,
) -> DetectionRun {
    let start = std::time::Instant::now();
    let detections = detector.add_batch(errors).drift_indices;
    let detector_seconds = start.elapsed().as_secs_f64();
    let outcome = score_detections(schedule, &detections);
    DetectionRun {
        detections,
        outcome,
        detector_seconds,
    }
}

/// Aggregated Table 1 row for one (experiment, detector) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Aggregate {
    /// Experiment the row belongs to.
    pub experiment: Table1Experiment,
    /// Detector label (as printed in the table).
    pub detector: String,
    /// Micro-averaged metrics over the repetitions.
    pub metrics: AggregateMetrics,
    /// Mean wall-clock seconds per run spent inside the detector.
    pub mean_detector_seconds: f64,
}

/// Number of elements per stream fed to the engine per `submit` call by the
/// Table 1 runner. Large enough to amortize fan-out overhead, small enough
/// to keep the record staging buffers cache-friendly.
const TABLE1_BATCH: usize = 4_096;

/// Per-shard queue bound for the Table 1 runner, in records: a few
/// submission chunks of headroom so generation pipelines ahead of detection
/// without the queues growing unbounded.
const TABLE1_QUEUE_CAPACITY: usize = 256 * 1_024;

/// Runs the full (experiment × detector) grid for a number of repetitions,
/// fanning the `detectors × repetitions` runs across engine shards. The
/// paper line-up is resolved to declarative [`DetectorSpec`]s through
/// [`DetectorFactory::spec_for`] and the grid is delegated to
/// [`run_table1_specs`].
///
/// `stream_len` overrides the experiment's default length (useful for tests
/// and quick runs); pass `None` for the paper-scale streams. `shards` picks
/// the engine shard count; `None` uses one shard per available CPU core.
/// With `rebalance` the engine's stream placement is recomputed from
/// observed load at a flush barrier after every repetition's traffic — the
/// `--rebalance` CLI knob. Results are identical for every shard count,
/// with and without rebalancing, and to the historical strictly sequential
/// runner: each run is an isolated detector stream, the batch path is
/// contractually equivalent to element-wise ingestion, and migrations
/// preserve per-stream record order bit-exactly.
///
/// # Panics
///
/// Panics if the engine shuts down mid-run, which only happens when a
/// detector panics on a worker thread.
#[must_use]
pub fn run_table1_experiment_sharded(
    experiment: Table1Experiment,
    factory: &DetectorFactory,
    repetitions: usize,
    stream_len: Option<usize>,
    base_seed: u64,
    shards: Option<usize>,
    rebalance: bool,
) -> Vec<Table1Aggregate> {
    let entries: Vec<(String, DetectorSpec)> = experiment
        .applicable_detectors()
        .into_iter()
        .map(|kind| (kind.label(), factory.spec_for(kind)))
        .collect();
    run_table1_grid(
        experiment,
        &entries,
        repetitions,
        stream_len,
        base_seed,
        shards,
        rebalance,
    )
}

/// Runs a Table 1 experiment for an arbitrary list of detector specs (the
/// `--detector <spec>` CLI path): one engine stream per
/// `(spec, repetition)` run, labelled by each spec's canonical string.
///
/// Binary-only specs (DDM, EDDM, ECDD) are only meaningful on experiments
/// with [`Table1Experiment::binary_signal`]; the caller is expected to
/// filter (as [`Table1Experiment::applicable_detectors`] does for the paper
/// line-up).
///
/// # Panics
///
/// Panics if a spec fails validation or the engine shuts down mid-run.
#[must_use]
pub fn run_table1_specs(
    experiment: Table1Experiment,
    specs: &[DetectorSpec],
    repetitions: usize,
    stream_len: Option<usize>,
    base_seed: u64,
    shards: Option<usize>,
    rebalance: bool,
) -> Vec<Table1Aggregate> {
    let entries: Vec<(String, DetectorSpec)> = specs
        .iter()
        .map(|spec| (spec.to_string(), spec.clone()))
        .collect();
    run_table1_grid(
        experiment,
        &entries,
        repetitions,
        stream_len,
        base_seed,
        shards,
        rebalance,
    )
}

/// Runs a Table 1 experiment for a configured fleet (the `--fleet <file>`
/// CLI path): one engine stream per `(fleet entry, repetition)`, every
/// stream running the detector its config entry names, rows labelled
/// `#<id> <spec id>`.
///
/// Binary-only specs (DDM, EDDM, ECDD) are filtered out on non-binary
/// experiments, matching the paper's treatment of those detectors.
///
/// # Panics
///
/// Panics if a spec fails validation or the engine shuts down mid-run.
#[must_use]
pub fn run_table1_fleet(
    experiment: Table1Experiment,
    fleet: &[(u64, DetectorSpec)],
    repetitions: usize,
    stream_len: Option<usize>,
    base_seed: u64,
    shards: Option<usize>,
    rebalance: bool,
) -> Vec<Table1Aggregate> {
    let entries: Vec<(String, DetectorSpec)> = fleet
        .iter()
        .filter(|(_, spec)| experiment.binary_signal() || !spec.binary_only())
        .map(|(stream, spec)| (format!("#{stream} {}", spec.id()), spec.clone()))
        .collect();
    run_table1_grid(
        experiment,
        &entries,
        repetitions,
        stream_len,
        base_seed,
        shards,
        rebalance,
    )
}

/// The shared spec-driven grid runner behind [`run_table1_experiment_sharded`]
/// and [`run_table1_specs`].
///
/// The runner drives the service-style engine API end to end: an
/// [`EngineBuilder`] spawns one worker per shard with a [`MemorySink`]
/// attached, every `(label, spec)` × repetition run is pre-registered
/// declaratively via [`EngineBuilder::stream_spec`], every record chunk is
/// **pipelined** through [`optwin_engine::EngineHandle::submit`] (bounded
/// queues provide backpressure; no per-chunk barrier), and a single final
/// `flush` drains the queues before the sink is read back.
fn run_table1_grid(
    experiment: Table1Experiment,
    entries: &[(String, DetectorSpec)],
    repetitions: usize,
    stream_len: Option<usize>,
    base_seed: u64,
    shards: Option<usize>,
    rebalance: bool,
) -> Vec<Table1Aggregate> {
    let stream_len = stream_len.unwrap_or_else(|| experiment.default_stream_len());

    // Pre-generate the error sequences once per repetition so that every
    // detector sees exactly the same data (as in MOA).
    let sequences: Vec<(Vec<f64>, DriftSchedule)> = (0..repetitions)
        .map(|r| experiment.build_error_sequence(base_seed + r as u64, stream_len))
        .collect();

    // One engine stream per (spec, repetition) run.
    let n_streams = (entries.len() * repetitions).max(1);
    let shards = shards
        .unwrap_or_else(|| EngineConfig::default().shards)
        .clamp(1, n_streams);
    // Ids are consecutive *within* a repetition (`rep * entries + d`):
    // each submitted chunk carries one repetition's streams, and the engine
    // pins stream `id` to shard `id % shards`, so consecutive ids spread a
    // chunk round-robin over every shard worker. The transposed layout
    // (`d * repetitions + rep`) would stride a chunk's ids by `repetitions`
    // and collapse the fan-out onto `shards / gcd(repetitions, shards)`
    // shards — fully sequential at the paper's 30 repetitions on 6 cores.
    let stream_id = |d: usize, rep: usize| (rep * entries.len() + d) as u64;

    let sink = Arc::new(MemorySink::new());
    let mut builder = EngineBuilder::from_config(EngineConfig::with_shards(shards))
        .queue_capacity(TABLE1_QUEUE_CAPACITY)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>);
    for (d, (_, spec)) in entries.iter().enumerate() {
        for rep in 0..repetitions {
            builder = builder.stream_spec(stream_id(d, rep), spec.clone());
        }
    }
    let handle = builder
        .build()
        .expect("specs are valid and stream ids unique by construction");

    // Pipeline every repetition's sequence to all of its detector streams in
    // chunks; the shard workers detect in parallel while the next chunks are
    // being staged. Without `--rebalance` one flush at the very end is the
    // only barrier; with it, every repetition boundary becomes a flush
    // barrier followed by a load-aware rebalance (which must not change a
    // single detection — verified by `rebalancing_grid_is_deterministic`).
    let mut records: Vec<(u64, f64)> = Vec::with_capacity(TABLE1_BATCH * entries.len());
    for (rep, (errors, _)) in sequences.iter().enumerate() {
        for start in (0..errors.len()).step_by(TABLE1_BATCH) {
            let chunk = &errors[start..(start + TABLE1_BATCH).min(errors.len())];
            records.clear();
            for d in 0..entries.len() {
                let id = stream_id(d, rep);
                records.extend(chunk.iter().map(|&e| (id, e)));
            }
            handle.submit(&records).expect("engine running");
        }
        if rebalance {
            handle.flush().expect("all streams registered");
            handle
                .rebalance(RebalancePolicy::DetectorSeconds)
                .expect("engine running");
        }
    }
    handle.flush().expect("all streams registered");

    // The sink preserves per-stream emission order (increasing seq), so
    // grouping by stream yields sorted detection lists.
    let mut detections: HashMap<u64, Vec<usize>> = HashMap::new();
    for event in sink.drain() {
        detections
            .entry(event.stream)
            .or_default()
            .push(event.seq as usize);
    }
    let stats: HashMap<u64, f64> = handle
        .stream_snapshots()
        .expect("engine running")
        .into_iter()
        .map(|s| (s.stream, s.detector_seconds))
        .collect();
    handle.shutdown().expect("clean shutdown");

    entries
        .iter()
        .enumerate()
        .map(|(d, (label, _))| {
            let mut outcomes = Vec::with_capacity(repetitions);
            let mut total_seconds = 0.0;
            for (rep, (_, schedule)) in sequences.iter().enumerate() {
                let id = stream_id(d, rep);
                let run_detections = detections.remove(&id).unwrap_or_default();
                outcomes.push(score_detections(schedule, &run_detections));
                total_seconds += stats.get(&id).copied().unwrap_or(0.0);
            }
            Table1Aggregate {
                experiment,
                detector: label.clone(),
                metrics: AggregateMetrics::from_outcomes(&outcomes),
                mean_detector_seconds: total_seconds / repetitions.max(1) as f64,
            }
        })
        .collect()
}

/// Runs the full (experiment × detector) grid with the default shard count
/// (one per CPU core). See [`run_table1_experiment_sharded`].
#[must_use]
pub fn run_table1_experiment(
    experiment: Table1Experiment,
    factory: &DetectorFactory,
    repetitions: usize,
    stream_len: Option<usize>,
    base_seed: u64,
) -> Vec<Table1Aggregate> {
    run_table1_experiment_sharded(
        experiment,
        factory,
        repetitions,
        stream_len,
        base_seed,
        None,
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_metadata() {
        assert_eq!(Table1Experiment::all().len(), 7);
        assert!(Table1Experiment::SuddenBinary.binary_signal());
        assert!(!Table1Experiment::SuddenNonBinary.binary_signal());
        assert_eq!(Table1Experiment::Stagger.label(), "sudden STAGGER");
        // Non-binary experiments exclude the binary-only detectors.
        let kinds = Table1Experiment::GradualNonBinary.applicable_detectors();
        assert!(!kinds.contains(&DetectorKind::Ddm));
        assert!(kinds.contains(&DetectorKind::Adwin));
        assert_eq!(Table1Experiment::Agrawal.default_stream_len(), 100_000);
    }

    #[test]
    fn error_sequences_have_expected_shape() {
        for exp in [
            Table1Experiment::SuddenBinary,
            Table1Experiment::GradualBinary,
        ] {
            let (errors, schedule) = exp.build_error_sequence(1, 5_000);
            assert_eq!(errors.len(), 5_000);
            assert_eq!(schedule.n_drifts(), 1);
            assert!(errors.iter().all(|&e| e == 0.0 || e == 1.0));
            // The single drift is an error-rate increase.
            let drift = schedule.positions()[0];
            let before: f64 = errors[..drift].iter().sum::<f64>() / drift as f64;
            let after: f64 = errors[drift..].iter().sum::<f64>() / (errors.len() - drift) as f64;
            assert!(after > before);
        }
        let (errors, _) = Table1Experiment::SuddenNonBinary.build_error_sequence(1, 3_000);
        assert!(errors.iter().any(|&e| e != 0.0 && e != 1.0));
        // The classification experiments keep four drifts.
        let (_, schedule) = Table1Experiment::Stagger.build_error_sequence(1, 10_000);
        assert_eq!(schedule.n_drifts(), 4);
    }

    #[test]
    fn classification_error_sequence_reflects_drifts() {
        // The Naive Bayes error rate must jump right after each concept
        // change — that is what the detectors key on.
        let (errors, schedule) = Table1Experiment::Stagger.build_error_sequence(3, 10_000);
        assert_eq!(errors.len(), 10_000);
        let drift = schedule.positions()[0];
        let before: f64 = errors[drift - 500..drift].iter().sum::<f64>() / 500.0;
        let after: f64 = errors[drift..drift + 500].iter().sum::<f64>() / 500.0;
        assert!(
            after > before + 0.1,
            "error rate should jump at the drift: {before} -> {after}"
        );
    }

    #[test]
    fn run_detector_on_sequence_scores_consistently() {
        let (errors, schedule) = Table1Experiment::SuddenBinary.build_error_sequence(5, 5_000);
        let factory = DetectorFactory::with_optwin_window(1_000);
        let mut detector = factory.build(DetectorKind::OptwinRho(500));
        let run = run_detector_on_sequence(detector.as_mut(), &errors, &schedule);
        assert_eq!(
            run.outcome.true_positives + run.outcome.false_negatives,
            schedule.n_drifts()
        );
        assert!(run.detector_seconds >= 0.0);
    }

    #[test]
    fn sharded_grid_is_deterministic_across_shard_counts() {
        let run = |shards: Option<usize>, rebalance: bool| {
            let factory = DetectorFactory::with_optwin_window(800);
            run_table1_experiment_sharded(
                Table1Experiment::SuddenBinary,
                &factory,
                2,
                Some(4_000),
                7,
                shards,
                rebalance,
            )
        };
        let sequential = run(Some(1), false);
        let parallel = run(Some(4), false);
        let auto = run(None, false);
        let rebalanced = run(Some(4), true);
        for (((a, b), c), d) in sequential.iter().zip(&parallel).zip(&auto).zip(&rebalanced) {
            assert_eq!(a.detector, b.detector);
            assert_eq!(a.metrics, b.metrics, "{}", a.detector);
            assert_eq!(a.metrics, c.metrics, "{}", a.detector);
            // Mid-run rebalancing must not change a single detection.
            assert_eq!(a.metrics, d.metrics, "{}", a.detector);
        }
    }

    #[test]
    fn fleet_runner_matches_spec_runner() {
        // A fleet of one stream per spec reproduces the per-spec rows of
        // `run_table1_specs` exactly (same engine path, same sequences),
        // and binary-only fleet entries are filtered on non-binary
        // experiments.
        let specs: Vec<DetectorSpec> =
            vec!["adwin".parse().unwrap(), "page_hinkley".parse().unwrap()];
        let fleet: Vec<(u64, DetectorSpec)> = specs
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, s)| (i as u64 * 10, s))
            .collect();
        let by_spec = run_table1_specs(
            Table1Experiment::SuddenBinary,
            &specs,
            2,
            Some(3_000),
            13,
            Some(2),
            false,
        );
        let by_fleet = run_table1_fleet(
            Table1Experiment::SuddenBinary,
            &fleet,
            2,
            Some(3_000),
            13,
            Some(2),
            true,
        );
        assert_eq!(by_fleet.len(), by_spec.len());
        for (f, s) in by_fleet.iter().zip(&by_spec) {
            assert_eq!(f.metrics, s.metrics, "{} vs {}", f.detector, s.detector);
        }
        assert_eq!(by_fleet[0].detector, "#0 adwin");
        assert_eq!(by_fleet[1].detector, "#10 page_hinkley");

        let mixed: Vec<(u64, DetectorSpec)> =
            vec![(1, "ddm".parse().unwrap()), (2, "adwin".parse().unwrap())];
        let rows = run_table1_fleet(
            Table1Experiment::SuddenNonBinary,
            &mixed,
            1,
            Some(2_000),
            5,
            Some(2),
            false,
        );
        assert_eq!(rows.len(), 1, "binary-only DDM filtered out");
        assert_eq!(rows[0].detector, "#2 adwin");
    }

    #[test]
    fn spec_runner_matches_lineup_runner_row() {
        // Running a single spec through `run_table1_specs` must reproduce
        // the corresponding line-up row exactly (same streams, same specs,
        // same engine path).
        let factory = DetectorFactory::with_optwin_window(800);
        let lineup = run_table1_experiment_sharded(
            Table1Experiment::SuddenBinary,
            &factory,
            2,
            Some(4_000),
            11,
            Some(2),
            false,
        );
        let spec = factory.spec_for(DetectorKind::OptwinRho(500));
        let custom = run_table1_specs(
            Table1Experiment::SuddenBinary,
            std::slice::from_ref(&spec),
            2,
            Some(4_000),
            11,
            Some(2),
            false,
        );
        assert_eq!(custom.len(), 1);
        assert_eq!(custom[0].detector, spec.to_string());
        let lineup_row = lineup
            .iter()
            .find(|r| r.detector == "OPTWIN rho=0.5")
            .expect("line-up row present");
        assert_eq!(custom[0].metrics, lineup_row.metrics);
    }

    #[test]
    fn small_scale_table1_grid_runs() {
        let factory = DetectorFactory::with_optwin_window(1_000);
        let rows =
            run_table1_experiment(Table1Experiment::SuddenBinary, &factory, 2, Some(5_000), 42);
        // All eight detectors apply to the binary experiment.
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert_eq!(row.metrics.runs, 2);
            assert!(row.metrics.precision >= 0.0 && row.metrics.precision <= 1.0);
            assert!(row.metrics.recall >= 0.0 && row.metrics.recall <= 1.0);
        }
        // OPTWIN rho=0.5 should detect at least half of the drifts on this
        // easy stream.
        let optwin = rows
            .iter()
            .find(|r| r.detector == "OPTWIN rho=0.5")
            .unwrap();
        assert!(
            optwin.metrics.recall >= 0.5,
            "recall = {}",
            optwin.metrics.recall
        );
    }
}
