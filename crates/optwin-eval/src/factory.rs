//! Uniform construction of every detector in the paper's line-up.
//!
//! The experiment runners iterate over [`optwin_baselines::DetectorKind`]
//! values and need fresh detector instances per run. OPTWIN's pre-computed
//! cut tables are interned in the process-wide
//! [`optwin_core::CutTableRegistry`], so every OPTWIN instance with the same
//! (δ, ρ, w_max) — across repetitions, experiments, engine shards and even
//! concurrently running factories — shares one table.

use optwin_baselines::{Adwin, Ddm, DetectorKind, Ecdd, Eddm, Kswin, PageHinkley, Stepd};
use optwin_core::{DriftDetector, Optwin, OptwinConfig};

/// Builds detectors by [`DetectorKind`], with registry-shared OPTWIN cut
/// tables.
#[derive(Debug, Clone)]
pub struct DetectorFactory {
    /// Maximum OPTWIN window size (the paper uses 25 000; tests use smaller
    /// values to keep the quantile tables cheap).
    optwin_w_max: usize,
}

impl DetectorFactory {
    /// Creates a factory that builds OPTWIN instances with the paper's
    /// default `w_max = 25 000`.
    #[must_use]
    pub fn new() -> Self {
        Self::with_optwin_window(25_000)
    }

    /// Creates a factory with a custom OPTWIN `w_max` (useful for tests and
    /// for the ablation benchmarks).
    #[must_use]
    pub fn with_optwin_window(w_max: usize) -> Self {
        Self {
            optwin_w_max: w_max,
        }
    }

    /// The OPTWIN window bound this factory applies.
    #[must_use]
    pub fn optwin_w_max(&self) -> usize {
        self.optwin_w_max
    }

    /// Builds a fresh detector of the requested kind.
    ///
    /// # Panics
    ///
    /// Panics if an OPTWIN configuration cannot be constructed, which only
    /// happens for invalid ρ values encoded in the kind (e.g. 0).
    pub fn build(&mut self, kind: DetectorKind) -> Box<dyn DriftDetector + Send> {
        match kind {
            DetectorKind::OptwinRho(milli) => {
                let rho = f64::from(milli) / 1000.0;
                let config = OptwinConfig::builder()
                    .robustness(rho)
                    .max_window(self.optwin_w_max)
                    .build()
                    .expect("valid OPTWIN configuration");
                Box::new(Optwin::with_shared_table(config).expect("valid OPTWIN configuration"))
            }
            DetectorKind::Adwin => Box::new(Adwin::with_defaults()),
            DetectorKind::Ddm => Box::new(Ddm::with_defaults()),
            DetectorKind::Eddm => Box::new(Eddm::with_defaults()),
            DetectorKind::Stepd => Box::new(Stepd::with_defaults()),
            DetectorKind::Ecdd => Box::new(Ecdd::with_defaults()),
            DetectorKind::PageHinkley => Box::new(PageHinkley::with_defaults()),
            DetectorKind::Kswin => Box::new(Kswin::with_defaults()),
        }
    }
}

impl Default for DetectorFactory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optwin_core::DriftStatus;

    #[test]
    fn builds_every_kind_in_the_lineup() {
        let mut factory = DetectorFactory::with_optwin_window(500);
        for kind in DetectorKind::paper_lineup() {
            let mut detector = factory.build(kind);
            assert_eq!(detector.elements_seen(), 0);
            // Smoke: feed a few elements without panicking.
            for i in 0..50u32 {
                let _ = detector.add_element(f64::from(i % 2));
            }
            assert_eq!(detector.elements_seen(), 50);
        }
        assert_eq!(factory.optwin_w_max(), 500);
    }

    #[test]
    fn extension_detectors_also_build() {
        let mut factory = DetectorFactory::with_optwin_window(200);
        for kind in [DetectorKind::PageHinkley, DetectorKind::Kswin] {
            let mut d = factory.build(kind);
            assert_eq!(d.add_element(0.0), DriftStatus::Stable);
        }
    }

    #[test]
    fn optwin_cut_tables_are_shared_through_the_registry() {
        use std::sync::Arc;
        // Two *separate* factories with the same window produce OPTWIN
        // detectors backed by one table (this used to be a per-factory
        // cache; the registry extends the sharing process-wide).
        let config = OptwinConfig::builder()
            .robustness(0.5)
            .max_window(300)
            .build()
            .unwrap();
        let a = Optwin::with_shared_table(config.clone()).unwrap();
        let mut factory = DetectorFactory::with_optwin_window(300);
        let _ = factory.build(DetectorKind::OptwinRho(500));
        let b = Optwin::with_shared_table(config).unwrap();
        assert!(Arc::ptr_eq(&a.cut_table(), &b.cut_table()));
    }

    #[test]
    fn detector_names_match_labels() {
        let mut factory = DetectorFactory::with_optwin_window(200);
        let d = factory.build(DetectorKind::Adwin);
        assert_eq!(d.name(), "ADWIN");
        let d = factory.build(DetectorKind::OptwinRho(1000));
        assert_eq!(d.name(), "OPTWIN");
    }
}
