//! Uniform construction of every detector in the paper's line-up.
//!
//! The experiment runners iterate over [`optwin_baselines::DetectorKind`]
//! values and need fresh detector instances per run. Each kind maps to a
//! declarative [`DetectorSpec`] via [`DetectorFactory::spec_for`] — the
//! experiment grid is "select detectors by spec" all the way down, and
//! [`DetectorFactory::build`] is a thin wrapper over
//! [`DetectorSpec::build`]. OPTWIN's pre-computed cut tables are interned
//! in the process-wide [`optwin_core::CutTableRegistry`], so every OPTWIN
//! instance with the same (δ, ρ, w_max) — across repetitions, experiments,
//! engine shards and even concurrently running factories — shares one
//! table.

use optwin_baselines::{
    AdwinConfig, DdmConfig, DetectorKind, DetectorSpec, EcddConfig, EddmConfig, KswinConfig,
    PageHinkleyConfig, StepdConfig,
};
use optwin_core::{DriftDetector, OptwinConfig};

/// Builds detectors by [`DetectorKind`], with registry-shared OPTWIN cut
/// tables.
#[derive(Debug, Clone)]
pub struct DetectorFactory {
    /// Maximum OPTWIN window size (the paper uses 25 000; tests use smaller
    /// values to keep the quantile tables cheap).
    optwin_w_max: usize,
}

impl DetectorFactory {
    /// Creates a factory that builds OPTWIN instances with the paper's
    /// default `w_max = 25 000`.
    #[must_use]
    pub fn new() -> Self {
        Self::with_optwin_window(25_000)
    }

    /// Creates a factory with a custom OPTWIN `w_max` (useful for tests and
    /// for the ablation benchmarks).
    #[must_use]
    pub fn with_optwin_window(w_max: usize) -> Self {
        Self {
            optwin_w_max: w_max,
        }
    }

    /// The OPTWIN window bound this factory applies.
    #[must_use]
    pub fn optwin_w_max(&self) -> usize {
        self.optwin_w_max
    }

    /// The declarative [`DetectorSpec`] for the requested kind: reference
    /// defaults for the baselines, and this factory's `w_max` (plus the
    /// kind-encoded ρ) for OPTWIN.
    #[must_use]
    pub fn spec_for(&self, kind: DetectorKind) -> DetectorSpec {
        match kind {
            DetectorKind::OptwinRho(milli) => DetectorSpec::Optwin {
                config: OptwinConfig {
                    rho: f64::from(milli) / 1000.0,
                    w_max: self.optwin_w_max,
                    ..OptwinConfig::default()
                },
            },
            DetectorKind::Adwin => DetectorSpec::Adwin {
                config: AdwinConfig::default(),
            },
            DetectorKind::Ddm => DetectorSpec::Ddm {
                config: DdmConfig::default(),
            },
            DetectorKind::Eddm => DetectorSpec::Eddm {
                config: EddmConfig::default(),
            },
            DetectorKind::Stepd => DetectorSpec::Stepd {
                config: StepdConfig::default(),
            },
            DetectorKind::Ecdd => DetectorSpec::Ecdd {
                config: EcddConfig::default(),
            },
            DetectorKind::PageHinkley => DetectorSpec::PageHinkley {
                config: PageHinkleyConfig::default(),
            },
            DetectorKind::Kswin => DetectorSpec::Kswin {
                config: KswinConfig::default(),
            },
        }
    }

    /// Builds a fresh detector of the requested kind (through
    /// [`DetectorFactory::spec_for`]).
    ///
    /// # Panics
    ///
    /// Panics if the kind encodes an invalid OPTWIN configuration (e.g.
    /// ρ = 0 or a `w_max` below `w_min`).
    pub fn build(&self, kind: DetectorKind) -> Box<dyn DriftDetector + Send> {
        self.spec_for(kind)
            .build()
            .expect("paper line-up specs are valid")
    }
}

impl Default for DetectorFactory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optwin_core::{DriftStatus, Optwin};

    #[test]
    fn builds_every_kind_in_the_lineup() {
        let factory = DetectorFactory::with_optwin_window(500);
        for kind in DetectorKind::paper_lineup() {
            let mut detector = factory.build(kind);
            assert_eq!(detector.elements_seen(), 0);
            // Smoke: feed a few elements without panicking.
            for i in 0..50u32 {
                let _ = detector.add_element(f64::from(i % 2));
            }
            assert_eq!(detector.elements_seen(), 50);
        }
        assert_eq!(factory.optwin_w_max(), 500);
    }

    #[test]
    fn extension_detectors_also_build() {
        let factory = DetectorFactory::with_optwin_window(200);
        for kind in [DetectorKind::PageHinkley, DetectorKind::Kswin] {
            let mut d = factory.build(kind);
            assert_eq!(d.add_element(0.0), DriftStatus::Stable);
        }
    }

    #[test]
    fn optwin_cut_tables_are_shared_through_the_registry() {
        use std::sync::Arc;
        // Two *separate* factories with the same window produce OPTWIN
        // detectors backed by one table (this used to be a per-factory
        // cache; the registry extends the sharing process-wide).
        let config = OptwinConfig::builder()
            .robustness(0.5)
            .max_window(300)
            .build()
            .unwrap();
        let a = Optwin::with_shared_table(config.clone()).unwrap();
        let factory = DetectorFactory::with_optwin_window(300);
        let _ = factory.build(DetectorKind::OptwinRho(500));
        let b = Optwin::with_shared_table(config).unwrap();
        assert!(Arc::ptr_eq(&a.cut_table(), &b.cut_table()));
    }

    #[test]
    fn detector_names_match_labels() {
        let factory = DetectorFactory::with_optwin_window(200);
        let d = factory.build(DetectorKind::Adwin);
        assert_eq!(d.name(), "ADWIN");
        let d = factory.build(DetectorKind::OptwinRho(1000));
        assert_eq!(d.name(), "OPTWIN");
    }

    #[test]
    fn spec_for_encodes_kind_parameters() {
        let factory = DetectorFactory::with_optwin_window(777);
        let spec = factory.spec_for(DetectorKind::OptwinRho(250));
        let DetectorSpec::Optwin { config } = &spec else {
            panic!("wrong variant")
        };
        assert_eq!(config.rho, 0.25);
        assert_eq!(config.w_max, 777);
        // The spec string round-trips, so experiment rows are reproducible
        // from their printed spec alone.
        let parsed: DetectorSpec = spec.to_string().parse().unwrap();
        assert_eq!(parsed, spec);
        // Every line-up kind maps to a valid spec.
        for kind in DetectorKind::paper_lineup() {
            factory.spec_for(kind).validate().expect("valid spec");
        }
    }
}
