//! The `driftbench` grid runner: detection quality as a regression test.
//!
//! Table 1 scores detectors on the paper's own abrupt/gradual error streams.
//! This module widens the evaluation to the full
//! [`ScenarioKind`] catalogue — including the
//! adversarial workloads where the *correct* behaviour is to stay silent
//! (seasonal oscillation, heavy-tailed noise) — and runs every scenario ×
//! detector × seed cell through the sharded engine via the Zipf-skewed
//! [`optwin_engine::replay()`] driver, so the benchmark exercises the exact
//! production ingestion path rather than a bespoke loop.
//!
//! The output is a [`DriftbenchReport`]: one [`DriftbenchCell`] per
//! applicable (scenario, detector) pair carrying micro-averaged
//! [`AggregateMetrics`] over the seeds plus a normalised false-positive rate
//! (`fp_per_10k`), and a per-detector roll-up across all scenarios. The
//! report serialises to JSON; `tests/driftbench_quality.rs` pins a
//! scaled-down grid against a checked-in golden file with tolerance bands,
//! and the `driftbench` binary in `crates/bench` emits the full grid.
//!
//! Binary-only detectors (DDM / EDDM / ECDD — see
//! [`DetectorSpec::binary_only`]) are skipped on the real-valued scenarios
//! (`variance`, `heavy-tail`), mirroring how Table 1 restricts them to the
//! binary error streams.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use optwin_baselines::DetectorSpec;
use optwin_engine::{replay, EngineBuilder, EngineConfig, EventSink, MemorySink, ReplayConfig};
use optwin_stream::{GeneratedScenario, ScenarioKind};

use crate::metrics::{score_detections, AggregateMetrics, DetectionOutcome};

/// Elements staged per engine queue slot before backpressure kicks in.
const DRIFTBENCH_QUEUE_CAPACITY: usize = 256 * 1_024;

/// Configuration of one driftbench run: which scenarios, which detectors,
/// how many seeded repetitions, and how the replay traffic is shaped.
#[derive(Debug, Clone)]
pub struct DriftbenchConfig {
    /// Scenarios to run (usually [`ScenarioKind::all`]).
    pub scenarios: Vec<ScenarioKind>,
    /// `(label, spec)` detector line-up (usually [`default_lineup`]).
    pub detectors: Vec<(String, DetectorSpec)>,
    /// Number of seeded repetitions per cell.
    pub seeds: usize,
    /// Elements per generated stream.
    pub stream_len: usize,
    /// Base RNG seed; repetition `r` uses `base_seed + r`.
    pub base_seed: u64,
    /// Engine shard count (`None` → one per CPU core, clamped to the stream
    /// count).
    pub shards: Option<usize>,
    /// Zipf exponent of the replay traffic mix (see
    /// [`ReplayConfig::zipf_exponent`]).
    pub zipf_exponent: f64,
    /// Records per replay burst.
    pub burst: usize,
}

impl DriftbenchConfig {
    /// The full grid: every scenario, the [`default_lineup`], and the given
    /// repetition count / stream length.
    #[must_use]
    pub fn full(seeds: usize, stream_len: usize, optwin_w_max: usize) -> Self {
        Self {
            scenarios: ScenarioKind::all().to_vec(),
            detectors: default_lineup(optwin_w_max),
            seeds,
            stream_len,
            base_seed: 1_000,
            shards: None,
            zipf_exponent: 1.1,
            burst: 256,
        }
    }
}

/// The canonical driftbench detector line-up: every one of the 8
/// [`DetectorSpec`] kinds at its reference parameters (OPTWIN's window cap
/// is the one free knob, because it must scale with the stream length) plus
/// two representative composites — a cheap-first cascade and a 2-of-3
/// ensemble.
///
/// # Panics
///
/// Never — the spec strings are fixed and valid by construction.
#[must_use]
pub fn default_lineup(optwin_w_max: usize) -> Vec<(String, DetectorSpec)> {
    let optwin = format!("optwin:rho=0.5,w_max={optwin_w_max}");
    let specs = [
        ("optwin", optwin.clone()),
        ("adwin", "adwin".to_string()),
        ("ddm", "ddm".to_string()),
        ("eddm", "eddm".to_string()),
        ("stepd", "stepd".to_string()),
        ("ecdd", "ecdd".to_string()),
        ("page_hinkley", "page_hinkley".to_string()),
        ("kswin", "kswin".to_string()),
        (
            "cascade_ph_optwin",
            format!("cascade:guard=page_hinkley,confirm=[{optwin}]"),
        ),
        (
            "ensemble_2of3",
            "ensemble:vote=2,members=[ddm|ecdd|page_hinkley]".to_string(),
        ),
    ];
    specs
        .into_iter()
        .map(|(label, spec)| {
            (
                label.to_string(),
                spec.parse::<DetectorSpec>()
                    .expect("line-up spec strings are valid"),
            )
        })
        .collect()
}

/// One (scenario, detector) cell of the grid, micro-averaged over the seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftbenchCell {
    /// Scenario id (`"abrupt"`, `"seasonal"`, … — or `"all"` in the
    /// per-detector roll-up).
    pub scenario: String,
    /// Detector label from the line-up.
    pub detector: String,
    /// The spec string the detector was built from.
    pub spec: String,
    /// Micro-averaged detection metrics over the seeds.
    pub metrics: AggregateMetrics,
    /// False positives per 10 000 stream elements — the scale-free FP rate
    /// (comparable across stream lengths and seed counts).
    pub fp_per_10k: f64,
}

/// The full grid result, JSON-serialisable for the golden quality suite and
/// the `driftbench` binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftbenchReport {
    /// Elements per generated stream.
    pub stream_len: usize,
    /// Seeded repetitions per cell.
    pub seeds: usize,
    /// Zipf exponent of the replay traffic.
    pub zipf_exponent: f64,
    /// Total records the replay driver pushed through the engine.
    pub replay_records: u64,
    /// Total bursts the replay driver submitted.
    pub replay_bursts: u64,
    /// One cell per applicable (scenario, detector) pair, scenario-major in
    /// line-up order.
    pub cells: Vec<DriftbenchCell>,
    /// Per-detector roll-up across every scenario it ran on
    /// (`scenario == "all"`).
    pub by_detector: Vec<DriftbenchCell>,
}

impl DriftbenchReport {
    /// Looks up the cell for a `(scenario id, detector label)` pair.
    #[must_use]
    pub fn cell(&self, scenario: &str, detector: &str) -> Option<&DriftbenchCell> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.detector == detector)
    }
}

/// Runs the scenario × detector × seed grid through the sharded engine.
///
/// Every applicable cell becomes `seeds` engine streams (detectors skip
/// scenarios they cannot read — see [`DetectorSpec::binary_only`]); all
/// streams are pre-registered declaratively, fed concurrently by the
/// Zipf-skewed [`replay()`] driver, flushed once, and scored with
/// [`score_detections`] against each scenario's ground-truth schedule. The
/// whole pipeline is seeded, so repeated calls with the same config return
/// bit-identical reports.
///
/// # Panics
///
/// Panics if the config is degenerate (no scenarios, no detectors, zero
/// seeds or an empty stream) or if a spec fails to build — both are
/// programming errors in the caller's line-up, not data-dependent failures.
#[must_use]
pub fn run_driftbench(config: &DriftbenchConfig) -> DriftbenchReport {
    assert!(!config.scenarios.is_empty(), "no scenarios configured");
    assert!(!config.detectors.is_empty(), "no detectors configured");
    assert!(config.seeds > 0, "need at least one seed");
    assert!(config.stream_len > 0, "need a non-empty stream");

    // Applicable (scenario index, detector index) cells, scenario-major.
    let cells: Vec<(usize, usize)> = config
        .scenarios
        .iter()
        .enumerate()
        .flat_map(|(s, scenario)| {
            config
                .detectors
                .iter()
                .enumerate()
                .filter(move |(_, (_, spec))| scenario.binary_signal() || !spec.binary_only())
                .map(move |(d, _)| (s, d))
        })
        .collect();

    // Generate every scenario × seed sequence once; all detectors on a cell
    // see exactly the same data (as in MOA).
    let data: Vec<Vec<GeneratedScenario>> = config
        .scenarios
        .iter()
        .map(|scenario| {
            (0..config.seeds)
                .map(|r| scenario.generate(config.stream_len, config.base_seed + r as u64))
                .collect()
        })
        .collect();

    // One engine stream per (cell, seed); consecutive ids spread round-robin
    // over the shard workers.
    let n_streams = cells.len() * config.seeds;
    let shards = config
        .shards
        .unwrap_or_else(|| EngineConfig::default().shards)
        .clamp(1, n_streams);
    let stream_id = |cell: usize, seed: usize| (cell * config.seeds + seed) as u64;

    let sink = Arc::new(MemorySink::new());
    let mut builder = EngineBuilder::from_config(EngineConfig::with_shards(shards))
        .queue_capacity(DRIFTBENCH_QUEUE_CAPACITY)
        .sink(Arc::clone(&sink) as Arc<dyn EventSink>);
    for (cell, &(_, d)) in cells.iter().enumerate() {
        for seed in 0..config.seeds {
            builder = builder.stream_spec(stream_id(cell, seed), config.detectors[d].1.clone());
        }
    }
    let handle = builder
        .build()
        .expect("specs are valid and stream ids unique by construction");

    // Replay the whole fleet as Zipf-skewed production traffic; `replay`
    // leaves records in flight, so one flush barrier drains everything
    // before the sink is read back.
    let data_ref = &data;
    let sources: Vec<(u64, &[f64])> = cells
        .iter()
        .enumerate()
        .flat_map(|(cell, &(s, _))| {
            (0..config.seeds)
                .map(move |seed| (stream_id(cell, seed), &data_ref[s][seed].values[..]))
        })
        .collect();
    let replay_config = ReplayConfig {
        zipf_exponent: config.zipf_exponent,
        burst: config.burst,
        seed: config.base_seed,
    };
    let report = replay(&handle, &sources, &replay_config).expect("engine running");
    handle.flush().expect("all streams registered");

    let mut detections: HashMap<u64, Vec<usize>> = HashMap::new();
    for event in sink.drain() {
        detections
            .entry(event.stream)
            .or_default()
            .push(event.seq as usize);
    }
    handle.shutdown().expect("clean shutdown");

    // Score every cell over its seeds, and accumulate the per-detector
    // roll-up alongside.
    let mut per_detector: Vec<Vec<DetectionOutcome>> = vec![Vec::new(); config.detectors.len()];
    let out_cells: Vec<DriftbenchCell> = cells
        .iter()
        .enumerate()
        .map(|(cell, &(s, d))| {
            let outcomes: Vec<DetectionOutcome> = (0..config.seeds)
                .map(|seed| {
                    let run = detections
                        .remove(&stream_id(cell, seed))
                        .unwrap_or_default();
                    score_detections(&data[s][seed].schedule, &run)
                })
                .collect();
            per_detector[d].extend(outcomes.iter().cloned());
            let metrics = AggregateMetrics::from_outcomes(&outcomes);
            DriftbenchCell {
                scenario: config.scenarios[s].id().to_string(),
                detector: config.detectors[d].0.clone(),
                spec: config.detectors[d].1.to_string(),
                fp_per_10k: fp_per_10k(metrics.false_positives, config.seeds * config.stream_len),
                metrics,
            }
        })
        .collect();

    let by_detector = config
        .detectors
        .iter()
        .enumerate()
        .filter(|(d, _)| !per_detector[*d].is_empty())
        .map(|(d, (label, spec))| {
            let metrics = AggregateMetrics::from_outcomes(&per_detector[d]);
            DriftbenchCell {
                scenario: "all".to_string(),
                detector: label.clone(),
                spec: spec.to_string(),
                fp_per_10k: fp_per_10k(
                    metrics.false_positives,
                    per_detector[d].len() * config.stream_len,
                ),
                metrics,
            }
        })
        .collect();

    DriftbenchReport {
        stream_len: config.stream_len,
        seeds: config.seeds,
        zipf_exponent: config.zipf_exponent,
        replay_records: report.records,
        replay_bursts: report.bursts,
        cells: out_cells,
        by_detector,
    }
}

fn fp_per_10k(false_positives: usize, elements: usize) -> f64 {
    false_positives as f64 * 10_000.0 / elements.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DriftbenchConfig {
        DriftbenchConfig {
            scenarios: vec![ScenarioKind::AbruptMeanShift, ScenarioKind::VarianceOnly],
            detectors: default_lineup(500)
                .into_iter()
                .filter(|(label, _)| matches!(label.as_str(), "optwin" | "ddm" | "page_hinkley"))
                .collect(),
            seeds: 2,
            stream_len: 3_000,
            base_seed: 7,
            shards: Some(2),
            zipf_exponent: 1.1,
            burst: 128,
        }
    }

    #[test]
    fn grid_covers_applicable_cells_only() {
        let report = run_driftbench(&small_config());
        // abrupt (binary) takes all 3 detectors; variance (real-valued)
        // drops the binary-only DDM.
        assert_eq!(report.cells.len(), 5);
        assert!(report.cell("abrupt", "ddm").is_some());
        assert!(report.cell("variance", "ddm").is_none());
        assert!(report.cell("variance", "optwin").is_some());
        for cell in &report.cells {
            assert_eq!(cell.metrics.runs, 2, "{cell:?}");
        }
        // The roll-up has one row per detector that ran anywhere.
        assert_eq!(report.by_detector.len(), 3);
    }

    #[test]
    fn scoring_invariants_hold_per_cell() {
        let config = small_config();
        let report = run_driftbench(&config);
        for cell in &report.cells {
            let scenario: ScenarioKind = cell.scenario.parse().expect("known id");
            let n_drifts = scenario.n_drifts(config.stream_len);
            assert_eq!(
                cell.metrics.true_positives + cell.metrics.false_negatives,
                n_drifts * config.seeds,
                "TP+FN must partition the true drifts in {cell:?}"
            );
        }
    }

    #[test]
    fn report_is_deterministic() {
        let config = small_config();
        let a = run_driftbench(&config);
        let b = run_driftbench(&config);
        assert_eq!(a, b);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = run_driftbench(&small_config());
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        let back: DriftbenchReport = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(report, back);
    }

    #[test]
    fn default_lineup_covers_every_kind_and_two_composites() {
        let lineup = default_lineup(1_000);
        assert_eq!(lineup.len(), 10);
        let ids: Vec<&str> = lineup.iter().map(|(_, s)| s.id()).collect();
        for kind in optwin_baselines::DETECTOR_IDS {
            assert!(ids.contains(&kind), "missing {kind}");
        }
        assert!(ids.contains(&"cascade"));
        assert!(ids.contains(&"ensemble"));
    }
}
