//! Drift-detection metrics.
//!
//! The paper scores detectors by their true-positive, false-positive and
//! false-negative counts (and the precision / recall / F1 derived from them)
//! plus the detection delay. The matching rule implemented here follows the
//! common MOA evaluation convention the paper relies on:
//!
//! * the stream is divided into segments by the true drift positions — a
//!   drift's segment opens at [`DriftSchedule::transition_start`], i.e. the
//!   drift position itself for sudden drifts (`width <= 1`) and `width / 2`
//!   elements **before** the recorded start for gradual drifts, because the
//!   generators already sample the new concept inside the leading half of
//!   the sigmoid transition;
//! * the **earliest** detection (by stream index — the input order of
//!   `detections` is irrelevant, the scorer sorts internally) inside a
//!   drift's segment is that drift's true positive, and its distance from
//!   the drift *start position* is the detection delay — clamped at 0 for
//!   detections fired inside the transition window but before the recorded
//!   start;
//! * every additional detection in the same segment — and any detection
//!   before the first drift's transition window — is a false positive;
//! * a true drift whose segment contains no detection is a false negative.
//!
//! Every detection is attributed to exactly one drift segment (or to the
//! pre-drift prefix), so `TP + FN == n_drifts` and
//! `TP + FP == detections.len()` hold unconditionally — the invariants the
//! `driftbench_quality` proptest pins down.

use serde::{Deserialize, Serialize};

use optwin_stream::DriftSchedule;

/// Outcome of scoring one detector run against a ground-truth schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionOutcome {
    /// Number of true drifts that were detected.
    pub true_positives: usize,
    /// Number of spurious detections.
    pub false_positives: usize,
    /// Number of missed drifts.
    pub false_negatives: usize,
    /// Detection delay (in elements) of every true positive.
    pub delays: Vec<f64>,
    /// Mean detection delay, if any drift was detected.
    pub mean_delay: Option<f64>,
}

impl DetectionOutcome {
    /// Precision `TP / (TP + FP)`; 1.0 when there are no detections at all
    /// (the conventional value when the denominator is zero).
    #[must_use]
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall `TP / (TP + FN)`; 1.0 when there were no true drifts.
    #[must_use]
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall).
    #[must_use]
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Scores a list of detection indices against the ground-truth schedule.
///
/// `detections` may arrive in any order (e.g. merged from multiple engine
/// shards or sinks): the scorer sorts a copy internally, so the outcome is
/// invariant under permutation of the input. For gradual schedules a
/// detection inside the transition window — from
/// [`DriftSchedule::transition_start`] up to the next drift's transition
/// start — is credited to that drift, with the delay measured from the
/// recorded drift start and clamped at 0.
#[must_use]
pub fn score_detections(schedule: &DriftSchedule, detections: &[usize]) -> DetectionOutcome {
    let positions = schedule.positions();
    let mut sorted: Vec<usize> = detections.to_vec();
    sorted.sort_unstable();

    let mut true_positives = 0usize;
    let mut false_positives = 0usize;
    let mut false_negatives = 0usize;
    let mut delays = Vec::new();

    // Detections before the first drift's transition window are false
    // positives.
    let first_window = if positions.is_empty() {
        usize::MAX
    } else {
        schedule.transition_start(0)
    };
    false_positives += sorted.iter().filter(|&&d| d < first_window).count();

    for (k, &drift_pos) in positions.iter().enumerate() {
        let window_start = schedule.transition_start(k);
        // A drift's candidate window closes where the next drift's opens;
        // the last segment runs to the end (stray indices past the stream
        // length still score as FPs there rather than vanishing, keeping
        // TP + FP == detections.len()).
        let segment_end = if k + 1 < positions.len() {
            schedule.transition_start(k + 1)
        } else {
            usize::MAX
        };
        let mut in_segment = sorted
            .iter()
            .filter(|&&d| d >= window_start && d < segment_end);
        match in_segment.next() {
            Some(&first) => {
                true_positives += 1;
                delays.push(first.saturating_sub(drift_pos) as f64);
                false_positives += in_segment.count();
            }
            None => {
                false_negatives += 1;
            }
        }
    }

    let mean_delay = if delays.is_empty() {
        None
    } else {
        Some(delays.iter().sum::<f64>() / delays.len() as f64)
    };
    DetectionOutcome {
        true_positives,
        false_positives,
        false_negatives,
        delays,
        mean_delay,
    }
}

/// Micro-averaged metrics over repeated runs (the paper repeats every
/// experiment 30 times and reports micro-averaged precision / recall / F1,
/// the average FP count per run and the average delay).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateMetrics {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Total true positives across runs.
    pub true_positives: usize,
    /// Total false positives across runs.
    pub false_positives: usize,
    /// Total false negatives across runs.
    pub false_negatives: usize,
    /// Average number of false positives per run (the paper's "FP" column).
    pub mean_false_positives_per_run: f64,
    /// Mean detection delay over all true positives of all runs.
    pub mean_delay: Option<f64>,
    /// Micro-averaged precision.
    pub precision: f64,
    /// Micro-averaged recall.
    pub recall: f64,
    /// Micro-averaged F1 score.
    pub f1: f64,
}

impl AggregateMetrics {
    /// Aggregates the outcomes of repeated runs.
    #[must_use]
    pub fn from_outcomes(outcomes: &[DetectionOutcome]) -> Self {
        let runs = outcomes.len();
        let tp: usize = outcomes.iter().map(|o| o.true_positives).sum();
        let fp: usize = outcomes.iter().map(|o| o.false_positives).sum();
        let fn_: usize = outcomes.iter().map(|o| o.false_negatives).sum();
        let all_delays: Vec<f64> = outcomes.iter().flat_map(|o| o.delays.clone()).collect();
        let mean_delay = if all_delays.is_empty() {
            None
        } else {
            Some(all_delays.iter().sum::<f64>() / all_delays.len() as f64)
        };
        let precision = if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            1.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            runs,
            true_positives: tp,
            false_positives: fp,
            false_negatives: fn_,
            mean_false_positives_per_run: if runs == 0 {
                0.0
            } else {
                fp as f64 / runs as f64
            },
            mean_delay,
            precision,
            recall,
            f1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> DriftSchedule {
        DriftSchedule::new(vec![1_000, 2_000, 3_000], 1, 4_000)
    }

    #[test]
    fn perfect_detection() {
        let o = score_detections(&schedule(), &[1_010, 2_005, 3_100]);
        assert_eq!(o.true_positives, 3);
        assert_eq!(o.false_positives, 0);
        assert_eq!(o.false_negatives, 0);
        assert_eq!(o.precision(), 1.0);
        assert_eq!(o.recall(), 1.0);
        assert_eq!(o.f1(), 1.0);
        assert!((o.mean_delay.unwrap() - (10.0 + 5.0 + 100.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn missed_drifts_are_false_negatives() {
        let o = score_detections(&schedule(), &[1_010]);
        assert_eq!(o.true_positives, 1);
        assert_eq!(o.false_negatives, 2);
        assert_eq!(o.false_positives, 0);
        assert!((o.recall() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(o.precision(), 1.0);
    }

    #[test]
    fn extra_detections_are_false_positives() {
        let o = score_detections(&schedule(), &[500, 1_010, 1_500, 1_700, 2_005, 3_001]);
        assert_eq!(o.true_positives, 3);
        // 500 (before any drift), 1500 and 1700 (after the TP of segment 1).
        assert_eq!(o.false_positives, 3);
        assert_eq!(o.false_negatives, 0);
        assert!((o.precision() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_detections_at_all() {
        let o = score_detections(&schedule(), &[]);
        assert_eq!(o.true_positives, 0);
        assert_eq!(o.false_negatives, 3);
        assert_eq!(o.precision(), 1.0);
        assert_eq!(o.recall(), 0.0);
        assert_eq!(o.f1(), 0.0);
        assert_eq!(o.mean_delay, None);
    }

    #[test]
    fn stationary_stream_all_detections_are_fp() {
        let s = DriftSchedule::stationary(5_000);
        let o = score_detections(&s, &[100, 3_000]);
        assert_eq!(o.true_positives, 0);
        assert_eq!(o.false_positives, 2);
        assert_eq!(o.false_negatives, 0);
        assert_eq!(o.recall(), 1.0);
        assert_eq!(o.precision(), 0.0);
    }

    #[test]
    fn aggregation_micro_averages() {
        let a = score_detections(&schedule(), &[1_010, 2_005, 3_100]);
        let b = score_detections(&schedule(), &[500, 1_100]);
        let agg = AggregateMetrics::from_outcomes(&[a, b]);
        assert_eq!(agg.runs, 2);
        assert_eq!(agg.true_positives, 4);
        assert_eq!(agg.false_positives, 1);
        assert_eq!(agg.false_negatives, 2);
        assert!((agg.mean_false_positives_per_run - 0.5).abs() < 1e-12);
        assert!((agg.precision - 4.0 / 5.0).abs() < 1e-12);
        assert!((agg.recall - 4.0 / 6.0).abs() < 1e-12);
        let expected_f1 = 2.0 * (0.8 * (4.0 / 6.0)) / (0.8 + 4.0 / 6.0);
        assert!((agg.f1 - expected_f1).abs() < 1e-12);
        // Mean delay over all TPs: (10 + 5 + 100 + 100) / 4
        assert!((agg.mean_delay.unwrap() - 53.75).abs() < 1e-12);
    }

    #[test]
    fn aggregation_of_empty_list() {
        let agg = AggregateMetrics::from_outcomes(&[]);
        assert_eq!(agg.runs, 0);
        assert_eq!(agg.precision, 1.0);
        assert_eq!(agg.recall, 1.0);
        assert_eq!(agg.mean_delay, None);
    }

    #[test]
    fn serialization_round_trip() {
        let o = score_detections(&schedule(), &[1_010, 2_600]);
        let json = serde_json::to_string(&o).unwrap();
        let back: DetectionOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(o, back);
    }

    #[test]
    fn scoring_is_permutation_invariant() {
        // Detections merged from multiple engine shards/sinks arrive in
        // arbitrary order; the outcome must not depend on list order. The
        // old scorer credited whichever detection appeared first in *list*
        // order as the TP, corrupting the delay and the FP split.
        let dets = [3_100, 1_700, 2_005, 500, 1_010, 1_500];
        let reference = score_detections(&schedule(), &[500, 1_010, 1_500, 1_700, 2_005, 3_100]);
        let shuffled = score_detections(&schedule(), &dets);
        assert_eq!(shuffled, reference);
        assert_eq!(shuffled.true_positives, 3);
        assert_eq!(shuffled.false_positives, 3);
        // The delay of segment 1 must come from its *earliest* detection
        // (1 010), not from 1 700 which precedes it in list order.
        assert!((shuffled.delays[0] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn unsorted_reversed_input_matches_sorted() {
        let mut dets = vec![1_010, 1_500, 2_005, 3_100];
        let sorted = score_detections(&schedule(), &dets);
        dets.reverse();
        assert_eq!(score_detections(&schedule(), &dets), sorted);
    }

    #[test]
    fn sudden_width_one_has_no_transition_window() {
        // Boundary test at width 1: one element before the drift is still a
        // false positive, the drift position itself is a zero-delay TP.
        let s = DriftSchedule::new(vec![1_000], 1, 2_000);
        let o = score_detections(&s, &[999]);
        assert_eq!(
            (o.true_positives, o.false_positives, o.false_negatives),
            (0, 1, 1)
        );
        let o = score_detections(&s, &[1_000]);
        assert_eq!(
            (o.true_positives, o.false_positives, o.false_negatives),
            (1, 0, 0)
        );
        assert_eq!(o.delays, vec![0.0]);
    }

    #[test]
    fn gradual_transition_window_credits_early_detections() {
        // Boundary test at width 1000: the transition window opens 500
        // elements before the recorded drift start (the generators already
        // sample the new concept there), so a detection at 1 500 is a TP
        // with delay clamped to 0 — the old scorer counted it as an FP and
        // the drift as an FN.
        let s = DriftSchedule::new(vec![2_000], 1_000, 4_000);
        let o = score_detections(&s, &[1_500]);
        assert_eq!(
            (o.true_positives, o.false_positives, o.false_negatives),
            (1, 0, 0)
        );
        assert_eq!(o.delays, vec![0.0]);
        // One element before the window opens: still a false positive.
        let o = score_detections(&s, &[1_499]);
        assert_eq!(
            (o.true_positives, o.false_positives, o.false_negatives),
            (0, 1, 1)
        );
        // Past the drift start the delay is measured from the start.
        let o = score_detections(&s, &[2_300]);
        assert_eq!(o.delays, vec![300.0]);
        // Earliest in-window detection wins; later ones are FPs even when
        // they sit closer to the recorded start.
        let o = score_detections(&s, &[2_300, 1_600]);
        assert_eq!((o.true_positives, o.false_positives), (1, 1));
        assert_eq!(o.delays, vec![0.0]);
    }

    #[test]
    fn gradual_windows_partition_multi_drift_schedules() {
        // With two gradual drifts the first segment closes where the second
        // drift's transition window opens: a detection at 2 600 belongs to
        // drift 1 (delay clamped to 0), not to drift 0's segment.
        let s = DriftSchedule::new(vec![1_000, 3_000], 800, 5_000);
        let o = score_detections(&s, &[1_050, 2_600]);
        assert_eq!(
            (o.true_positives, o.false_positives, o.false_negatives),
            (2, 0, 0)
        );
        assert_eq!(o.delays, vec![50.0, 0.0]);
    }
}
