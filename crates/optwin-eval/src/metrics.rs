//! Drift-detection metrics.
//!
//! The paper scores detectors by their true-positive, false-positive and
//! false-negative counts (and the precision / recall / F1 derived from them)
//! plus the detection delay. The matching rule implemented here follows the
//! common MOA evaluation convention the paper relies on:
//!
//! * the stream is divided into segments by the true drift positions;
//! * the **first** detection inside the segment that starts at a true drift
//!   is that drift's true positive, and its distance from the drift position
//!   is the detection delay;
//! * every additional detection in the same segment — and any detection
//!   before the first true drift — is a false positive;
//! * a true drift whose segment contains no detection is a false negative.

use serde::{Deserialize, Serialize};

use optwin_stream::DriftSchedule;

/// Outcome of scoring one detector run against a ground-truth schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionOutcome {
    /// Number of true drifts that were detected.
    pub true_positives: usize,
    /// Number of spurious detections.
    pub false_positives: usize,
    /// Number of missed drifts.
    pub false_negatives: usize,
    /// Detection delay (in elements) of every true positive.
    pub delays: Vec<f64>,
    /// Mean detection delay, if any drift was detected.
    pub mean_delay: Option<f64>,
}

impl DetectionOutcome {
    /// Precision `TP / (TP + FP)`; 1.0 when there are no detections at all
    /// (the conventional value when the denominator is zero).
    #[must_use]
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall `TP / (TP + FN)`; 1.0 when there were no true drifts.
    #[must_use]
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall).
    #[must_use]
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Scores a list of detection indices against the ground-truth schedule.
#[must_use]
pub fn score_detections(schedule: &DriftSchedule, detections: &[usize]) -> DetectionOutcome {
    let positions = schedule.positions();
    let mut true_positives = 0usize;
    let mut false_positives = 0usize;
    let mut false_negatives = 0usize;
    let mut delays = Vec::new();

    // Detections before the first drift are false positives.
    let first_drift = positions.first().copied().unwrap_or(usize::MAX);
    false_positives += detections.iter().filter(|&&d| d < first_drift).count();

    for (k, &drift_pos) in positions.iter().enumerate() {
        let segment_end = positions
            .get(k + 1)
            .copied()
            .unwrap_or(schedule.stream_len());
        let mut in_segment = detections
            .iter()
            .filter(|&&d| d >= drift_pos && d < segment_end);
        match in_segment.next() {
            Some(&first) => {
                true_positives += 1;
                delays.push((first - drift_pos) as f64);
                false_positives += in_segment.count();
            }
            None => {
                false_negatives += 1;
            }
        }
    }

    let mean_delay = if delays.is_empty() {
        None
    } else {
        Some(delays.iter().sum::<f64>() / delays.len() as f64)
    };
    DetectionOutcome {
        true_positives,
        false_positives,
        false_negatives,
        delays,
        mean_delay,
    }
}

/// Micro-averaged metrics over repeated runs (the paper repeats every
/// experiment 30 times and reports micro-averaged precision / recall / F1,
/// the average FP count per run and the average delay).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateMetrics {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Total true positives across runs.
    pub true_positives: usize,
    /// Total false positives across runs.
    pub false_positives: usize,
    /// Total false negatives across runs.
    pub false_negatives: usize,
    /// Average number of false positives per run (the paper's "FP" column).
    pub mean_false_positives_per_run: f64,
    /// Mean detection delay over all true positives of all runs.
    pub mean_delay: Option<f64>,
    /// Micro-averaged precision.
    pub precision: f64,
    /// Micro-averaged recall.
    pub recall: f64,
    /// Micro-averaged F1 score.
    pub f1: f64,
}

impl AggregateMetrics {
    /// Aggregates the outcomes of repeated runs.
    #[must_use]
    pub fn from_outcomes(outcomes: &[DetectionOutcome]) -> Self {
        let runs = outcomes.len();
        let tp: usize = outcomes.iter().map(|o| o.true_positives).sum();
        let fp: usize = outcomes.iter().map(|o| o.false_positives).sum();
        let fn_: usize = outcomes.iter().map(|o| o.false_negatives).sum();
        let all_delays: Vec<f64> = outcomes.iter().flat_map(|o| o.delays.clone()).collect();
        let mean_delay = if all_delays.is_empty() {
            None
        } else {
            Some(all_delays.iter().sum::<f64>() / all_delays.len() as f64)
        };
        let precision = if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            1.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            runs,
            true_positives: tp,
            false_positives: fp,
            false_negatives: fn_,
            mean_false_positives_per_run: if runs == 0 {
                0.0
            } else {
                fp as f64 / runs as f64
            },
            mean_delay,
            precision,
            recall,
            f1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> DriftSchedule {
        DriftSchedule::new(vec![1_000, 2_000, 3_000], 1, 4_000)
    }

    #[test]
    fn perfect_detection() {
        let o = score_detections(&schedule(), &[1_010, 2_005, 3_100]);
        assert_eq!(o.true_positives, 3);
        assert_eq!(o.false_positives, 0);
        assert_eq!(o.false_negatives, 0);
        assert_eq!(o.precision(), 1.0);
        assert_eq!(o.recall(), 1.0);
        assert_eq!(o.f1(), 1.0);
        assert!((o.mean_delay.unwrap() - (10.0 + 5.0 + 100.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn missed_drifts_are_false_negatives() {
        let o = score_detections(&schedule(), &[1_010]);
        assert_eq!(o.true_positives, 1);
        assert_eq!(o.false_negatives, 2);
        assert_eq!(o.false_positives, 0);
        assert!((o.recall() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(o.precision(), 1.0);
    }

    #[test]
    fn extra_detections_are_false_positives() {
        let o = score_detections(&schedule(), &[500, 1_010, 1_500, 1_700, 2_005, 3_001]);
        assert_eq!(o.true_positives, 3);
        // 500 (before any drift), 1500 and 1700 (after the TP of segment 1).
        assert_eq!(o.false_positives, 3);
        assert_eq!(o.false_negatives, 0);
        assert!((o.precision() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_detections_at_all() {
        let o = score_detections(&schedule(), &[]);
        assert_eq!(o.true_positives, 0);
        assert_eq!(o.false_negatives, 3);
        assert_eq!(o.precision(), 1.0);
        assert_eq!(o.recall(), 0.0);
        assert_eq!(o.f1(), 0.0);
        assert_eq!(o.mean_delay, None);
    }

    #[test]
    fn stationary_stream_all_detections_are_fp() {
        let s = DriftSchedule::stationary(5_000);
        let o = score_detections(&s, &[100, 3_000]);
        assert_eq!(o.true_positives, 0);
        assert_eq!(o.false_positives, 2);
        assert_eq!(o.false_negatives, 0);
        assert_eq!(o.recall(), 1.0);
        assert_eq!(o.precision(), 0.0);
    }

    #[test]
    fn aggregation_micro_averages() {
        let a = score_detections(&schedule(), &[1_010, 2_005, 3_100]);
        let b = score_detections(&schedule(), &[500, 1_100]);
        let agg = AggregateMetrics::from_outcomes(&[a, b]);
        assert_eq!(agg.runs, 2);
        assert_eq!(agg.true_positives, 4);
        assert_eq!(agg.false_positives, 1);
        assert_eq!(agg.false_negatives, 2);
        assert!((agg.mean_false_positives_per_run - 0.5).abs() < 1e-12);
        assert!((agg.precision - 4.0 / 5.0).abs() < 1e-12);
        assert!((agg.recall - 4.0 / 6.0).abs() < 1e-12);
        let expected_f1 = 2.0 * (0.8 * (4.0 / 6.0)) / (0.8 + 4.0 / 6.0);
        assert!((agg.f1 - expected_f1).abs() < 1e-12);
        // Mean delay over all TPs: (10 + 5 + 100 + 100) / 4
        assert!((agg.mean_delay.unwrap() - 53.75).abs() < 1e-12);
    }

    #[test]
    fn aggregation_of_empty_list() {
        let agg = AggregateMetrics::from_outcomes(&[]);
        assert_eq!(agg.runs, 0);
        assert_eq!(agg.precision, 1.0);
        assert_eq!(agg.recall, 1.0);
        assert_eq!(agg.mean_delay, None);
    }

    #[test]
    fn serialization_round_trip() {
        let o = score_detections(&schedule(), &[1_010, 2_600]);
        let json = serde_json::to_string(&o).unwrap();
        let back: DetectionOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(o, back);
    }
}
