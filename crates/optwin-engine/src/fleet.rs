//! Config-file fleet loading: a JSON map of `stream id → spec string`
//! turned into pre-registered, declaratively configured engine streams.
//!
//! The wire shape is deliberately the dumbest thing that round-trips through
//! every config system (one flat JSON object — keys are stream ids, values
//! are [`DetectorSpec`] strings in the canonical grammar):
//!
//! ```json
//! {
//!     "0": "optwin:rho=0.5,w_max=2000",
//!     "1": "adwin:delta=0.002",
//!     "7": "kswin:window_size=300,stat_size=30,alpha=0.0001"
//! }
//! ```
//!
//! [`FleetConfig`] is the parsed form; [`crate::EngineBuilder::from_config_json`] /
//! [`crate::EngineBuilder::from_config_path`] wrap it straight into a
//! builder, and the `table1 --fleet <file>` CLI runs a whole experiment over
//! one. The lenient variants accept spec strings with unknown keys (from
//! newer or external config producers) via
//! [`DetectorSpec::parse_lenient`], surfacing them as warnings instead of
//! failing the load.

use std::path::Path;

use optwin_baselines::DetectorSpec;

use crate::engine::EngineError;

/// A parsed fleet configuration: which detector spec each stream id runs,
/// plus any warnings the (lenient) parse produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// `(stream id, spec)` pairs, sorted by stream id.
    pub streams: Vec<(u64, DetectorSpec)>,
    /// Human-readable warnings (lenient parse only; empty for strict
    /// parses).
    pub warnings: Vec<String>,
}

impl FleetConfig {
    /// Parses a fleet config from its JSON text, strictly: unknown spec
    /// keys are errors.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidFleetConfig`] for malformed JSON, a
    /// non-object top level, an unparsable stream id, a non-string or
    /// invalid spec, or a duplicate stream id.
    pub fn from_json(text: &str) -> Result<Self, EngineError> {
        Self::parse(text, false)
    }

    /// Parses a fleet config from its JSON text, skipping unknown spec keys
    /// and reporting them in [`FleetConfig::warnings`] (each prefixed with
    /// the stream id it came from). For config produced by external tools
    /// that may know keys this build does not.
    ///
    /// # Errors
    ///
    /// As [`FleetConfig::from_json`], minus the unknown-key case.
    pub fn from_json_lenient(text: &str) -> Result<Self, EngineError> {
        Self::parse(text, true)
    }

    /// Reads and strictly parses a fleet config file.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidFleetConfig`] when the file cannot be
    /// read, plus every error [`FleetConfig::from_json`] reports.
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, EngineError> {
        Self::from_json(&Self::read(path.as_ref())?)
    }

    /// Reads and leniently parses a fleet config file (unknown spec keys →
    /// [`FleetConfig::warnings`]) — what a CLI consuming configs from
    /// external producers should use.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidFleetConfig`] when the file cannot be
    /// read, plus every error [`FleetConfig::from_json_lenient`] reports.
    pub fn from_path_lenient(path: impl AsRef<Path>) -> Result<Self, EngineError> {
        Self::from_json_lenient(&Self::read(path.as_ref())?)
    }

    fn read(path: &Path) -> Result<String, EngineError> {
        std::fs::read_to_string(path).map_err(|e| {
            EngineError::InvalidFleetConfig(format!("cannot read {}: {e}", path.display()))
        })
    }

    fn parse(text: &str, lenient: bool) -> Result<Self, EngineError> {
        let bad = |message: String| EngineError::InvalidFleetConfig(message);
        let value: serde::Value =
            serde_json::from_str(text).map_err(|e| bad(format!("malformed JSON: {e}")))?;
        let entries = value.as_object().ok_or_else(|| {
            bad("expected a JSON object mapping stream ids to detector spec strings".to_string())
        })?;

        let mut streams: Vec<(u64, DetectorSpec)> = Vec::with_capacity(entries.len());
        let mut warnings = Vec::new();
        for (key, entry) in entries {
            let stream: u64 = key
                .trim()
                .parse()
                .map_err(|_| bad(format!("stream id `{key}` is not an unsigned integer")))?;
            let serde::Value::Str(spec_text) = entry else {
                return Err(bad(format!(
                    "stream {stream}: expected a detector spec string, found {entry:?}"
                )));
            };
            let spec = if lenient {
                let (spec, spec_warnings) = DetectorSpec::parse_lenient(spec_text)
                    .map_err(|e| bad(format!("stream {stream}: {e}")))?;
                warnings.extend(
                    spec_warnings
                        .into_iter()
                        .map(|w| format!("stream {stream}: {w}")),
                );
                spec
            } else {
                spec_text
                    .parse()
                    .map_err(|e| bad(format!("stream {stream}: {e}")))?
            };
            streams.push((stream, spec));
        }
        streams.sort_unstable_by_key(|&(stream, _)| stream);
        if let Some(window) = streams.windows(2).find(|w| w[0].0 == w[1].0) {
            return Err(bad(format!("duplicate stream id {}", window[0].0)));
        }
        Ok(Self { streams, warnings })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_heterogeneous_fleet() {
        let fleet = FleetConfig::from_json(
            r#"{"3": "adwin:delta=0.01", "1": "optwin:w_max=500", "2": "kswin"}"#,
        )
        .unwrap();
        assert!(fleet.warnings.is_empty());
        let ids: Vec<u64> = fleet.streams.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![1, 2, 3], "sorted by stream id");
        assert_eq!(fleet.streams[0].1.id(), "optwin");
        assert_eq!(fleet.streams[2].1.id(), "adwin");
    }

    #[test]
    fn rejects_malformed_configs() {
        for (text, needle) in [
            ("not json", "malformed JSON"),
            ("[1, 2]", "JSON object"),
            (r#"{"x": "adwin"}"#, "not an unsigned integer"),
            (r#"{"1": 42}"#, "spec string"),
            (r#"{"1": "frobnicate"}"#, "unknown detector"),
            (r#"{"1": "adwin:delta=2.0"}"#, "delta"),
            (r#"{"1": "adwin", "01": "ddm"}"#, "duplicate stream id 1"),
        ] {
            let err = FleetConfig::from_json(text).unwrap_err();
            assert!(
                matches!(err, EngineError::InvalidFleetConfig(_)),
                "{text}: {err}"
            );
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn lenient_parse_surfaces_unknown_keys_as_warnings() {
        let text = r#"{"1": "adwin:delta=0.01,future_knob=7", "2": "ddm"}"#;
        // Strict refuses...
        assert!(FleetConfig::from_json(text).is_err());
        // ... lenient loads and reports.
        let fleet = FleetConfig::from_json_lenient(text).unwrap();
        assert_eq!(fleet.streams.len(), 2);
        assert_eq!(fleet.warnings.len(), 1);
        assert!(
            fleet.warnings[0].contains("stream 1"),
            "{:?}",
            fleet.warnings
        );
        assert!(
            fleet.warnings[0].contains("future_knob"),
            "{:?}",
            fleet.warnings
        );
        // Value errors stay fatal even leniently.
        assert!(FleetConfig::from_json_lenient(r#"{"1": "adwin:delta=abc"}"#).is_err());
    }

    #[test]
    fn from_path_reads_files_and_reports_missing_ones() {
        let dir = std::env::temp_dir().join("optwin_fleet_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.json");
        std::fs::write(&path, r#"{"5": "page_hinkley"}"#).unwrap();
        let fleet = FleetConfig::from_path(&path).unwrap();
        assert_eq!(fleet.streams.len(), 1);
        assert_eq!(fleet.streams[0].0, 5);

        let err = FleetConfig::from_path(dir.join("missing.json")).unwrap_err();
        assert!(err.to_string().contains("cannot read"), "{err}");
    }
}
