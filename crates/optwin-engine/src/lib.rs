//! # optwin-engine — sharded, parallel multi-stream drift detection
//!
//! The per-paper crates detect drift in **one** stream at a time. This crate
//! turns the batch-first [`DriftDetector`](optwin_core::DriftDetector)
//! contract into a serving-scale runtime: a [`DriftEngine`] owns many
//! independent `(stream id → detector)` entries partitioned across `N`
//! shards, ingests batches of `(stream id, value)` records, fans the shards
//! out across OS threads, and emits per-stream [`DriftEvent`]s carrying the
//! exact element sequence number at which each detector fired.
//!
//! Design points:
//!
//! * **Sharding by stream id.** A stream lives on shard `id % N` for its
//!   whole life, so per-stream element order is preserved while shards
//!   process disjoint detector sets with no locking at all.
//! * **Batching end-to-end.** Within a shard, a batch's records are grouped
//!   per stream and handed to the detector through `add_batch`, so OPTWIN's
//!   amortized cut-table prefetch (and every other native batch path) kicks
//!   in. Results are bit-identical to element-wise ingestion — that is the
//!   detector contract, enforced by `tests/detector_contract.rs`.
//! * **Shared cut tables.** OPTWIN detectors built through
//!   [`optwin_core::CutTableRegistry`] (or any shared
//!   [`optwin_core::CutTable`]) keep one quantile table per configuration
//!   across all streams and shards.
//! * **Fork–join parallelism on scoped threads.** Each `ingest_batch` call
//!   fans non-empty shards out with `std::thread::scope`. (The environment
//!   has no `rayon`; a scoped fork–join over shard-disjoint `&mut` state
//!   needs no work-stealing pool and keeps the crate dependency-free.)
//!
//! # Quick start
//!
//! ```
//! use optwin_core::{DriftDetector, Optwin, OptwinConfig};
//! use optwin_engine::{DriftEngine, EngineConfig};
//!
//! // 4 shards; detectors are created on first sight of a stream id.
//! let mut engine = DriftEngine::with_factory(EngineConfig::with_shards(4), |_stream| {
//!     let config = OptwinConfig::builder()
//!         .robustness(1.0)
//!         .max_window(500)
//!         .build()
//!         .expect("valid config");
//!     Box::new(Optwin::with_shared_table(config).expect("valid config"))
//! });
//!
//! // 8 interleaved streams; stream 3 degrades halfway through.
//! let mut records = Vec::new();
//! for i in 0..4_000u64 {
//!     for stream in 0..8u64 {
//!         let base = if stream == 3 && i >= 2_000 { 0.6 } else { 0.05 };
//!         let noise = 0.01 * ((i % 7) as f64 - 3.0) / 3.0;
//!         records.push((stream, base + noise));
//!     }
//! }
//! let mut events = Vec::new();
//! for batch in records.chunks(8 * 500) {
//!     events.extend(engine.ingest_batch(batch).expect("registered streams"));
//! }
//! assert!(events.iter().all(|e| e.stream == 3));
//! assert!(events.iter().any(|e| e.seq >= 2_000), "drift found after the shift");
//! assert_eq!(engine.stream_count(), 8);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod engine;
mod event;

pub use engine::{DetectorFactory, DriftEngine, EngineConfig, EngineError, StreamSnapshot};
pub use event::DriftEvent;
