//! # optwin-engine — a service-style, sharded multi-stream drift engine
//!
//! The per-paper crates detect drift in **one** stream at a time. This crate
//! turns the batch-first [`DriftDetector`](optwin_core::DriftDetector)
//! contract into a serving-scale runtime with a service-style front door:
//!
//! * [`EngineBuilder`] configures shard count, the default detector — a
//!   declarative [`optwin_baselines::DetectorSpec`]
//!   ([`EngineBuilder::default_spec`], the canonical path) or a closure
//!   factory (the escape hatch) — warning policy, event sinks and queue
//!   capacity, then spawns **one long-lived worker thread per shard** (a
//!   stream lives on shard `id % shards` for its whole life, so per-stream
//!   order is preserved with no locking). Heterogeneous fleets mix specs
//!   per stream via [`EngineBuilder::stream_spec`] /
//!   [`EngineHandle::register_stream_spec`], and
//!   [`EngineHandle::stream_spec`] reports what a live stream is running.
//! * [`EngineHandle`] — cheaply cloneable and thread-safe — is the front
//!   door: [`EngineHandle::submit`] partitions a `(stream id, value)` record
//!   batch onto bounded per-shard queues and **returns immediately**;
//!   [`EngineHandle::try_submit`] fails fast with
//!   [`EngineError::QueueFull`] for backpressure-aware callers;
//!   [`EngineHandle::flush`] and [`EngineHandle::shutdown`] are barriers
//!   that drain the queues (the latter also joins the workers).
//! * Detections leave through pluggable [`EventSink`]s: [`MemorySink`]
//!   (collect and drain in-process), [`JsonLinesSink`] (serialize to a
//!   writer/file), [`CallbackSink`] (invoke a closure) — or any custom
//!   implementation.
//! * Stream placement is a first-class **routing table**: streams route to
//!   `id % shards` by default, and [`EngineHandle::rebalance`] recomputes
//!   the placement from *observed* load ([`RebalancePolicy`]: lifetime
//!   records or detector seconds), migrating each moved stream's state
//!   between workers at a barrier — event streams and per-stream `seq`
//!   stay bit-exact. [`EngineHandle::stats`] exposes the per-shard load
//!   (records, queue occupancy, batch-latency EWMA) behind the decision,
//!   and [`EngineBuilder::auto_rebalance`] triggers the whole cycle
//!   automatically at flush barriers past an imbalance threshold.
//! * [`EngineHandle::snapshot`] serializes every stream's detector state
//!   into an [`EngineSnapshot`]; [`EngineBuilder::restore`] rebuilds a
//!   fresh engine that makes **identical subsequent decisions**, so a
//!   restarted process resumes mid-stream. Snapshots of spec-registered
//!   streams embed `{spec, state, shard}` (wire format v3) and restore
//!   with **zero caller-side factories**, reproducing a rebalanced
//!   placement; all 8 shipped detector kinds serialize their state
//!   bit-exactly. v1/v2 snapshots still load.
//! * Whole fleets load from config files: [`FleetConfig`] /
//!   [`EngineBuilder::from_config_json`] turn a JSON map of
//!   `stream id → spec string` into a fully registered engine.
//! * Production-shaped traffic replays through the [`replay()`] driver:
//!   Zipf-skewed, burst-interleaved arrivals across thousands of streams,
//!   submitted through the ordinary [`EngineHandle::submit`] path with
//!   per-stream order (and therefore every detection) bit-exact versus a
//!   sequential feed — the ingestion layer of the `driftbench` suite.
//! * Million-stream fleets fit in memory through the **hibernation tier**
//!   ([`EngineBuilder::hibernation`], [`HibernationPolicy`]): streams idle
//!   across consecutive flush barriers have their detector state compressed
//!   to a compact blob and the detector freed, then rehydrate bit-exactly
//!   on their next record. [`EngineStats`] reports resident bytes,
//!   hibernated counts and rehydrations per shard, and engine snapshots
//!   persist sleeping streams without waking them.
//! * Long-running services stay durable through the **checkpoint
//!   subsystem** (wire format v5, [`EngineBuilder::checkpoint`] /
//!   [`CheckpointPolicy`]): checkpoints write a base snapshot once and
//!   then **delta overlays** of only the streams dirty since the previous
//!   barrier, a per-shard **write-ahead log** covers the record batches in
//!   between, and the delta chain compacts back into a fresh base past a
//!   configurable size ratio. After a crash,
//!   [`EngineBuilder::recover_from_dir`] replays base → deltas → WAL tail
//!   and resumes **bit-exactly** — same events, same `seq` numbers, and
//!   hibernated streams recover still asleep (see [`checkpoint`]).
//!
//! The original synchronous API survives as a thin blocking wrapper:
//! [`DriftEngine::ingest_batch`] is exactly `submit` + `flush` + drain of an
//! internal [`MemorySink`], so it stays bit-identical to element-wise
//! ingestion (the detector contract, enforced by
//! `tests/detector_contract.rs`) while the heavy lifting happens on the
//! shard workers.
//!
//! # Quick start (service API)
//!
//! ```
//! use std::sync::Arc;
//! use optwin_core::{DriftDetector, Optwin, OptwinConfig};
//! use optwin_engine::{EngineBuilder, MemorySink};
//!
//! // Detections land in a shared sink; detectors are created on first
//! // sight of a stream id (one shared cut table across all of them).
//! let sink = Arc::new(MemorySink::new());
//! let handle = EngineBuilder::new()
//!     .shards(4)
//!     .queue_capacity(8_192)
//!     .factory(|_stream| {
//!         let config = OptwinConfig::builder()
//!             .robustness(1.0)
//!             .max_window(500)
//!             .build()
//!             .expect("valid config");
//!         Box::new(Optwin::with_shared_table(config).expect("valid config"))
//!             as Box<dyn DriftDetector + Send>
//!     })
//!     .sink(Arc::clone(&sink) as Arc<dyn optwin_engine::EventSink>)
//!     .build()
//!     .expect("valid engine");
//!
//! // 8 interleaved streams; stream 3 degrades halfway through. Submission
//! // never waits for detection work.
//! let mut records = Vec::new();
//! for i in 0..4_000u64 {
//!     for stream in 0..8u64 {
//!         let base = if stream == 3 && i >= 2_000 { 0.6 } else { 0.05 };
//!         let noise = 0.01 * ((i % 7) as f64 - 3.0) / 3.0;
//!         records.push((stream, base + noise));
//!     }
//! }
//! for batch in records.chunks(8 * 500) {
//!     handle.submit(batch).expect("engine running");
//! }
//! handle.shutdown().expect("clean drain");
//!
//! let events = sink.drain();
//! assert!(events.iter().all(|e| e.stream == 3));
//! assert!(events.iter().any(|e| e.seq >= 2_000), "drift found after the shift");
//! ```
//!
//! # Blocking wrapper
//!
//! ```
//! use optwin_engine::{DriftEngine, EngineConfig};
//! # use optwin_core::{DriftDetector, Optwin, OptwinConfig};
//!
//! let mut engine = DriftEngine::with_factory(EngineConfig::with_shards(2), |_| {
//!     let config = OptwinConfig::builder().max_window(200).build().unwrap();
//!     Box::new(Optwin::with_shared_table(config).unwrap()) as Box<dyn DriftDetector + Send>
//! });
//! let events = engine.ingest_batch(&[(1, 0.1), (2, 0.2), (1, 0.15)]).unwrap();
//! assert!(events.is_empty());
//! assert_eq!(engine.stream_count(), 2);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod builder;
pub mod checkpoint;
mod engine;
mod event;
mod fleet;
mod handle;
pub mod hibernate;
mod persist;
pub mod replay;
mod router;
mod sink;

pub use builder::{EngineBuilder, DEFAULT_QUEUE_CAPACITY};
pub use checkpoint::{
    fsync_count, load_checkpoint_dir, CheckpointPolicy, CheckpointReport, Durability,
    CHECKPOINT_WIRE_VERSION,
};
pub use engine::{DriftEngine, EngineConfig, EngineError, StreamSnapshot};
pub use event::DriftEvent;
pub use fleet::FleetConfig;
pub use handle::{
    EngineHandle, EngineStats, RebalancePolicy, RebalanceReport, ShardLoad, SharedDetectorFactory,
};
pub use hibernate::HibernationPolicy;
pub use persist::{wire_version, EngineSnapshot, StreamStateSnapshot, ENGINE_SNAPSHOT_VERSION};
pub use replay::{replay, ReplayConfig, ReplayReport};
pub use sink::{CallbackSink, EventSink, JsonLinesSink, MemorySink};

// Re-exported so engine users can pick a snapshot layout without depending
// on `optwin-core` directly.
pub use optwin_core::SnapshotEncoding;
