//! Multi-stream replay driver modelling production traffic.
//!
//! The Table 1 runner feeds every stream the same chunk in lock-step — a
//! benchmark convenience, not what a fleet serving real users sees. In
//! production, traffic across streams is heavily skewed (a few hot streams
//! dominate) and arrives in interleaved bursts per stream, not in global
//! rounds. [`replay`] reproduces that shape on top of the ordinary
//! [`EngineHandle::submit`] ingestion path:
//!
//! * each source stream is assigned a **Zipf weight** by its rank in the
//!   source list (`weight ∝ 1 / rank^s`, rank 1 = hottest — the classic
//!   web-traffic skew);
//! * the driver repeatedly samples a stream from that distribution and
//!   submits its next **burst** of up to [`ReplayConfig::burst`] pending
//!   values as one record batch;
//! * a stream's own values are always submitted in sequence order, so
//!   per-stream detection results are **bit-identical** to a sequential
//!   feed (the engine's per-stream ordering contract) while the global
//!   arrival order interleaves thousands of streams — exactly the traffic
//!   the `driftbench` grid runs its detector fleet under.
//!
//! The driver is deterministic in [`ReplayConfig::seed`], so a replayed
//! grid is exactly reproducible.

use crate::engine::EngineError;
use crate::handle::EngineHandle;

/// Configuration of a [`replay`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayConfig {
    /// Zipf exponent `s` of the per-stream traffic weights (`weight ∝
    /// 1 / rank^s`). `0` flattens the distribution to uniform; `1.1` is a
    /// typical web-traffic skew. Must be finite and non-negative.
    pub zipf_exponent: f64,
    /// Maximum number of values drained from the sampled stream per
    /// submission burst. Must be positive.
    pub burst: usize,
    /// Seed of the driver's deterministic sampler.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            zipf_exponent: 1.1,
            burst: 256,
            seed: 0,
        }
    }
}

impl ReplayConfig {
    /// A config with the given seed and the default skew/burst.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

/// Summary of one [`replay`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Number of source streams replayed.
    pub streams: usize,
    /// Total records submitted.
    pub records: u64,
    /// Number of `submit` calls (bursts) issued.
    pub bursts: u64,
    /// Stream ids in the order they were fully drained. Under a skewed
    /// config the hot (low-rank) streams finish early because they are
    /// sampled more often.
    pub completion_order: Vec<u64>,
}

/// SplitMix64 — a tiny deterministic generator, enough for burst sampling
/// (the vendored `rand` shim lives above this crate in the dependency
/// graph, and the driver only needs uniform `f64`s).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Replays `sources` — `(stream id, value sequence)` pairs, hottest first —
/// into the engine through [`EngineHandle::submit`], interleaving
/// Zipf-skewed bursts until every sequence is drained. Does **not** flush;
/// call [`EngineHandle::flush`] afterwards to drain the shard queues.
///
/// Per-stream value order is preserved, so detector decisions per stream
/// are identical to a sequential feed regardless of the interleaving.
///
/// # Errors
///
/// Propagates any [`EngineError`] from `submit` (e.g. a shut-down engine).
///
/// # Panics
///
/// Panics if `config.zipf_exponent` is negative or non-finite, or
/// `config.burst` is zero. Duplicate stream ids in `sources` are allowed
/// (the engine appends to the same stream), but the relative order of the
/// duplicates' values is then sampling-dependent — give each source a
/// unique id for reproducible per-stream sequences.
pub fn replay(
    handle: &EngineHandle,
    sources: &[(u64, &[f64])],
    config: &ReplayConfig,
) -> Result<ReplayReport, EngineError> {
    assert!(
        config.zipf_exponent.is_finite() && config.zipf_exponent >= 0.0,
        "zipf_exponent must be finite and non-negative"
    );
    assert!(config.burst > 0, "burst must be positive");

    // Per-source cursor + cumulative Zipf weights over the still-active
    // sources. The cumulative table is rebuilt whenever a source drains
    // (O(active) each time; with n sources that is O(n^2) total — fine for
    // the "thousands of streams" regime this driver targets).
    let mut active: Vec<usize> = (0..sources.len()).collect();
    let mut offsets: Vec<usize> = vec![0; sources.len()];
    let mut cumulative: Vec<f64> = Vec::with_capacity(sources.len());
    let weight = |source_index: usize| 1.0 / ((source_index + 1) as f64).powf(config.zipf_exponent);
    let rebuild = |active: &[usize], cumulative: &mut Vec<f64>| {
        cumulative.clear();
        let mut total = 0.0;
        for &i in active {
            total += weight(i);
            cumulative.push(total);
        }
    };
    rebuild(&active, &mut cumulative);

    let mut rng = SplitMix64(config.seed ^ 0xD1B5_4A32_D192_ED03);
    let mut records: Vec<(u64, f64)> = Vec::with_capacity(config.burst);
    let mut report = ReplayReport {
        streams: sources.len(),
        records: 0,
        bursts: 0,
        completion_order: Vec::with_capacity(sources.len()),
    };

    while let Some(&total) = cumulative.last() {
        // Sample an active source by its Zipf weight.
        let u = rng.next_f64() * total;
        let slot = cumulative
            .partition_point(|&c| c <= u)
            .min(active.len() - 1);
        let source_index = active[slot];
        let (stream, values) = sources[source_index];

        let offset = offsets[source_index];
        let take = config.burst.min(values.len() - offset);
        records.clear();
        records.extend(values[offset..offset + take].iter().map(|&v| (stream, v)));
        if take > 0 {
            handle.submit(&records)?;
            report.records += take as u64;
            report.bursts += 1;
        }
        offsets[source_index] = offset + take;

        if offsets[source_index] >= values.len() {
            report.completion_order.push(stream);
            active.remove(slot);
            rebuild(&active, &mut cumulative);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::builder::EngineBuilder;
    use crate::sink::{EventSink, MemorySink};

    use optwin_baselines::DetectorSpec;

    /// Deterministic pseudo-random binary error value.
    fn val(i: u64) -> f64 {
        f64::from(SplitMix64(i).next_f64() < 0.2)
    }

    fn build_engine(streams: u64, shards: usize) -> (crate::handle::EngineHandle, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        let mut builder = EngineBuilder::new()
            .shards(shards)
            .sink(Arc::clone(&sink) as Arc<dyn EventSink>);
        for id in 0..streams {
            builder = builder.stream_spec(id, "ddm".parse::<DetectorSpec>().unwrap());
        }
        (builder.build().unwrap(), sink)
    }

    #[test]
    fn replay_matches_sequential_feed_bit_exactly() {
        const STREAMS: u64 = 16;
        const LEN: usize = 3_000;
        let sequences: Vec<Vec<f64>> = (0..STREAMS)
            .map(|s| (0..LEN).map(|i| val(s * 1_000_000 + i as u64)).collect())
            .collect();
        let sources: Vec<(u64, &[f64])> = sequences
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u64, v.as_slice()))
            .collect();

        // Reference: plain sequential per-stream submission.
        let (handle, sink) = build_engine(STREAMS, 4);
        for (id, values) in &sources {
            let records: Vec<(u64, f64)> = values.iter().map(|&v| (*id, v)).collect();
            handle.submit(&records).unwrap();
        }
        handle.flush().unwrap();
        let mut reference: Vec<(u64, u64)> =
            sink.drain().iter().map(|e| (e.stream, e.seq)).collect();
        reference.sort_unstable();
        handle.shutdown().unwrap();

        // Zipf-interleaved replay must produce the same events per stream.
        let (handle, sink) = build_engine(STREAMS, 4);
        let report = replay(&handle, &sources, &ReplayConfig::with_seed(42)).unwrap();
        handle.flush().unwrap();
        let mut replayed: Vec<(u64, u64)> =
            sink.drain().iter().map(|e| (e.stream, e.seq)).collect();
        replayed.sort_unstable();
        handle.shutdown().unwrap();

        assert_eq!(replayed, reference);
        assert_eq!(report.records, STREAMS * LEN as u64);
        assert_eq!(report.streams, STREAMS as usize);
        // Interleaving actually happened: far more bursts than streams.
        assert!(report.bursts > STREAMS * 2, "bursts = {}", report.bursts);
        assert_eq!(report.completion_order.len(), STREAMS as usize);
    }

    #[test]
    fn replay_is_deterministic_in_the_seed() {
        let sequences: Vec<Vec<f64>> = (0..8u64)
            .map(|s| (0..500).map(|i| val(s * 7_919 + i)).collect())
            .collect();
        let sources: Vec<(u64, &[f64])> = sequences
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u64, v.as_slice()))
            .collect();
        let run = |seed: u64| {
            let (handle, _sink) = build_engine(8, 2);
            let report = replay(&handle, &sources, &ReplayConfig::with_seed(seed)).unwrap();
            handle.shutdown().unwrap();
            report
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).completion_order, run(8).completion_order);
    }

    #[test]
    fn skewed_replay_drains_hot_streams_first() {
        // Rank-0 gets weight 1, rank-63 gets 1/64^2 = 1/4096 under s = 2:
        // with equal sequence lengths the hot stream must finish in the
        // first few completions and the coldest in the last few.
        let sequences: Vec<Vec<f64>> = (0..64u64)
            .map(|s| (0..400).map(|i| val(s * 104_729 + i)).collect())
            .collect();
        let sources: Vec<(u64, &[f64])> = sequences
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u64, v.as_slice()))
            .collect();
        let (handle, _sink) = build_engine(64, 2);
        let config = ReplayConfig {
            zipf_exponent: 2.0,
            burst: 32,
            seed: 3,
        };
        let report = replay(&handle, &sources, &config).unwrap();
        handle.flush().unwrap();
        handle.shutdown().unwrap();

        let rank_of = |stream: u64| {
            report
                .completion_order
                .iter()
                .position(|&s| s == stream)
                .unwrap()
        };
        assert!(rank_of(0) < 8, "hot stream finished at {}", rank_of(0));
        assert!(rank_of(63) > 32, "cold stream finished at {}", rank_of(63));
    }

    #[test]
    fn uniform_exponent_flattens_the_skew() {
        let sequences: Vec<Vec<f64>> = (0..4u64)
            .map(|s| (0..2_000).map(|i| val(s + i)).collect())
            .collect();
        let sources: Vec<(u64, &[f64])> = sequences
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u64, v.as_slice()))
            .collect();
        let (handle, _sink) = build_engine(4, 1);
        let config = ReplayConfig {
            zipf_exponent: 0.0,
            burst: 100,
            seed: 9,
        };
        let report = replay(&handle, &sources, &config).unwrap();
        handle.shutdown().unwrap();
        // 4 streams x 2000 elements / 100 burst = 80 full bursts.
        assert_eq!(report.records, 8_000);
        assert_eq!(report.bursts, 80);
    }

    #[test]
    #[should_panic(expected = "burst must be positive")]
    fn rejects_zero_burst() {
        let (handle, _sink) = build_engine(1, 1);
        let config = ReplayConfig {
            burst: 0,
            ..ReplayConfig::default()
        };
        let _ = replay(&handle, &[(0, &[0.0])], &config);
    }

    #[test]
    #[should_panic(expected = "zipf_exponent must be finite")]
    fn rejects_negative_exponent() {
        let (handle, _sink) = build_engine(1, 1);
        let config = ReplayConfig {
            zipf_exponent: -1.0,
            ..ReplayConfig::default()
        };
        let _ = replay(&handle, &[(0, &[0.0])], &config);
    }

    #[test]
    fn empty_sources_are_a_no_op() {
        let (handle, _sink) = build_engine(1, 1);
        let report = replay(&handle, &[], &ReplayConfig::default()).unwrap();
        assert_eq!(report.records, 0);
        assert_eq!(report.bursts, 0);
        assert!(report.completion_order.is_empty());
        // An empty sequence completes immediately without a submit.
        let report = replay(&handle, &[(5, &[])], &ReplayConfig::default()).unwrap();
        assert_eq!(report.records, 0);
        assert_eq!(report.bursts, 0);
        assert_eq!(report.completion_order, vec![5]);
        handle.shutdown().unwrap();
    }
}
