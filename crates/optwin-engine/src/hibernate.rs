//! The hibernation tier: cold-stream detector-state compression.
//!
//! A fleet of millions of streams is bounded by resident memory, not CPU:
//! every registered stream holds a fully materialized detector (OPTWIN at
//! the paper's `w_max = 25 000` buffers every window element — ~200 KiB per
//! stream), yet under Zipf-skewed production traffic the overwhelming
//! majority of streams see no records for long stretches. Hibernation
//! trades that idle footprint for a compact blob: a shard worker that
//! observes a stream ingesting nothing for
//! [`HibernationPolicy::cold_after_flushes`] consecutive flush barriers
//! serializes the detector's complete mutable state through the wire-v4
//! compact binary codec
//! ([`DriftDetector::snapshot_state_encoded`]
//! with [`SnapshotEncoding::Binary`]), frees the live detector, and keeps
//! only the blob plus a few cached counters. The next record for the stream
//! rehydrates it transparently: a fresh detector is built from the stream's
//! [`DetectorSpec`] and the blob is restored into it before the record is
//! ingested.
//!
//! The whole tier rides on the PR 5 snapshot contract: restores are
//! **bit-exact**, so a fleet that hibernates and rehydrates emits byte-for-
//! byte identical [`crate::DriftEvent`]s (and `seq` numbers, and state
//! snapshots) to a fleet that never sleeps — enforced by
//! `tests/engine_hibernation.rs` and the forced-cycle adversarial proptest.
//!
//! Only spec-registered streams hibernate: a closure-factory or
//! explicit-instance stream has no declarative recipe to rebuild its
//! detector from, so the sweep skips it (as it skips custom detectors
//! without snapshot support). Hibernated streams stay first-class: they
//! migrate across shards during [`crate::EngineHandle::rebalance`] (the
//! blob moves instead of the detector), appear in queries and stats with a
//! `hibernated` flag, and persist inside engine snapshots *without being
//! woken* — their blob is embedded verbatim, and a restoring builder with
//! hibernation configured re-creates them still asleep.
//!
//! The tier composes with the [`crate::checkpoint`] durability subsystem
//! (wire v5) through the per-stream dirty bit: falling asleep is a state
//! *transition*, so the sweep marks the stream dirty and the next delta
//! overlay captures its compressed entry — after which the sleeper costs
//! nothing at every subsequent barrier until it wakes. A fleet recovered
//! from a checkpoint directory therefore brings its cold tier back
//! *asleep*, blobs verbatim, with rehydration deferred exactly as a plain
//! snapshot restore would.

use optwin_baselines::DetectorSpec;
use optwin_core::{DriftDetector, SnapshotEncoding};

use crate::engine::EngineError;

/// When shard workers put idle streams to sleep.
///
/// Configured via [`crate::EngineBuilder::hibernation`]; without it the
/// engine never hibernates (every detector stays resident — the historical
/// behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HibernationPolicy {
    /// A stream is *cold* — and is compressed at the next sweep — once this
    /// many consecutive [`crate::EngineHandle::flush`] barriers have passed
    /// with no records for it. `0` is the forced mode used by equivalence
    /// tests: **every** spec-registered stream hibernates at **every**
    /// flush barrier, active or not.
    pub cold_after_flushes: u32,
}

impl HibernationPolicy {
    /// A policy that hibernates streams idle for `flushes` consecutive
    /// flush barriers.
    #[must_use]
    pub fn cold_after_flushes(flushes: u32) -> Self {
        Self {
            cold_after_flushes: flushes,
        }
    }
}

impl Default for HibernationPolicy {
    /// Hibernate after 4 recordless flush barriers — late enough that a
    /// stream bursting once per couple of flushes never thrashes, early
    /// enough that a mostly-cold fleet sheds its footprint within a handful
    /// of barriers.
    fn default() -> Self {
        Self::cold_after_flushes(4)
    }
}

/// A sleeping detector: its complete mutable state compressed to a compact
/// blob, plus the few counters queries need answered without waking it.
pub(crate) struct HibernatedDetector {
    /// The detector's wire-v4 ([`SnapshotEncoding::Binary`]) state value —
    /// windows and bucket rows ride as base64 binary frames inside the
    /// tree, so the blob is within a small factor of the raw state entropy
    /// rather than of the live buffer capacity. Held as the value tree, not
    /// re-serialized JSON text: JSON cannot represent non-finite floats
    /// (`±inf` accumulators from overflow-adversarial inputs become
    /// `null`), and the tier's contract is *bit*-exact rehydration.
    blob: serde::Value,
    /// The detector's stable name (identity for queries and snapshot
    /// validation).
    name: &'static str,
    /// Cached [`DriftDetector::drifts_detected`] at capture time, so stream
    /// queries are answered without waking the detector (the element count
    /// lives on the stream as `seq` and needs no cache).
    drifts_detected: u64,
}

impl HibernatedDetector {
    /// Compresses `detector`'s state, or `None` when the detector does not
    /// support state snapshots (custom detectors stay resident).
    pub(crate) fn capture(detector: &dyn DriftDetector) -> Option<Self> {
        let blob = detector.snapshot_state_encoded(SnapshotEncoding::Binary)?;
        Some(Self {
            blob,
            name: detector.name(),
            drifts_detected: detector.drifts_detected(),
        })
    }

    /// Re-assembles a sleeper from a persisted snapshot entry: the restore
    /// path that keeps a hibernated stream asleep instead of materializing
    /// its detector. Returns `None` when the entry's state does not carry
    /// the lifetime counters every shipped detector serializes (a custom
    /// detector's opaque state) — the caller then falls back to an awake
    /// restore, which is always correct.
    pub(crate) fn from_persisted(name: &'static str, state: &serde::Value) -> Option<Self> {
        let counter = |field: &str| match state.get(field) {
            Some(&serde::Value::UInt(n)) => Some(n),
            Some(&serde::Value::Int(n)) => u64::try_from(n).ok(),
            _ => None,
        };
        // Both lifetime counters must be present: their absence marks an
        // opaque custom-detector state this constructor cannot vouch for.
        counter("elements_seen")?;
        let drifts_detected = counter("drifts_detected")?;
        Some(Self {
            blob: state.clone(),
            name,
            drifts_detected,
        })
    }

    /// Decompresses the sleeper back into a live detector built from
    /// `spec`, bit-exact with the detector that was captured.
    ///
    /// # Errors
    ///
    /// [`EngineError::Hibernation`] when the spec cannot build (impossible
    /// for blobs this engine captured — the stream ran that very spec) or
    /// the blob does not restore (possible only for a corrupted persisted
    /// snapshot that was restored asleep, i.e. unvalidated).
    pub(crate) fn wake(
        &self,
        stream: u64,
        spec: &DetectorSpec,
    ) -> Result<Box<dyn DriftDetector + Send>, EngineError> {
        let err = |message: String| EngineError::Hibernation { stream, message };
        let mut detector = spec
            .build()
            .map_err(|e| err(format!("rebuilding `{spec}`: {e}")))?;
        detector
            .restore_state(&self.blob)
            .map_err(|e| err(format!("restoring hibernated state: {e}")))?;
        Ok(detector)
    }

    /// The blob's state value tree — how a sleeping stream embeds itself in
    /// an engine snapshot without waking.
    pub(crate) fn state_value(&self) -> serde::Value {
        self.blob.clone()
    }

    /// The detector's stable name.
    pub(crate) fn name(&self) -> &'static str {
        self.name
    }

    /// Cached lifetime drift count.
    pub(crate) fn drifts_detected(&self) -> u64 {
        self.drifts_detected
    }

    /// Heap bytes held by the compressed state blob (the value tree's
    /// strings, arrays and objects — base64 frames dominate).
    pub(crate) fn blob_bytes(&self) -> usize {
        value_heap_bytes(&self.blob)
    }
}

/// Approximate heap footprint of a state value tree: container capacities
/// plus string capacities, recursively.
fn value_heap_bytes(value: &serde::Value) -> usize {
    use serde::Value;
    match value {
        Value::Null | Value::Bool(_) | Value::Int(_) | Value::UInt(_) | Value::Float(_) => 0,
        Value::Str(s) => s.capacity(),
        Value::Array(items) => {
            items.capacity() * std::mem::size_of::<Value>()
                + items.iter().map(value_heap_bytes).sum::<usize>()
        }
        Value::Object(fields) => {
            fields.capacity() * std::mem::size_of::<(String, Value)>()
                + fields
                    .iter()
                    .map(|(key, v)| key.capacity() + value_heap_bytes(v))
                    .sum::<usize>()
        }
    }
}

/// The detector slot of a stream: resident or compressed.
pub(crate) enum DetectorSlot {
    /// A fully materialized detector.
    Live(Box<dyn DriftDetector + Send>),
    /// A compressed sleeper.
    Hibernated(HibernatedDetector),
}

impl DetectorSlot {
    /// `true` when the slot holds a compressed sleeper.
    pub(crate) fn is_hibernated(&self) -> bool {
        matches!(self, DetectorSlot::Hibernated(_))
    }

    /// The detector's stable name, answered without waking.
    pub(crate) fn name(&self) -> &'static str {
        match self {
            DetectorSlot::Live(d) => d.name(),
            DetectorSlot::Hibernated(h) => h.name(),
        }
    }

    /// Lifetime drift count, answered without waking.
    pub(crate) fn drifts_detected(&self) -> u64 {
        match self {
            DetectorSlot::Live(d) => d.drifts_detected(),
            DetectorSlot::Hibernated(h) => h.drifts_detected(),
        }
    }

    /// Resident bytes of this slot: the live detector's
    /// [`DriftDetector::mem_footprint`], or the sleeper's bookkeeping plus
    /// its blob.
    pub(crate) fn mem_bytes(&self) -> usize {
        match self {
            DetectorSlot::Live(d) => d.mem_footprint(),
            DetectorSlot::Hibernated(h) => std::mem::size_of::<Self>() + h.blob_bytes(),
        }
    }

    /// Bytes held in a hibernated blob (0 for a live detector).
    pub(crate) fn hibernated_bytes(&self) -> usize {
        match self {
            DetectorSlot::Live(_) => 0,
            DetectorSlot::Hibernated(h) => h.blob_bytes(),
        }
    }
}
