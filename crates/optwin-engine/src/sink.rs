//! Pluggable event sinks: where detections go once the engine finds them.
//!
//! The service-style engine decouples *detecting* drifts from *consuming*
//! them. Worker threads push every [`DriftEvent`] through the [`EventSink`]s
//! configured on the [`crate::EngineBuilder`], so detections can fan out to
//! alerting, storage or in-process consumers without the submitting thread
//! ever seeing them. Three implementations ship with the crate:
//!
//! * [`MemorySink`] — buffers events in memory for later draining. This
//!   preserves the collect-and-return semantics of the synchronous
//!   [`crate::DriftEngine`] API and is what the evaluation harness uses.
//! * [`JsonLinesSink`] — serializes each event as one JSON object per line
//!   to any `Write` target (a file, stdout, a socket), the standard
//!   interchange shape for log shippers.
//! * [`CallbackSink`] — invokes an arbitrary closure per event, the hook for
//!   custom alerting buses.
//!
//! Ordering guarantee: a sink observes any single stream's events in
//! increasing sequence order (each stream is owned by exactly one worker),
//! but events of *different* streams interleave arbitrarily. Sinks must be
//! `Send + Sync`: every worker thread emits into the same sink instances.
//! `emit` is called from the hot path, so implementations should do bounded
//! work per event.

use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::event::DriftEvent;

/// A consumer of [`DriftEvent`]s, shared by all engine worker threads.
///
/// Implementations must **not call back into the emitting engine's own
/// [`crate::EngineHandle`]** (submit, flush, stats, rebalance, …) from
/// [`EventSink::emit`] or [`EventSink::flush`]: sinks run inline on the
/// worker threads, and a concurrent [`crate::EngineHandle::rebalance`]
/// excludes every handle operation while it waits for those same workers —
/// a reentrant call can deadlock the engine. Forward events to *another*
/// engine, a channel, or a buffer instead.
pub trait EventSink: Send + Sync {
    /// Consumes one event. Called by engine workers as soon as a detector
    /// fires; implementations must not block for long.
    fn emit(&self, event: &DriftEvent);

    /// Flushes any buffering the sink does. Called by
    /// [`crate::EngineHandle::flush`] and on shutdown after all queued
    /// records have been processed. The default does nothing.
    fn flush(&self) {}
}

/// Collects events in memory until the consumer drains them.
///
/// This is the sink behind the synchronous [`crate::DriftEngine`] facade:
/// `ingest_batch` submits, flushes, then [`MemorySink::drain`]s to return
/// the batch's events.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<DriftEvent>>,
}

impl MemorySink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes and returns all buffered events, in emission order.
    #[must_use]
    pub fn drain(&self) -> Vec<DriftEvent> {
        std::mem::take(&mut *self.lock())
    }

    /// Returns a copy of the buffered events without draining them.
    #[must_use]
    pub fn events(&self) -> Vec<DriftEvent> {
        self.lock().clone()
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no events are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<DriftEvent>> {
        // A panic while holding this lock leaves the buffer intact, so the
        // events are still meaningful: recover instead of propagating.
        self.events.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &DriftEvent) {
        self.lock().push(*event);
    }
}

/// Serializes each event as one compact JSON object per line.
pub struct JsonLinesSink {
    writer: Mutex<Box<dyn Write + Send>>,
    write_errors: AtomicUsize,
}

impl JsonLinesSink {
    /// Wraps an arbitrary writer (a `Vec<u8>`, a socket, `io::stdout()`...).
    /// Unbuffered targets should be wrapped in an `io::BufWriter` first.
    pub fn new<W: Write + Send + 'static>(writer: W) -> Self {
        Self {
            writer: Mutex::new(Box::new(writer)),
            write_errors: AtomicUsize::new(0),
        }
    }

    /// Creates (truncating) a file at `path` and writes events to it through
    /// a buffer.
    ///
    /// # Errors
    ///
    /// Returns the `io::Error` from creating the file.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(io::BufWriter::new(file)))
    }

    /// Number of events that could not be written. `emit` cannot surface
    /// errors to the hot path, so failures are counted instead of panicking;
    /// consumers should check this after `flush`.
    #[must_use]
    pub fn write_errors(&self) -> usize {
        self.write_errors.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Box<dyn Write + Send>> {
        self.writer.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl EventSink for JsonLinesSink {
    fn emit(&self, event: &DriftEvent) {
        let Ok(json) = serde_json::to_string(event) else {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let mut writer = self.lock();
        if writeln!(writer, "{json}").is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        if self.lock().flush().is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSink")
            .field("write_errors", &self.write_errors())
            .finish_non_exhaustive()
    }
}

/// Invokes a closure for every event — the hook for custom alerting buses.
pub struct CallbackSink {
    callback: Box<dyn Fn(&DriftEvent) + Send + Sync>,
}

impl CallbackSink {
    /// Wraps the given callback. It is invoked from engine worker threads,
    /// potentially from several at once, so it must be `Send + Sync`.
    pub fn new<F: Fn(&DriftEvent) + Send + Sync + 'static>(callback: F) -> Self {
        Self {
            callback: Box::new(callback),
        }
    }
}

impl EventSink for CallbackSink {
    fn emit(&self, event: &DriftEvent) {
        (self.callback)(event);
    }
}

impl std::fmt::Debug for CallbackSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CallbackSink").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optwin_core::DriftStatus;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn event(stream: u64, seq: u64) -> DriftEvent {
        DriftEvent {
            stream,
            seq,
            status: DriftStatus::Drift,
        }
    }

    #[test]
    fn memory_sink_collects_and_drains() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.emit(&event(1, 5));
        sink.emit(&event(2, 9));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events().len(), 2);
        let drained = sink.drain();
        assert_eq!(drained, vec![event(1, 5), event(2, 9)]);
        assert!(sink.is_empty());
        sink.flush(); // no-op default
    }

    #[test]
    fn json_lines_sink_writes_one_object_per_line() {
        // Shared buffer we can inspect after the sink is done with it.
        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let buf = SharedBuf::default();
        let sink = JsonLinesSink::new(buf.clone());
        sink.emit(&event(7, 100));
        sink.emit(&DriftEvent {
            stream: 7,
            seq: 101,
            status: DriftStatus::Warning,
        });
        sink.flush();
        assert_eq!(sink.write_errors(), 0);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: DriftEvent = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first, event(7, 100));
        assert!(lines[1].contains("\"Warning\""));
    }

    #[test]
    fn json_lines_sink_counts_write_failures() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("broken pipe"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Err(io::Error::other("broken pipe"))
            }
        }
        let sink = JsonLinesSink::new(Broken);
        sink.emit(&event(1, 1));
        sink.flush();
        assert_eq!(sink.write_errors(), 2);
        assert!(format!("{sink:?}").contains("write_errors"));
    }

    #[test]
    fn callback_sink_invokes_closure() {
        let count = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&count);
        let sink = CallbackSink::new(move |e| {
            seen.fetch_add(e.seq, Ordering::Relaxed);
        });
        sink.emit(&event(3, 10));
        sink.emit(&event(3, 7));
        assert_eq!(count.load(Ordering::Relaxed), 17);
        assert!(format!("{sink:?}").contains("CallbackSink"));
    }

    #[test]
    fn sinks_are_object_safe_and_shareable() {
        let sinks: Vec<Arc<dyn EventSink>> = vec![
            Arc::new(MemorySink::new()),
            Arc::new(CallbackSink::new(|_| {})),
        ];
        for sink in &sinks {
            sink.emit(&event(1, 1));
            sink.flush();
        }
    }
}
