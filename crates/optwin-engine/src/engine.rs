//! Engine configuration, errors, and the synchronous [`DriftEngine`]
//! facade over the service-style API.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use optwin_baselines::DetectorSpec;
use optwin_core::DriftDetector;

use crate::builder::EngineBuilder;
use crate::event::DriftEvent;
use crate::handle::{DetectorSource, EngineHandle};
use crate::persist::EngineSnapshot;
use crate::sink::MemorySink;

/// Engine construction errors and ingestion-time failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A stream id was registered twice.
    DuplicateStream(u64),
    /// A record referenced a stream that is not registered and the engine
    /// has no detector factory.
    UnknownStream(u64),
    /// An engine was configured with zero shards.
    ZeroShards,
    /// An engine was configured with a zero-record queue capacity.
    ZeroQueueCapacity,
    /// `try_submit` found a target shard's queue at capacity; nothing was
    /// enqueued.
    QueueFull,
    /// The engine has shut down (or a worker died): no further work is
    /// accepted.
    ChannelClosed,
    /// Internal state was poisoned by a panicking thread.
    Poisoned,
    /// A snapshot was requested but a stream's detector does not implement
    /// state serialization.
    SnapshotUnsupported {
        /// The stream whose detector cannot be snapshotted.
        stream: u64,
        /// The detector's stable name.
        detector: String,
    },
    /// A persisted engine snapshot could not be restored.
    InvalidSnapshot(String),
    /// A [`optwin_baselines::DetectorSpec`] failed validation or could not
    /// be built into a detector.
    InvalidSpec(String),
    /// A fleet configuration file (JSON map of stream id → spec string)
    /// could not be read or parsed.
    InvalidFleetConfig(String),
    /// An auto-rebalance threshold was not a finite ratio above 1.0.
    InvalidRebalanceThreshold(String),
    /// A hibernated stream could not be rehydrated (corrupt or mismatched
    /// state blob). The stream stays asleep; its pending records are
    /// dropped and the error is reported through the usual drain path.
    Hibernation {
        /// The stream that failed to wake.
        stream: u64,
        /// What went wrong.
        message: String,
    },
    /// A checkpoint or write-ahead-log I/O operation failed (disk full,
    /// permissions, a vanished directory). Distinct from
    /// [`EngineError::InvalidSnapshot`], which covers *reading* a damaged
    /// checkpoint directory: this one means the engine could not *write*
    /// durability data, so the loss window is no longer bounded.
    Checkpoint(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::DuplicateStream(id) => {
                write!(f, "stream {id} is already registered")
            }
            EngineError::UnknownStream(id) => write!(
                f,
                "stream {id} is not registered and the engine has no detector factory"
            ),
            EngineError::ZeroShards => write!(f, "engine needs at least one shard"),
            EngineError::ZeroQueueCapacity => {
                write!(f, "engine queue capacity must be at least one record")
            }
            EngineError::QueueFull => {
                write!(f, "a shard queue is at capacity; nothing was enqueued")
            }
            EngineError::ChannelClosed => {
                write!(f, "the engine has shut down and accepts no further work")
            }
            EngineError::Poisoned => {
                write!(f, "engine state was poisoned by a panicking worker thread")
            }
            EngineError::SnapshotUnsupported { stream, detector } => write!(
                f,
                "stream {stream}: detector `{detector}` does not support state snapshots"
            ),
            EngineError::InvalidSnapshot(message) => {
                write!(f, "invalid engine snapshot: {message}")
            }
            EngineError::InvalidSpec(message) => {
                write!(f, "invalid detector spec: {message}")
            }
            EngineError::InvalidFleetConfig(message) => {
                write!(f, "invalid fleet config: {message}")
            }
            EngineError::InvalidRebalanceThreshold(message) => {
                write!(f, "invalid auto-rebalance threshold: {message}")
            }
            EngineError::Hibernation { stream, message } => {
                write!(f, "stream {stream}: hibernation failure: {message}")
            }
            EngineError::Checkpoint(message) => {
                write!(f, "checkpoint failure: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Configuration for [`DriftEngine`] (and the starting point of
/// [`EngineBuilder::from_config`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of shards (≥ 1). Streams route to shard `id % shards` by
    /// default, until a restore or a [`crate::EngineHandle::rebalance`]
    /// pins them elsewhere; each shard is owned by one long-lived worker
    /// thread.
    pub shards: usize,
    /// Emit [`optwin_core::DriftStatus::Warning`] events in addition to
    /// drifts (default `false`: drifts only).
    pub emit_warnings: bool,
}

impl EngineConfig {
    /// A configuration with the given shard count and warnings disabled.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZeroShards`] if `shards` is zero.
    pub fn try_with_shards(shards: usize) -> Result<Self, EngineError> {
        if shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        Ok(Self {
            shards,
            emit_warnings: false,
        })
    }

    /// A configuration with the given shard count and warnings disabled.
    /// Convenience wrapper over [`EngineConfig::try_with_shards`].
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        Self::try_with_shards(shards).expect("engine needs at least one shard")
    }

    /// Enables or disables warning events.
    #[must_use]
    pub fn emit_warnings(mut self, emit: bool) -> Self {
        self.emit_warnings = emit;
        self
    }
}

impl Default for EngineConfig {
    /// One shard per available CPU core (minus nothing — shards are cheap),
    /// warnings disabled.
    fn default() -> Self {
        let shards = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        Self {
            shards,
            emit_warnings: false,
        }
    }
}

/// Read-only view of one stream's lifetime statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSnapshot {
    /// The stream id.
    pub stream: u64,
    /// The shard the stream currently lives on (may change across
    /// [`crate::EngineHandle::rebalance`] calls).
    pub shard: usize,
    /// Elements ingested so far.
    pub elements: u64,
    /// Drifts the stream's detector has flagged.
    pub drifts: u64,
    /// Wall-clock seconds spent inside the detector.
    pub detector_seconds: f64,
    /// The detector's stable name (e.g. `"OPTWIN"`).
    pub detector: &'static str,
    /// The [`optwin_baselines::DetectorSpec`] the stream was registered
    /// with, when registered declaratively (`None` for explicit-instance and
    /// closure-factory streams).
    pub spec: Option<optwin_baselines::DetectorSpec>,
    /// Whether the stream is currently hibernated: its detector compressed
    /// to a state blob, to be rehydrated transparently on the next record
    /// (see [`crate::HibernationPolicy`]).
    pub hibernated: bool,
    /// Resident bytes this stream currently costs: the live detector's
    /// [`optwin_core::DriftDetector::mem_footprint`], or the hibernated
    /// blob plus its bookkeeping.
    pub mem_bytes: usize,
}

thread_local! {
    /// Scratch record buffer for [`DriftEngine::ingest_stream`], reused
    /// across calls so the single-stream convenience path does not allocate
    /// a fresh buffer per invocation.
    static INGEST_SCRATCH: RefCell<Vec<(u64, f64)>> = const { RefCell::new(Vec::new()) };
}

/// The synchronous facade over the service-style engine: a sharded
/// collection of independent drift detectors fed by batches of
/// `(stream id, value)` records, returning each batch's events in-line.
///
/// Internally this is nothing but an [`EngineHandle`] paired with a
/// [`MemorySink`]: `ingest_batch` = `submit` + `flush` + drain. Callers that
/// want pipelining (submit without waiting), fan-out to other sinks, or
/// snapshot/restore should use [`EngineBuilder`] directly — or grab this
/// engine's own handle via [`DriftEngine::handle`].
pub struct DriftEngine {
    handle: EngineHandle,
    sink: Arc<MemorySink>,
    source: Option<DetectorSource>,
    /// Stream ids known to be registered, maintained so the factory-less
    /// `ingest_batch` validation is an O(1) set lookup per record instead of
    /// a per-call all-shard query. Ids registered behind the facade's back
    /// (through a raw [`DriftEngine::handle`] clone) are discovered lazily
    /// via a targeted per-id query on first sight.
    known_streams: HashSet<u64>,
}

impl fmt::Debug for DriftEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DriftEngine")
            .field("config", &self.handle.config())
            .field("has_factory", &self.source.is_some())
            .finish()
    }
}

impl DriftEngine {
    /// Creates an engine whose streams must all be registered explicitly via
    /// [`DriftEngine::register_stream`].
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        Self::with_parts(config, None)
    }

    /// Creates an engine that builds a detector through `factory` the first
    /// time a record for an unknown stream id arrives.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero.
    #[must_use]
    pub fn with_factory<F>(config: EngineConfig, factory: F) -> Self
    where
        F: Fn(u64) -> Box<dyn DriftDetector + Send> + Send + Sync + 'static,
    {
        Self::with_parts(config, Some(DetectorSource::Closure(Arc::new(factory))))
    }

    /// Creates an engine that builds every unknown stream's detector from
    /// `spec` (the declarative counterpart of [`DriftEngine::with_factory`];
    /// streams so created record their spec for introspection and
    /// self-describing snapshots).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidSpec`] when the spec's parameters are
    /// out of range, or [`EngineError::ZeroShards`] for a zero shard count.
    pub fn with_default_spec(
        config: EngineConfig,
        spec: DetectorSpec,
    ) -> Result<Self, EngineError> {
        if config.shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        spec.validate()
            .map_err(|e| EngineError::InvalidSpec(e.to_string()))?;
        Ok(Self::with_parts(config, Some(DetectorSource::Spec(spec))))
    }

    fn with_parts(config: EngineConfig, source: Option<DetectorSource>) -> Self {
        assert!(config.shards > 0, "engine needs at least one shard");
        let sink = Arc::new(MemorySink::new());
        let mut builder =
            EngineBuilder::from_config(config).sink(Arc::clone(&sink) as Arc<dyn crate::EventSink>);
        if let Some(source) = source.clone() {
            builder = builder.detector_source(source);
        }
        let handle = builder
            .build()
            .expect("a validated config cannot fail to build");
        Self {
            handle,
            sink,
            source,
            known_streams: HashSet::new(),
        }
    }

    /// A clone of the underlying [`EngineHandle`], for callers that want to
    /// mix the blocking facade with non-blocking submission or
    /// snapshotting. Note that events keep flowing into this engine's
    /// internal [`MemorySink`] (and are returned by the next
    /// [`DriftEngine::ingest_batch`] call) no matter who submitted them.
    #[must_use]
    pub fn handle(&self) -> EngineHandle {
        self.handle.clone()
    }

    /// Registers a stream with an explicit detector instance.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DuplicateStream`] if the id is already
    /// registered.
    pub fn register_stream(
        &mut self,
        stream: u64,
        detector: Box<dyn DriftDetector + Send>,
    ) -> Result<(), EngineError> {
        self.handle.register_stream(stream, detector)?;
        self.known_streams.insert(stream);
        Ok(())
    }

    /// `true` when `stream` is registered, updating the local known-id cache
    /// (one targeted shard query on a cache miss).
    fn ensure_known(&mut self, stream: u64) -> Result<bool, EngineError> {
        if self.known_streams.contains(&stream) {
            return Ok(true);
        }
        if self.handle.stream_stats(stream)?.is_some() {
            self.known_streams.insert(stream);
            return Ok(true);
        }
        Ok(false)
    }

    /// `true` when the stream id is registered.
    #[must_use]
    pub fn contains_stream(&self, stream: u64) -> bool {
        matches!(self.handle.stream_stats(stream), Ok(Some(_)))
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.handle.num_shards()
    }

    /// Number of registered streams.
    #[must_use]
    pub fn stream_count(&self) -> usize {
        self.handle.stats().map_or(0, |s| s.streams)
    }

    /// Total elements ingested across all streams.
    #[must_use]
    pub fn elements_ingested(&self) -> u64 {
        self.handle.stats().map_or(0, |s| s.elements)
    }

    /// Total drifts flagged across all streams.
    #[must_use]
    pub fn drifts_detected(&self) -> u64 {
        self.handle.stats().map_or(0, |s| s.drifts)
    }

    /// Lifetime statistics for one stream, if registered.
    #[must_use]
    pub fn stream_snapshot(&self, stream: u64) -> Option<StreamSnapshot> {
        self.handle.stream_stats(stream).ok().flatten()
    }

    /// All registered stream ids (sorted).
    pub fn stream_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.handle
            .stream_snapshots()
            .unwrap_or_default()
            .into_iter()
            .map(|s| s.stream)
    }

    /// Serializes the state of every stream for later restoration through
    /// [`EngineBuilder::restore`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::SnapshotUnsupported`] when any stream's
    /// detector does not implement state serialization.
    pub fn snapshot(&self) -> Result<EngineSnapshot, EngineError> {
        self.handle.snapshot()
    }

    /// [`DriftEngine::snapshot`] in the v4 compact binary layout (see
    /// [`crate::EngineHandle::snapshot_compact`]).
    ///
    /// # Errors
    ///
    /// As [`DriftEngine::snapshot`].
    pub fn snapshot_compact(&self) -> Result<EngineSnapshot, EngineError> {
        self.handle.snapshot_compact()
    }

    /// Ingests a batch of `(stream id, value)` records and returns the
    /// events it produced, sorted by `(stream, seq)`.
    ///
    /// This is the blocking wrapper over the service API: the records are
    /// submitted to the shard workers (which process them in parallel), a
    /// flush barrier waits for completion, and the internal [`MemorySink`]
    /// is drained. Per-stream record order is preserved and the output is
    /// fully deterministic regardless of thread scheduling.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownStream`] when a record references an
    /// unregistered stream and no factory is configured. No records are
    /// ingested in that case.
    pub fn ingest_batch(&mut self, records: &[(u64, f64)]) -> Result<Vec<DriftEvent>, EngineError> {
        if self.source.is_none() {
            // Preserve the all-or-nothing contract: validate before
            // submitting anything. The known-id cache makes this O(1) per
            // record; only ids never seen before cost a shard query.
            for &(stream, _) in records {
                if !self.ensure_known(stream)? {
                    return Err(EngineError::UnknownStream(stream));
                }
            }
        }
        self.handle.submit(records)?;
        self.handle.flush()?;
        let mut events = self.sink.drain();
        events.sort_unstable_by_key(|e| (e.stream, e.seq));
        Ok(events)
    }

    /// Convenience: ingests a contiguous slice of values for one stream,
    /// staging the records in a thread-local scratch buffer that is reused
    /// across calls.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DriftEngine::ingest_batch`].
    pub fn ingest_stream(
        &mut self,
        stream: u64,
        values: &[f64],
    ) -> Result<Vec<DriftEvent>, EngineError> {
        if values.is_empty() {
            // Historical contract: an empty call still registers the stream
            // (through the default detector source if needed) or reports it
            // unknown.
            if self.ensure_known(stream)? {
                return Ok(Vec::new());
            }
            return match self.source.clone() {
                Some(DetectorSource::Closure(factory)) => {
                    self.register_stream(stream, factory(stream))?;
                    Ok(Vec::new())
                }
                Some(DetectorSource::Spec(spec)) => {
                    self.handle.register_stream_spec(stream, spec)?;
                    self.known_streams.insert(stream);
                    Ok(Vec::new())
                }
                None => Err(EngineError::UnknownStream(stream)),
            };
        }
        INGEST_SCRATCH.with(|scratch| {
            let mut records = scratch.borrow_mut();
            records.clear();
            records.extend(values.iter().map(|&value| (stream, value)));
            self.ingest_batch(&records)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optwin_core::DriftStatus;

    /// Deterministic detector that fires every `period` elements.
    struct Periodic {
        period: u64,
        seen: u64,
        drifts: u64,
    }

    impl Periodic {
        fn boxed(period: u64) -> Box<dyn DriftDetector + Send> {
            Box::new(Periodic {
                period,
                seen: 0,
                drifts: 0,
            })
        }
    }

    impl DriftDetector for Periodic {
        fn add_element(&mut self, _value: f64) -> DriftStatus {
            self.seen += 1;
            if self.seen.is_multiple_of(self.period) {
                self.drifts += 1;
                DriftStatus::Drift
            } else if self.seen % self.period == self.period - 1 {
                DriftStatus::Warning
            } else {
                DriftStatus::Stable
            }
        }
        fn reset(&mut self) {}
        fn name(&self) -> &'static str {
            "periodic"
        }
        fn elements_seen(&self) -> u64 {
            self.seen
        }
        fn drifts_detected(&self) -> u64 {
            self.drifts
        }
    }

    #[test]
    fn events_carry_per_stream_sequence_numbers() {
        let mut engine = DriftEngine::new(EngineConfig::with_shards(4));
        engine.register_stream(0, Periodic::boxed(10)).unwrap();
        engine.register_stream(1, Periodic::boxed(25)).unwrap();

        // Interleave the two streams over several batches.
        let mut events = Vec::new();
        for batch in 0..5 {
            let mut records = Vec::new();
            for _ in 0..20 {
                records.push((0u64, 0.0));
                records.push((1u64, 0.0));
            }
            let got = engine.ingest_batch(&records).unwrap();
            let _ = batch;
            events.extend(got);
        }
        // Stream 0: 100 elements, drift at seq 9, 19, ...; stream 1: drifts
        // at 24, 49, 74, 99.
        let s0: Vec<u64> = events
            .iter()
            .filter(|e| e.stream == 0)
            .map(|e| e.seq)
            .collect();
        let s1: Vec<u64> = events
            .iter()
            .filter(|e| e.stream == 1)
            .map(|e| e.seq)
            .collect();
        assert_eq!(s0, vec![9, 19, 29, 39, 49, 59, 69, 79, 89, 99]);
        assert_eq!(s1, vec![24, 49, 74, 99]);
        assert_eq!(engine.elements_ingested(), 200);
        assert_eq!(engine.drifts_detected(), 14);
    }

    #[test]
    fn sharded_and_single_shard_engines_agree() {
        let build = || {
            let mut records = Vec::new();
            for i in 0..500u64 {
                for stream in 0..16u64 {
                    let _ = i;
                    records.push((stream, 0.0));
                }
            }
            records
        };
        let run = |shards: usize| {
            let mut engine =
                DriftEngine::with_factory(EngineConfig::with_shards(shards), |stream| {
                    Periodic::boxed(7 + stream % 5)
                });
            let mut events = Vec::new();
            for batch in build().chunks(97) {
                events.extend(engine.ingest_batch(batch).unwrap());
            }
            events
        };
        assert_eq!(run(1), run(4));
        assert_eq!(run(4), run(16));
    }

    #[test]
    fn warnings_are_opt_in() {
        let mut quiet = DriftEngine::new(EngineConfig::with_shards(2));
        quiet.register_stream(5, Periodic::boxed(10)).unwrap();
        let mut chatty = DriftEngine::new(EngineConfig::with_shards(2).emit_warnings(true));
        chatty.register_stream(5, Periodic::boxed(10)).unwrap();

        let records: Vec<(u64, f64)> = (0..30).map(|_| (5u64, 0.0)).collect();
        let quiet_events = quiet.ingest_batch(&records).unwrap();
        let chatty_events = chatty.ingest_batch(&records).unwrap();
        assert!(quiet_events.iter().all(DriftEvent::is_drift));
        assert_eq!(quiet_events.len(), 3);
        assert_eq!(chatty_events.iter().filter(|e| e.is_drift()).count(), 3);
        assert_eq!(chatty_events.iter().filter(|e| !e.is_drift()).count(), 3);
        // Warning precedes its drift at seq 8/9, 18/19, 28/29.
        assert_eq!(chatty_events[0].seq, 8);
        assert!(!chatty_events[0].is_drift());
        assert_eq!(chatty_events[1].seq, 9);
        assert!(chatty_events[1].is_drift());
    }

    #[test]
    fn unknown_stream_without_factory_is_an_error() {
        let mut engine = DriftEngine::new(EngineConfig::with_shards(2));
        let err = engine.ingest_batch(&[(42, 0.5)]).unwrap_err();
        assert_eq!(err, EngineError::UnknownStream(42));
        assert_eq!(engine.elements_ingested(), 0);

        engine.register_stream(42, Periodic::boxed(5)).unwrap();
        let err = engine.register_stream(42, Periodic::boxed(5)).unwrap_err();
        assert_eq!(err, EngineError::DuplicateStream(42));
        assert!(err.to_string().contains("42"));
    }

    #[test]
    fn factory_creates_streams_on_first_sight() {
        let mut engine =
            DriftEngine::with_factory(EngineConfig::with_shards(3), |_| Periodic::boxed(100));
        assert_eq!(engine.stream_count(), 0);
        engine
            .ingest_batch(&[(1, 0.0), (2, 0.0), (1, 0.0)])
            .unwrap();
        assert_eq!(engine.stream_count(), 2);
        assert!(engine.contains_stream(1));
        assert!(engine.contains_stream(2));
        assert!(!engine.contains_stream(3));
        let snap = engine.stream_snapshot(1).unwrap();
        assert_eq!(snap.elements, 2);
        assert_eq!(snap.drifts, 0);
        assert_eq!(snap.detector, "periodic");
        assert!(snap.detector_seconds >= 0.0);
        assert_eq!(engine.stream_snapshot(99), None);
        let ids: Vec<u64> = engine.stream_ids().collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn ingest_stream_matches_ingest_batch() {
        let mut a = DriftEngine::new(EngineConfig::with_shards(2).emit_warnings(true));
        a.register_stream(7, Periodic::boxed(10)).unwrap();
        let mut b = DriftEngine::new(EngineConfig::with_shards(2).emit_warnings(true));
        b.register_stream(7, Periodic::boxed(10)).unwrap();

        let values = vec![0.0; 45];
        let records: Vec<(u64, f64)> = values.iter().map(|&v| (7u64, v)).collect();
        let via_stream = a.ingest_stream(7, &values).unwrap();
        let via_batch = b.ingest_batch(&records).unwrap();
        assert_eq!(via_stream, via_batch);
        assert_eq!(a.elements_ingested(), b.elements_ingested());
    }

    #[test]
    fn facade_discovers_streams_registered_through_a_raw_handle() {
        let mut engine = DriftEngine::new(EngineConfig::with_shards(2));
        let handle = engine.handle();
        handle.register_stream(11, Periodic::boxed(5)).unwrap();
        // The facade's known-id cache has never seen id 11; validation must
        // discover it through a targeted query rather than erroring.
        let events = engine.ingest_batch(&[(11, 0.0); 5]).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(engine.elements_ingested(), 5);
        // Cached now: a second batch works without re-querying, and
        // genuinely unknown ids still error.
        assert_eq!(engine.ingest_batch(&[(11, 0.0); 5]).unwrap().len(), 1);
        assert_eq!(
            engine.ingest_batch(&[(12, 0.0)]).unwrap_err(),
            EngineError::UnknownStream(12)
        );
    }

    #[test]
    fn ingest_stream_empty_call_still_registers() {
        let mut engine =
            DriftEngine::with_factory(EngineConfig::with_shards(2), |_| Periodic::boxed(5));
        assert_eq!(engine.ingest_stream(9, &[]).unwrap(), Vec::new());
        assert!(engine.contains_stream(9));
        assert_eq!(engine.elements_ingested(), 0);
        // Second empty call is a no-op.
        assert_eq!(engine.ingest_stream(9, &[]).unwrap(), Vec::new());

        let mut bare = DriftEngine::new(EngineConfig::with_shards(2));
        assert_eq!(
            bare.ingest_stream(3, &[]).unwrap_err(),
            EngineError::UnknownStream(3)
        );
    }

    #[test]
    fn default_config_is_usable() {
        let config = EngineConfig::default();
        assert!(config.shards >= 1);
        let engine = DriftEngine::new(config);
        assert_eq!(engine.num_shards(), config.shards);
        assert!(format!("{engine:?}").contains("DriftEngine"));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = EngineConfig::with_shards(0);
    }

    #[test]
    fn try_with_shards_is_fallible() {
        assert_eq!(
            EngineConfig::try_with_shards(0),
            Err(EngineError::ZeroShards)
        );
        let config = EngineConfig::try_with_shards(3).unwrap();
        assert_eq!(config.shards, 3);
        assert!(!config.emit_warnings);
    }

    #[test]
    fn error_display_messages() {
        let cases: Vec<(EngineError, &str)> = vec![
            (EngineError::DuplicateStream(7), "already registered"),
            (EngineError::UnknownStream(9), "no detector factory"),
            (EngineError::ZeroShards, "at least one shard"),
            (EngineError::ZeroQueueCapacity, "at least one record"),
            (EngineError::QueueFull, "nothing was enqueued"),
            (EngineError::ChannelClosed, "shut down"),
            (EngineError::Poisoned, "poisoned"),
            (
                EngineError::SnapshotUnsupported {
                    stream: 4,
                    detector: "ADWIN".to_string(),
                },
                "ADWIN",
            ),
            (
                EngineError::InvalidSnapshot("bad version".to_string()),
                "bad version",
            ),
            (
                EngineError::InvalidSpec("`delta` must lie in (0, 1)".to_string()),
                "delta",
            ),
            (
                EngineError::InvalidFleetConfig("expected a JSON object".to_string()),
                "fleet config",
            ),
            (
                EngineError::InvalidRebalanceThreshold("got 0.5".to_string()),
                "0.5",
            ),
            (
                EngineError::Hibernation {
                    stream: 11,
                    message: "blob truncated".to_string(),
                },
                "blob truncated",
            ),
            (
                EngineError::Checkpoint("disk full".to_string()),
                "disk full",
            ),
        ];
        for (error, needle) in cases {
            let text = error.to_string();
            assert!(text.contains(needle), "`{text}` missing `{needle}`");
            // std::error::Error is implemented.
            let _: &dyn std::error::Error = &error;
        }
    }
}
