//! The sharded multi-stream engine.

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

use optwin_core::{DriftDetector, DriftStatus};

use crate::event::DriftEvent;

/// Builds a detector for a newly seen stream id.
pub type DetectorFactory = Box<dyn Fn(u64) -> Box<dyn DriftDetector + Send> + Send>;

/// Engine construction errors and ingestion-time failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A stream id was registered twice.
    DuplicateStream(u64),
    /// A record referenced a stream that is not registered and the engine
    /// has no detector factory.
    UnknownStream(u64),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::DuplicateStream(id) => {
                write!(f, "stream {id} is already registered")
            }
            EngineError::UnknownStream(id) => write!(
                f,
                "stream {id} is not registered and the engine has no detector factory"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Configuration for [`DriftEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of shards (≥ 1). Streams are pinned to shard `id % shards`;
    /// each `ingest_batch` call runs the non-empty shards in parallel.
    pub shards: usize,
    /// Emit [`DriftStatus::Warning`] events in addition to drifts (default
    /// `false`: drifts only).
    pub emit_warnings: bool,
}

impl EngineConfig {
    /// A configuration with the given shard count and warnings disabled.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "engine needs at least one shard");
        Self {
            shards,
            emit_warnings: false,
        }
    }

    /// Enables or disables warning events.
    #[must_use]
    pub fn emit_warnings(mut self, emit: bool) -> Self {
        self.emit_warnings = emit;
        self
    }
}

impl Default for EngineConfig {
    /// One shard per available CPU core (minus nothing — shards are cheap),
    /// warnings disabled.
    fn default() -> Self {
        let shards = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        Self {
            shards,
            emit_warnings: false,
        }
    }
}

/// Per-stream state owned by exactly one shard.
struct StreamState {
    detector: Box<dyn DriftDetector + Send>,
    /// Elements ingested for this stream so far (the next element's sequence
    /// number).
    seq: u64,
    /// Wall-clock seconds spent inside the detector for this stream.
    seconds: f64,
    /// Values staged for the current batch (reused across batches).
    staged: Vec<f64>,
}

/// A shard: a disjoint set of streams processed sequentially by one thread.
#[derive(Default)]
struct Shard {
    streams: HashMap<u64, StreamState>,
    /// First-seen order of the streams staged in the current batch.
    batch_order: Vec<u64>,
}

impl Shard {
    /// Stages `records` (all belonging to this shard) and runs every staged
    /// stream's detector through its batch path, returning the events.
    fn process(&mut self, records: &[(u64, f64)], emit_warnings: bool) -> Vec<DriftEvent> {
        self.batch_order.clear();
        for &(stream, value) in records {
            let state = self
                .streams
                .get_mut(&stream)
                .expect("validated by the engine");
            if state.staged.is_empty() {
                self.batch_order.push(stream);
            }
            state.staged.push(value);
        }

        let mut events = Vec::new();
        for &stream in &self.batch_order {
            let state = self.streams.get_mut(&stream).expect("staged above");
            let started = Instant::now();
            let outcome = state.detector.add_batch(&state.staged);
            state.seconds += started.elapsed().as_secs_f64();

            events.extend(outcome.drift_indices.iter().map(|&i| DriftEvent {
                stream,
                seq: state.seq + i as u64,
                status: DriftStatus::Drift,
            }));
            if emit_warnings {
                events.extend(outcome.warning_indices.iter().map(|&i| DriftEvent {
                    stream,
                    seq: state.seq + i as u64,
                    status: DriftStatus::Warning,
                }));
            }
            state.seq += state.staged.len() as u64;
            state.staged.clear();
        }
        events
    }
}

/// Read-only view of one stream's lifetime statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSnapshot {
    /// The stream id.
    pub stream: u64,
    /// Elements ingested so far.
    pub elements: u64,
    /// Drifts the stream's detector has flagged.
    pub drifts: u64,
    /// Wall-clock seconds spent inside the detector.
    pub detector_seconds: f64,
    /// The detector's stable name (e.g. `"OPTWIN"`).
    pub detector: &'static str,
}

/// A sharded collection of independent drift detectors fed by batches of
/// `(stream id, value)` records. See the crate docs for the architecture.
pub struct DriftEngine {
    config: EngineConfig,
    shards: Vec<Shard>,
    factory: Option<DetectorFactory>,
    /// Per-shard record staging buffers, reused across `ingest_batch` calls.
    partitions: Vec<Vec<(u64, f64)>>,
}

impl fmt::Debug for DriftEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DriftEngine")
            .field("config", &self.config)
            .field("streams", &self.stream_count())
            .field("has_factory", &self.factory.is_some())
            .finish()
    }
}

impl DriftEngine {
    /// Creates an engine whose streams must all be registered explicitly via
    /// [`DriftEngine::register_stream`].
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.shards > 0, "engine needs at least one shard");
        Self {
            shards: (0..config.shards).map(|_| Shard::default()).collect(),
            partitions: (0..config.shards).map(|_| Vec::new()).collect(),
            factory: None,
            config,
        }
    }

    /// Creates an engine that builds a detector through `factory` the first
    /// time a record for an unknown stream id arrives.
    #[must_use]
    pub fn with_factory<F>(config: EngineConfig, factory: F) -> Self
    where
        F: Fn(u64) -> Box<dyn DriftDetector + Send> + Send + 'static,
    {
        let mut engine = Self::new(config);
        engine.factory = Some(Box::new(factory));
        engine
    }

    /// The shard a stream id is pinned to.
    #[inline]
    fn shard_of(&self, stream: u64) -> usize {
        (stream % self.shards.len() as u64) as usize
    }

    /// Registers a stream with an explicit detector instance.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DuplicateStream`] if the id is already
    /// registered.
    pub fn register_stream(
        &mut self,
        stream: u64,
        detector: Box<dyn DriftDetector + Send>,
    ) -> Result<(), EngineError> {
        let shard = self.shard_of(stream);
        let streams = &mut self.shards[shard].streams;
        if streams.contains_key(&stream) {
            return Err(EngineError::DuplicateStream(stream));
        }
        streams.insert(
            stream,
            StreamState {
                detector,
                seq: 0,
                seconds: 0.0,
                staged: Vec::new(),
            },
        );
        Ok(())
    }

    /// `true` when the stream id is registered.
    #[must_use]
    pub fn contains_stream(&self, stream: u64) -> bool {
        self.shards[self.shard_of(stream)]
            .streams
            .contains_key(&stream)
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of registered streams.
    #[must_use]
    pub fn stream_count(&self) -> usize {
        self.shards.iter().map(|s| s.streams.len()).sum()
    }

    /// Total elements ingested across all streams.
    #[must_use]
    pub fn elements_ingested(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.streams.values())
            .map(|state| state.seq)
            .sum()
    }

    /// Total drifts flagged across all streams.
    #[must_use]
    pub fn drifts_detected(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.streams.values())
            .map(|state| state.detector.drifts_detected())
            .sum()
    }

    /// Lifetime statistics for one stream, if registered.
    #[must_use]
    pub fn stream_snapshot(&self, stream: u64) -> Option<StreamSnapshot> {
        let state = self.shards[self.shard_of(stream)].streams.get(&stream)?;
        Some(StreamSnapshot {
            stream,
            elements: state.seq,
            drifts: state.detector.drifts_detected(),
            detector_seconds: state.seconds,
            detector: state.detector.name(),
        })
    }

    /// All registered stream ids (unordered).
    pub fn stream_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.shards.iter().flat_map(|s| s.streams.keys().copied())
    }

    /// Ensures every stream referenced by `records` exists, creating missing
    /// detectors through the factory.
    fn ensure_streams(&mut self, records: &[(u64, f64)]) -> Result<(), EngineError> {
        for &(stream, _) in records {
            if !self.contains_stream(stream) {
                let detector = match &self.factory {
                    Some(factory) => factory(stream),
                    None => return Err(EngineError::UnknownStream(stream)),
                };
                self.register_stream(stream, detector)?;
            }
        }
        Ok(())
    }

    /// Ingests a batch of `(stream id, value)` records.
    ///
    /// Records are partitioned onto the shards; non-empty shards run
    /// concurrently on scoped threads, each feeding its streams through the
    /// detectors' batch path. Per-stream record order is preserved; the
    /// returned events are sorted by `(stream, seq)` so the output is fully
    /// deterministic regardless of thread scheduling.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownStream`] when a record references an
    /// unregistered stream and no factory is configured. No records are
    /// ingested in that case.
    pub fn ingest_batch(&mut self, records: &[(u64, f64)]) -> Result<Vec<DriftEvent>, EngineError> {
        self.ensure_streams(records)?;

        let nshards = self.shards.len() as u64;
        for partition in &mut self.partitions {
            partition.clear();
        }
        for &record in records {
            self.partitions[(record.0 % nshards) as usize].push(record);
        }

        let emit_warnings = self.config.emit_warnings;
        let mut events: Vec<DriftEvent> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut inline: Option<(&mut Shard, &Vec<(u64, f64)>)> = None;
            for (shard, partition) in self.shards.iter_mut().zip(&self.partitions) {
                if partition.is_empty() {
                    continue;
                }
                // The first non-empty shard runs on the calling thread; the
                // rest are forked.
                match inline {
                    None => inline = Some((shard, partition)),
                    Some(_) => {
                        handles.push(scope.spawn(move || shard.process(partition, emit_warnings)));
                    }
                }
            }
            if let Some((shard, partition)) = inline {
                events.extend(shard.process(partition, emit_warnings));
            }
            for handle in handles {
                events.extend(handle.join().expect("shard thread panicked"));
            }
        });

        events.sort_unstable_by_key(|e| (e.stream, e.seq));
        Ok(events)
    }

    /// Convenience: ingests a contiguous slice of values for one stream.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DriftEngine::ingest_batch`].
    pub fn ingest_stream(
        &mut self,
        stream: u64,
        values: &[f64],
    ) -> Result<Vec<DriftEvent>, EngineError> {
        self.ensure_streams(&[(stream, 0.0)])?;
        let shard = self.shard_of(stream);
        let emit_warnings = self.config.emit_warnings;
        // Single-stream fast path: no partitioning, no thread scope.
        let state = self.shards[shard]
            .streams
            .get_mut(&stream)
            .expect("ensured above");
        let started = Instant::now();
        let outcome = state.detector.add_batch(values);
        state.seconds += started.elapsed().as_secs_f64();
        let base = state.seq;
        state.seq += values.len() as u64;
        let mut events: Vec<DriftEvent> = outcome
            .drift_indices
            .iter()
            .map(|&i| DriftEvent {
                stream,
                seq: base + i as u64,
                status: DriftStatus::Drift,
            })
            .collect();
        if emit_warnings {
            events.extend(outcome.warning_indices.iter().map(|&i| DriftEvent {
                stream,
                seq: base + i as u64,
                status: DriftStatus::Warning,
            }));
            events.sort_unstable_by_key(|e| e.seq);
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic detector that fires every `period` elements.
    struct Periodic {
        period: u64,
        seen: u64,
        drifts: u64,
    }

    impl Periodic {
        fn boxed(period: u64) -> Box<dyn DriftDetector + Send> {
            Box::new(Periodic {
                period,
                seen: 0,
                drifts: 0,
            })
        }
    }

    impl DriftDetector for Periodic {
        fn add_element(&mut self, _value: f64) -> DriftStatus {
            self.seen += 1;
            if self.seen.is_multiple_of(self.period) {
                self.drifts += 1;
                DriftStatus::Drift
            } else if self.seen % self.period == self.period - 1 {
                DriftStatus::Warning
            } else {
                DriftStatus::Stable
            }
        }
        fn reset(&mut self) {}
        fn name(&self) -> &'static str {
            "periodic"
        }
        fn elements_seen(&self) -> u64 {
            self.seen
        }
        fn drifts_detected(&self) -> u64 {
            self.drifts
        }
    }

    #[test]
    fn events_carry_per_stream_sequence_numbers() {
        let mut engine = DriftEngine::new(EngineConfig::with_shards(4));
        engine.register_stream(0, Periodic::boxed(10)).unwrap();
        engine.register_stream(1, Periodic::boxed(25)).unwrap();

        // Interleave the two streams over several batches.
        let mut events = Vec::new();
        for batch in 0..5 {
            let mut records = Vec::new();
            for _ in 0..20 {
                records.push((0u64, 0.0));
                records.push((1u64, 0.0));
            }
            let got = engine.ingest_batch(&records).unwrap();
            let _ = batch;
            events.extend(got);
        }
        // Stream 0: 100 elements, drift at seq 9, 19, ...; stream 1: drifts
        // at 24, 49, 74, 99.
        let s0: Vec<u64> = events
            .iter()
            .filter(|e| e.stream == 0)
            .map(|e| e.seq)
            .collect();
        let s1: Vec<u64> = events
            .iter()
            .filter(|e| e.stream == 1)
            .map(|e| e.seq)
            .collect();
        assert_eq!(s0, vec![9, 19, 29, 39, 49, 59, 69, 79, 89, 99]);
        assert_eq!(s1, vec![24, 49, 74, 99]);
        assert_eq!(engine.elements_ingested(), 200);
        assert_eq!(engine.drifts_detected(), 14);
    }

    #[test]
    fn sharded_and_single_shard_engines_agree() {
        let build = || {
            let mut records = Vec::new();
            for i in 0..500u64 {
                for stream in 0..16u64 {
                    let _ = i;
                    records.push((stream, 0.0));
                }
            }
            records
        };
        let run = |shards: usize| {
            let mut engine =
                DriftEngine::with_factory(EngineConfig::with_shards(shards), |stream| {
                    Periodic::boxed(7 + stream % 5)
                });
            let mut events = Vec::new();
            for batch in build().chunks(97) {
                events.extend(engine.ingest_batch(batch).unwrap());
            }
            events
        };
        assert_eq!(run(1), run(4));
        assert_eq!(run(4), run(16));
    }

    #[test]
    fn warnings_are_opt_in() {
        let mut quiet = DriftEngine::new(EngineConfig::with_shards(2));
        quiet.register_stream(5, Periodic::boxed(10)).unwrap();
        let mut chatty = DriftEngine::new(EngineConfig::with_shards(2).emit_warnings(true));
        chatty.register_stream(5, Periodic::boxed(10)).unwrap();

        let records: Vec<(u64, f64)> = (0..30).map(|_| (5u64, 0.0)).collect();
        let quiet_events = quiet.ingest_batch(&records).unwrap();
        let chatty_events = chatty.ingest_batch(&records).unwrap();
        assert!(quiet_events.iter().all(DriftEvent::is_drift));
        assert_eq!(quiet_events.len(), 3);
        assert_eq!(chatty_events.iter().filter(|e| e.is_drift()).count(), 3);
        assert_eq!(chatty_events.iter().filter(|e| !e.is_drift()).count(), 3);
        // Warning precedes its drift at seq 8/9, 18/19, 28/29.
        assert_eq!(chatty_events[0].seq, 8);
        assert!(!chatty_events[0].is_drift());
        assert_eq!(chatty_events[1].seq, 9);
        assert!(chatty_events[1].is_drift());
    }

    #[test]
    fn unknown_stream_without_factory_is_an_error() {
        let mut engine = DriftEngine::new(EngineConfig::with_shards(2));
        let err = engine.ingest_batch(&[(42, 0.5)]).unwrap_err();
        assert_eq!(err, EngineError::UnknownStream(42));
        assert_eq!(engine.elements_ingested(), 0);

        engine.register_stream(42, Periodic::boxed(5)).unwrap();
        let err = engine.register_stream(42, Periodic::boxed(5)).unwrap_err();
        assert_eq!(err, EngineError::DuplicateStream(42));
        assert!(err.to_string().contains("42"));
    }

    #[test]
    fn factory_creates_streams_on_first_sight() {
        let mut engine =
            DriftEngine::with_factory(EngineConfig::with_shards(3), |_| Periodic::boxed(100));
        assert_eq!(engine.stream_count(), 0);
        engine
            .ingest_batch(&[(1, 0.0), (2, 0.0), (1, 0.0)])
            .unwrap();
        assert_eq!(engine.stream_count(), 2);
        assert!(engine.contains_stream(1));
        assert!(engine.contains_stream(2));
        assert!(!engine.contains_stream(3));
        let snap = engine.stream_snapshot(1).unwrap();
        assert_eq!(snap.elements, 2);
        assert_eq!(snap.drifts, 0);
        assert_eq!(snap.detector, "periodic");
        assert!(snap.detector_seconds >= 0.0);
        assert_eq!(engine.stream_snapshot(99), None);
        let mut ids: Vec<u64> = engine.stream_ids().collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn ingest_stream_matches_ingest_batch() {
        let mut a = DriftEngine::new(EngineConfig::with_shards(2).emit_warnings(true));
        a.register_stream(7, Periodic::boxed(10)).unwrap();
        let mut b = DriftEngine::new(EngineConfig::with_shards(2).emit_warnings(true));
        b.register_stream(7, Periodic::boxed(10)).unwrap();

        let values = vec![0.0; 45];
        let records: Vec<(u64, f64)> = values.iter().map(|&v| (7u64, v)).collect();
        let via_stream = a.ingest_stream(7, &values).unwrap();
        let via_batch = b.ingest_batch(&records).unwrap();
        assert_eq!(via_stream, via_batch);
        assert_eq!(a.elements_ingested(), b.elements_ingested());
    }

    #[test]
    fn default_config_is_usable() {
        let config = EngineConfig::default();
        assert!(config.shards >= 1);
        let engine = DriftEngine::new(config);
        assert_eq!(engine.num_shards(), config.shards);
        assert!(format!("{engine:?}").contains("DriftEngine"));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = EngineConfig::with_shards(0);
    }
}
