//! Construction of the service-style engine.

use std::collections::HashMap;
use std::sync::Arc;

use optwin_core::DriftDetector;

use crate::engine::{EngineConfig, EngineError};
use crate::handle::{spawn_engine, EngineHandle, SharedDetectorFactory, StreamState};
use crate::persist::{EngineSnapshot, ENGINE_SNAPSHOT_VERSION};
use crate::sink::EventSink;

/// Default per-shard queue capacity, in records. Large enough to keep the
/// workers busy across submission hiccups, small enough that a stalled
/// consumer exerts backpressure within a few megabytes.
pub const DEFAULT_QUEUE_CAPACITY: usize = 65_536;

/// Builder for a running engine: shard count, detector factory, warning
/// policy, event sinks, queue capacity and an optional snapshot to restore.
///
/// [`EngineBuilder::build`] spawns one long-lived worker thread per shard
/// and returns the cheaply-cloneable [`EngineHandle`] front door. The
/// synchronous [`crate::DriftEngine`] facade is a thin wrapper over exactly
/// this (a handle plus a [`crate::MemorySink`]). See the crate docs for a
/// complete example.
#[must_use]
pub struct EngineBuilder {
    shards: usize,
    emit_warnings: bool,
    queue_capacity: usize,
    factory: Option<SharedDetectorFactory>,
    sinks: Vec<Arc<dyn EventSink>>,
    restore: Option<EngineSnapshot>,
    streams: Vec<(u64, Box<dyn DriftDetector + Send>)>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for EngineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineBuilder")
            .field("shards", &self.shards)
            .field("emit_warnings", &self.emit_warnings)
            .field("queue_capacity", &self.queue_capacity)
            .field("has_factory", &self.factory.is_some())
            .field("sinks", &self.sinks.len())
            .field(
                "restore_streams",
                &self.restore.as_ref().map(EngineSnapshot::stream_count),
            )
            .field("pre_registered", &self.streams.len())
            .finish()
    }
}

impl EngineBuilder {
    /// Starts a builder with the default configuration: one shard per
    /// available CPU core, warnings disabled, no sinks, no factory, and a
    /// [`DEFAULT_QUEUE_CAPACITY`]-record queue per shard.
    pub fn new() -> Self {
        Self::from_config(EngineConfig::default())
    }

    /// Starts a builder from an existing [`EngineConfig`].
    pub fn from_config(config: EngineConfig) -> Self {
        Self {
            shards: config.shards,
            emit_warnings: config.emit_warnings,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            factory: None,
            sinks: Vec::new(),
            restore: None,
            streams: Vec::new(),
        }
    }

    /// Sets the shard (worker thread) count. Validated at
    /// [`EngineBuilder::build`]; zero is rejected there with
    /// [`EngineError::ZeroShards`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Emits [`optwin_core::DriftStatus::Warning`] events in addition to
    /// drifts (default: drifts only).
    pub fn emit_warnings(mut self, emit: bool) -> Self {
        self.emit_warnings = emit;
        self
    }

    /// Sets the per-shard queue capacity in records (default
    /// [`DEFAULT_QUEUE_CAPACITY`]). [`EngineHandle::submit`] blocks — and
    /// [`EngineHandle::try_submit`] fails fast — while a target shard holds
    /// this many unprocessed records. Zero is rejected at build time.
    pub fn queue_capacity(mut self, records: usize) -> Self {
        self.queue_capacity = records;
        self
    }

    /// Installs a detector factory: unknown stream ids auto-register by
    /// calling it on first sight. The factory is shared by all shard
    /// workers, hence `Send + Sync`.
    pub fn factory<F>(self, factory: F) -> Self
    where
        F: Fn(u64) -> Box<dyn DriftDetector + Send> + Send + Sync + 'static,
    {
        self.shared_factory(Arc::new(factory))
    }

    /// Installs an already-shared detector factory (useful when the caller
    /// keeps a clone, as the [`crate::DriftEngine`] facade does).
    pub fn shared_factory(mut self, factory: SharedDetectorFactory) -> Self {
        self.factory = Some(factory);
        self
    }

    /// Adds an event sink. May be called repeatedly; every worker emits each
    /// event into every sink, in the order they were added.
    pub fn sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Pre-registers a stream with an explicit detector instance (duplicates
    /// are rejected at build time). Streams can also be registered later via
    /// [`EngineHandle::register_stream`] or auto-registered by the factory.
    pub fn stream(mut self, stream: u64, detector: Box<dyn DriftDetector + Send>) -> Self {
        self.streams.push((stream, detector));
        self
    }

    /// Restores every stream recorded in `snapshot` when the engine is
    /// built: the factory constructs a fresh detector per stream and the
    /// serialized state is restored into it, so the new engine makes
    /// identical subsequent decisions to the snapshotted one. Requires a
    /// factory. The snapshot's shard count and warning policy are
    /// provenance, not constraints — this builder's settings win, and
    /// streams re-pin to shards by `id % shards`.
    pub fn restore(mut self, snapshot: EngineSnapshot) -> Self {
        self.restore = Some(snapshot);
        self
    }

    /// Validates the configuration, spawns one worker thread per shard
    /// (restoring and pre-registering streams into their owning shards) and
    /// returns the engine's front door.
    ///
    /// # Errors
    ///
    /// * [`EngineError::ZeroShards`] / [`EngineError::ZeroQueueCapacity`]
    ///   for degenerate parameters,
    /// * [`EngineError::InvalidSnapshot`] when a snapshot is set but no
    ///   factory is, the snapshot's version is unsupported, a detector name
    ///   does not match what the factory builds, or a detector rejects its
    ///   serialized state,
    /// * [`EngineError::DuplicateStream`] when a stream id is pre-registered
    ///   (or restored) twice.
    pub fn build(self) -> Result<EngineHandle, EngineError> {
        if self.shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        if self.queue_capacity == 0 {
            return Err(EngineError::ZeroQueueCapacity);
        }

        let mut initial: Vec<HashMap<u64, StreamState>> =
            (0..self.shards).map(|_| HashMap::new()).collect();
        let shard_of = |stream: u64| (stream % self.shards as u64) as usize;

        if let Some(snapshot) = self.restore {
            if snapshot.version != ENGINE_SNAPSHOT_VERSION {
                return Err(EngineError::InvalidSnapshot(format!(
                    "unsupported engine snapshot version {} (expected {ENGINE_SNAPSHOT_VERSION})",
                    snapshot.version
                )));
            }
            let factory = self.factory.as_ref().ok_or_else(|| {
                EngineError::InvalidSnapshot(
                    "restoring a snapshot requires a detector factory".to_string(),
                )
            })?;
            for stream_snapshot in snapshot.streams {
                let mut detector = factory(stream_snapshot.stream);
                if detector.name() != stream_snapshot.detector {
                    return Err(EngineError::InvalidSnapshot(format!(
                        "stream {}: snapshot was taken from a `{}` detector but the factory \
                         builds `{}`",
                        stream_snapshot.stream,
                        stream_snapshot.detector,
                        detector.name()
                    )));
                }
                detector
                    .restore_state(&stream_snapshot.state)
                    .map_err(|e| {
                        EngineError::InvalidSnapshot(format!(
                            "stream {}: {e}",
                            stream_snapshot.stream
                        ))
                    })?;
                let mut state = StreamState::new(detector);
                state.seq = stream_snapshot.seq;
                state.seconds = stream_snapshot.detector_seconds;
                if initial[shard_of(stream_snapshot.stream)]
                    .insert(stream_snapshot.stream, state)
                    .is_some()
                {
                    return Err(EngineError::DuplicateStream(stream_snapshot.stream));
                }
            }
        }

        for (stream, detector) in self.streams {
            if initial[shard_of(stream)]
                .insert(stream, StreamState::new(detector))
                .is_some()
            {
                return Err(EngineError::DuplicateStream(stream));
            }
        }

        let config = EngineConfig {
            shards: self.shards,
            emit_warnings: self.emit_warnings,
        };
        Ok(spawn_engine(
            config,
            self.queue_capacity,
            self.factory,
            self.sinks,
            initial,
        ))
    }
}
