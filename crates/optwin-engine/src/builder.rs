//! Construction of the service-style engine.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use optwin_baselines::DetectorSpec;
use optwin_core::{DriftDetector, SnapshotEncoding};

use crate::checkpoint::{self, CheckpointConfig, CheckpointPolicy, RecoveredLog, ReplayOp};
use crate::engine::{EngineConfig, EngineError};
use crate::fleet::FleetConfig;
use crate::handle::{
    spawn_engine, DetectorSource, EngineHandle, SharedDetectorFactory, StreamState,
};
use crate::hibernate::{HibernatedDetector, HibernationPolicy};
use crate::persist::EngineSnapshot;
use crate::sink::EventSink;

/// Default per-shard queue capacity, in records. Large enough to keep the
/// workers busy across submission hiccups, small enough that a stalled
/// consumer exerts backpressure within a few megabytes.
pub const DEFAULT_QUEUE_CAPACITY: usize = 65_536;

/// Builder for a running engine: shard count, default detector (a
/// declarative [`DetectorSpec`] or a closure factory), warning policy, event
/// sinks, queue capacity and an optional snapshot to restore.
///
/// [`EngineBuilder::build`] spawns one long-lived worker thread per shard
/// and returns the cheaply-cloneable [`EngineHandle`] front door. The
/// canonical construction path is declarative —
/// [`EngineBuilder::default_spec`] for homogeneous fleets,
/// [`EngineBuilder::stream_spec`] / [`EngineHandle::register_stream_spec`]
/// for heterogeneous ones — which makes every stream introspectable and
/// every snapshot self-describing. The closure-factory and
/// explicit-instance paths survive as escape hatches for custom detector
/// types. The synchronous [`crate::DriftEngine`] facade is a thin wrapper
/// over exactly this (a handle plus a [`crate::MemorySink`]). See the crate
/// docs for a complete example.
#[must_use]
pub struct EngineBuilder {
    shards: usize,
    emit_warnings: bool,
    queue_capacity: usize,
    source: Option<DetectorSource>,
    sinks: Vec<Arc<dyn EventSink>>,
    restore: Option<EngineSnapshot>,
    streams: Vec<(u64, Box<dyn DriftDetector + Send>)>,
    spec_streams: Vec<(u64, DetectorSpec)>,
    auto_rebalance: Option<f64>,
    snapshot_encoding: SnapshotEncoding,
    hibernation: Option<HibernationPolicy>,
    checkpoint: Option<(PathBuf, CheckpointPolicy)>,
    recovered: Option<RecoveredLog>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for EngineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineBuilder")
            .field("shards", &self.shards)
            .field("emit_warnings", &self.emit_warnings)
            .field("queue_capacity", &self.queue_capacity)
            .field("has_factory", &self.source.is_some())
            .field("sinks", &self.sinks.len())
            .field(
                "restore_streams",
                &self.restore.as_ref().map(EngineSnapshot::stream_count),
            )
            .field(
                "pre_registered",
                &(self.streams.len() + self.spec_streams.len()),
            )
            .finish()
    }
}

impl EngineBuilder {
    /// Starts a builder with the default configuration: one shard per
    /// available CPU core, warnings disabled, no sinks, no default detector,
    /// and a [`DEFAULT_QUEUE_CAPACITY`]-record queue per shard.
    pub fn new() -> Self {
        Self::from_config(EngineConfig::default())
    }

    /// Starts a builder from an existing [`EngineConfig`].
    pub fn from_config(config: EngineConfig) -> Self {
        Self {
            shards: config.shards,
            emit_warnings: config.emit_warnings,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            source: None,
            sinks: Vec::new(),
            restore: None,
            streams: Vec::new(),
            spec_streams: Vec::new(),
            auto_rebalance: None,
            snapshot_encoding: SnapshotEncoding::Json,
            hibernation: None,
            checkpoint: None,
            recovered: None,
        }
    }

    /// Starts a builder pre-loaded with a fleet configuration: a JSON map
    /// of `stream id → spec string`, e.g.
    /// `{"0": "optwin:rho=0.5", "1": "adwin:delta=0.002"}`. Every entry is
    /// pre-registered declaratively (as [`EngineBuilder::stream_spec`]
    /// would), so the built engine is fully config-driven — no closures,
    /// no code changes per fleet.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidFleetConfig`] for malformed JSON, a
    /// non-object top level, an unparsable stream id or spec string, or a
    /// duplicate stream id.
    pub fn from_config_json(text: &str) -> Result<Self, EngineError> {
        Ok(Self::from_fleet(FleetConfig::from_json(text)?))
    }

    /// [`EngineBuilder::from_config_json`], reading the JSON from a file.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidFleetConfig`] when the file cannot be
    /// read, plus every error `from_config_json` reports.
    pub fn from_config_path(path: impl AsRef<Path>) -> Result<Self, EngineError> {
        Ok(Self::from_fleet(FleetConfig::from_path(path)?))
    }

    /// Pre-registers every stream of an already-parsed [`FleetConfig`]
    /// (warnings, if any, are the caller's to surface).
    pub fn from_fleet(fleet: FleetConfig) -> Self {
        fleet
            .streams
            .into_iter()
            .fold(Self::new(), |builder, (stream, spec)| {
                builder.stream_spec(stream, spec)
            })
    }

    /// Sets the shard (worker thread) count. Validated at
    /// [`EngineBuilder::build`]; zero is rejected there with
    /// [`EngineError::ZeroShards`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Emits [`optwin_core::DriftStatus::Warning`] events in addition to
    /// drifts (default: drifts only).
    pub fn emit_warnings(mut self, emit: bool) -> Self {
        self.emit_warnings = emit;
        self
    }

    /// Sets the per-shard queue capacity in records (default
    /// [`DEFAULT_QUEUE_CAPACITY`]). [`EngineHandle::submit`] blocks — and
    /// [`EngineHandle::try_submit`] fails fast — while a target shard holds
    /// this many unprocessed records. Zero is rejected at build time.
    pub fn queue_capacity(mut self, records: usize) -> Self {
        self.queue_capacity = records;
        self
    }

    /// Enables automatic load-aware rebalancing: every
    /// [`EngineHandle::flush`] checks the shard record-load imbalance
    /// (hottest shard over mean) and, when it exceeds `threshold`, runs a
    /// [`crate::RebalancePolicy::Records`] rebalance at that flush barrier.
    /// `threshold` must exceed 1.0 (1.0 = perfectly balanced); values
    /// around 1.25–2.0 are sensible. Validated at build time. Explicit
    /// [`EngineHandle::rebalance`] calls remain available either way.
    pub fn auto_rebalance(mut self, threshold: f64) -> Self {
        self.auto_rebalance = Some(threshold);
        self
    }

    /// Sets the sequence layout [`EngineHandle::snapshot`] writes:
    /// [`SnapshotEncoding::Json`] (the default) produces the historical v3
    /// wire format with windows as JSON number arrays;
    /// [`SnapshotEncoding::Binary`] produces the v4 compact format with
    /// windows as base64 binary blobs — several × smaller at large `w_max`,
    /// still bit-exact on restore. Regardless of this knob,
    /// [`EngineHandle::snapshot_compact`] always writes v4 and
    /// [`EngineBuilder::restore`] accepts every version (v1–v4).
    pub fn snapshot_encoding(mut self, encoding: SnapshotEncoding) -> Self {
        self.snapshot_encoding = encoding;
        self
    }

    /// Enables the hibernation tier (see [`crate::hibernate`]): at every
    /// [`EngineHandle::flush`] barrier, each shard worker compresses the
    /// detector state of streams that have been idle for
    /// [`HibernationPolicy::cold_after_flushes`] consecutive barriers into
    /// a compact blob and frees the detector. The next record for such a
    /// stream rebuilds the detector from the stream's [`DetectorSpec`] and
    /// restores the blob — bit-exact, so the fleet's events and `seq`
    /// numbers are byte-identical to a never-hibernating run. Only
    /// spec-registered streams participate. Restoring a snapshot with
    /// hibernated entries through a builder with this knob set re-creates
    /// those streams still asleep (their detectors are never materialized);
    /// without it they restore awake. Default: no hibernation.
    pub fn hibernation(mut self, policy: HibernationPolicy) -> Self {
        self.hibernation = Some(policy);
        self
    }

    /// Installs the default [`DetectorSpec`]: unknown stream ids
    /// auto-register on first sight with `spec.build()`, recording the spec
    /// so the stream is introspectable ([`EngineHandle::stream_spec`]) and
    /// snapshots of it restore with no factory. This is the canonical
    /// configuration path; the spec is validated at
    /// [`EngineBuilder::build`]. Replaces any previously installed default
    /// (spec or closure).
    pub fn default_spec(mut self, spec: DetectorSpec) -> Self {
        self.source = Some(DetectorSource::Spec(spec));
        self
    }

    /// Installs a closure detector factory: unknown stream ids auto-register
    /// by calling it on first sight. The factory is shared by all shard
    /// workers, hence `Send + Sync`. Streams it creates record no spec — an
    /// escape hatch for custom detector types; prefer
    /// [`EngineBuilder::default_spec`] when the detector can be described
    /// declaratively. Replaces any previously installed default.
    pub fn factory<F>(self, factory: F) -> Self
    where
        F: Fn(u64) -> Box<dyn DriftDetector + Send> + Send + Sync + 'static,
    {
        self.shared_factory(Arc::new(factory))
    }

    /// Installs an already-shared closure detector factory (useful when the
    /// caller keeps a clone). See [`EngineBuilder::factory`].
    pub fn shared_factory(self, factory: SharedDetectorFactory) -> Self {
        self.detector_source(DetectorSource::Closure(factory))
    }

    /// Installs a pre-assembled detector source (crate-internal; the public
    /// surface is [`EngineBuilder::default_spec`] /
    /// [`EngineBuilder::factory`]).
    pub(crate) fn detector_source(mut self, source: DetectorSource) -> Self {
        self.source = Some(source);
        self
    }

    /// Adds an event sink. May be called repeatedly; every worker emits each
    /// event into every sink, in the order they were added.
    pub fn sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Pre-registers a stream with an explicit detector instance (duplicates
    /// are rejected at build time). The stream records no [`DetectorSpec`];
    /// prefer [`EngineBuilder::stream_spec`] when possible. Streams can also
    /// be registered later via [`EngineHandle::register_stream`] /
    /// [`EngineHandle::register_stream_spec`] or auto-registered by the
    /// default spec/factory.
    pub fn stream(mut self, stream: u64, detector: Box<dyn DriftDetector + Send>) -> Self {
        self.streams.push((stream, detector));
        self
    }

    /// Pre-registers a stream declaratively: at build time the spec is
    /// validated, its detector constructed, and the spec recorded on the
    /// stream. This is how heterogeneous fleets are assembled from
    /// configuration — different specs for different stream ids, no
    /// closures anywhere.
    pub fn stream_spec(mut self, stream: u64, spec: DetectorSpec) -> Self {
        self.spec_streams.push((stream, spec));
        self
    }

    /// Enables the durability subsystem (see [`crate::checkpoint`]): the
    /// engine checkpoints into `dir` per `policy` — a full wire-v4 base
    /// snapshot first, then **delta overlays** of only the streams dirty
    /// since the previous checkpoint, compacted back into a fresh base once
    /// the chain outgrows [`CheckpointPolicy::compact_ratio`] — and every
    /// record batch between checkpoints is appended to a per-shard
    /// write-ahead log. [`EngineBuilder::build`] creates the directory and
    /// cuts an initial full checkpoint, so the WAL is active from the first
    /// record; after a crash, [`EngineBuilder::recover_from_dir`] resumes
    /// bit-exactly from the same directory.
    pub fn checkpoint(mut self, dir: impl AsRef<Path>, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some((dir.as_ref().to_path_buf(), policy));
        self
    }

    /// Recovers a crashed (or cleanly stopped) engine from a checkpoint
    /// directory written by [`EngineBuilder::checkpoint`]: loads the base
    /// snapshot, applies the delta overlays, and replays the write-ahead
    /// log tail — record batches and declarative registrations the crash
    /// caught after the last checkpoint. The recovered fleet makes
    /// **bit-identical** subsequent decisions (same events, same `seq`)
    /// to an uninterrupted run; hibernated streams recover still asleep
    /// when the builder hibernates. Checkpointing continues into the same
    /// directory (an initial full checkpoint is cut at build), under the
    /// policy set by a preceding [`EngineBuilder::checkpoint`] call for
    /// the same directory, or the default [`CheckpointPolicy`].
    ///
    /// Replaces any [`EngineBuilder::restore`] snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidSnapshot`] when the manifest, base,
    /// an overlay or a WAL segment is missing, truncated, corrupt, or of
    /// an unsupported version. A torn trailing WAL frame (the crash cut a
    /// write short) is **not** an error — it reads as clean end-of-log.
    pub fn recover_from_dir(mut self, dir: impl AsRef<Path>) -> Result<Self, EngineError> {
        let dir = dir.as_ref();
        let (snapshot, log) = checkpoint::load_recovery(dir)?;
        let policy = match &self.checkpoint {
            Some((existing, policy)) if existing == dir => *policy,
            _ => CheckpointPolicy::default(),
        };
        self.checkpoint = Some((dir.to_path_buf(), policy));
        self.restore = Some(snapshot);
        self.recovered = Some(log);
        Ok(self)
    }

    /// Restores every stream recorded in `snapshot` when the engine is
    /// built. Streams whose snapshot embeds a [`DetectorSpec`] (wire format
    /// v2+, spec-registered) are rebuilt from that spec — **no factory
    /// required**. Spec-less streams (v1 snapshots, or streams registered
    /// with explicit instances / a closure factory) are rebuilt through this
    /// builder's default spec or factory, which must then be configured. In
    /// both cases the serialized state is restored into the fresh detector,
    /// so the new engine makes identical subsequent decisions to the
    /// snapshotted one. The snapshot's shard count and warning policy are
    /// provenance, not constraints — this builder's settings win. Streams
    /// with a recorded shard placement (wire format v3) re-pin to
    /// `recorded_shard % shards`, reproducing a rebalanced routing table;
    /// older snapshots re-pin by `id % shards`.
    pub fn restore(mut self, snapshot: EngineSnapshot) -> Self {
        self.restore = Some(snapshot);
        self
    }

    /// Validates the configuration, spawns one worker thread per shard
    /// (restoring and pre-registering streams into their owning shards) and
    /// returns the engine's front door.
    ///
    /// # Errors
    ///
    /// * [`EngineError::ZeroShards`] / [`EngineError::ZeroQueueCapacity`]
    ///   for degenerate parameters,
    /// * [`EngineError::InvalidSpec`] when the default spec or a
    ///   [`EngineBuilder::stream_spec`] spec fails validation,
    /// * [`EngineError::InvalidSnapshot`] when a snapshot stream has no
    ///   embedded spec and no default spec/factory is configured, the
    ///   snapshot's version is unsupported, a detector name does not match
    ///   what the spec/factory builds, or a detector rejects its serialized
    ///   state,
    /// * [`EngineError::DuplicateStream`] when a stream id is pre-registered
    ///   (or restored) twice.
    pub fn build(self) -> Result<EngineHandle, EngineError> {
        if self.shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        if self.queue_capacity == 0 {
            return Err(EngineError::ZeroQueueCapacity);
        }
        if let Some(threshold) = self.auto_rebalance {
            // Written so NaN also lands in the error branch.
            if threshold <= 1.0 || !threshold.is_finite() {
                return Err(EngineError::InvalidRebalanceThreshold(format!(
                    "must be a finite ratio above 1.0 (1.0 = perfectly balanced), got {threshold}"
                )));
            }
        }
        if let Some(DetectorSource::Spec(spec)) = &self.source {
            spec.validate()
                .map_err(|e| EngineError::InvalidSpec(e.to_string()))?;
        }

        let mut initial: Vec<HashMap<u64, StreamState>> =
            (0..self.shards).map(|_| HashMap::new()).collect();
        let shard_of = |stream: u64| (stream % self.shards as u64) as usize;
        // Duplicate ids can no longer be caught by per-shard map collisions
        // alone: two occurrences of one id may target *different* shards
        // (a restored placement vs. the modulo default).
        let mut seen = std::collections::HashSet::new();

        if let Some(snapshot) = self.restore {
            snapshot.check_version()?;
            for stream_snapshot in snapshot.streams {
                let stream = stream_snapshot.stream;
                // v3 placement-preserving entry: land on the recorded shard
                // (folded into the new shard count); older entries fall back
                // to the modulo default.
                let target = stream_snapshot
                    .shard
                    .map_or_else(|| shard_of(stream), |shard| shard % self.shards);
                // Hibernated entry restoring into a hibernating engine: keep
                // the stream asleep — its state tree becomes the blob
                // directly and no detector is materialized, so a snapshot of
                // a mostly-cold million-stream fleet restores in the cold
                // footprint. Falls through to the awake path (always
                // correct) when the entry lacks the counters the sleeper
                // caches, or for a non-hibernating builder.
                if self.hibernation.is_some() && stream_snapshot.hibernated {
                    if let Some(spec) = &stream_snapshot.spec {
                        if spec.detector_name() != stream_snapshot.detector {
                            return Err(EngineError::InvalidSnapshot(format!(
                                "stream {}: snapshot was taken from a `{}` detector but the \
                                 embedded spec `{}` builds `{}`",
                                stream,
                                stream_snapshot.detector,
                                spec,
                                spec.detector_name()
                            )));
                        }
                        if let Some(sleeper) = HibernatedDetector::from_persisted(
                            spec.detector_name(),
                            &stream_snapshot.state,
                        ) {
                            let mut state = StreamState::asleep(sleeper, spec.clone());
                            state.restore_position(
                                stream_snapshot.seq,
                                stream_snapshot.detector_seconds,
                            );
                            if !seen.insert(stream) {
                                return Err(EngineError::DuplicateStream(stream));
                            }
                            initial[target].insert(stream, state);
                            continue;
                        }
                    }
                }
                // v2 self-describing entry: rebuild from the embedded spec.
                // Spec-less entry: fall back to the default spec/factory.
                let (mut detector, spec) = match &stream_snapshot.spec {
                    Some(spec) => {
                        let detector = spec.build().map_err(|e| {
                            EngineError::InvalidSnapshot(format!(
                                "stream {stream}: embedded spec `{spec}`: {e}"
                            ))
                        })?;
                        (detector, Some(spec.clone()))
                    }
                    None => match &self.source {
                        Some(source) => source.make(stream).map_err(|e| {
                            EngineError::InvalidSnapshot(format!("stream {stream}: {e}"))
                        })?,
                        None => {
                            return Err(EngineError::InvalidSnapshot(format!(
                                "stream {stream} has no embedded detector spec; restoring it \
                                 requires a default spec or detector factory"
                            )))
                        }
                    },
                };
                if detector.name() != stream_snapshot.detector {
                    return Err(EngineError::InvalidSnapshot(format!(
                        "stream {}: snapshot was taken from a `{}` detector but the \
                         spec/factory builds `{}`",
                        stream,
                        stream_snapshot.detector,
                        detector.name()
                    )));
                }
                detector
                    .restore_state(&stream_snapshot.state)
                    .map_err(|e| EngineError::InvalidSnapshot(format!("stream {stream}: {e}")))?;
                let mut state = StreamState::with_spec(detector, spec);
                state.restore_position(stream_snapshot.seq, stream_snapshot.detector_seconds);
                if !seen.insert(stream) {
                    return Err(EngineError::DuplicateStream(stream));
                }
                initial[target].insert(stream, state);
            }
        }

        for (stream, detector) in self.streams {
            if !seen.insert(stream) {
                return Err(EngineError::DuplicateStream(stream));
            }
            initial[shard_of(stream)].insert(stream, StreamState::new(detector));
        }
        for (stream, spec) in self.spec_streams {
            let detector = spec
                .build()
                .map_err(|e| EngineError::InvalidSpec(format!("stream {stream}: {e}")))?;
            if !seen.insert(stream) {
                return Err(EngineError::DuplicateStream(stream));
            }
            initial[shard_of(stream)].insert(stream, StreamState::with_spec(detector, Some(spec)));
        }

        let config = EngineConfig {
            shards: self.shards,
            emit_warnings: self.emit_warnings,
        };
        let checkpoint = match self.checkpoint {
            Some((dir, policy)) => {
                std::fs::create_dir_all(&dir).map_err(|e| {
                    EngineError::Checkpoint(format!(
                        "creating checkpoint directory {}: {e}",
                        dir.display()
                    ))
                })?;
                Some(CheckpointConfig {
                    dir,
                    policy,
                    next_generation: self.recovered.as_ref().map_or(0, |log| log.next_generation),
                })
            }
            None => None,
        };
        let checkpointing = checkpoint.is_some();
        let handle = spawn_engine(
            config,
            self.queue_capacity,
            self.source,
            self.sinks,
            initial,
            self.auto_rebalance,
            self.snapshot_encoding,
            self.hibernation,
            checkpoint,
        );

        // Recovery replay: re-submit the WAL tail in its logged order. The
        // workers' WALs are still inactive here, so the replay is not
        // re-logged against a stale generation; the initial full checkpoint
        // below covers it instead. Re-registrations of streams the delta
        // chain also captured are expected — the checkpoint entry already
        // restored them above — and skipped.
        if let Some(log) = self.recovered {
            for op in log.ops {
                match op {
                    ReplayOp::Records(records) => handle.submit(&records)?,
                    ReplayOp::Register(stream, spec) => {
                        match handle.register_stream_spec(stream, spec) {
                            Ok(()) | Err(EngineError::DuplicateStream(_)) => {}
                            Err(error) => return Err(error),
                        }
                    }
                }
            }
        }

        // The initial full checkpoint: a barrier behind any replayed
        // records, it activates the per-shard WALs, rolls the directory
        // forward past every recovered generation, and prunes the files
        // recovery consumed. A fresh directory gets its generation-0 base
        // the same way.
        if checkpointing {
            handle.run_checkpoint(true, false)?;
            if let Some(error) = handle.take_error() {
                return Err(error);
            }
        }
        Ok(handle)
    }
}
