//! Events emitted by the engine.

use optwin_core::DriftStatus;

/// One detector verdict worth surfacing, tied to its exact stream position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftEvent {
    /// The stream the event belongs to.
    pub stream: u64,
    /// 0-based sequence number of the element (within its stream) whose
    /// ingestion produced this event. Monotonically increasing per stream
    /// across batches.
    pub seq: u64,
    /// [`DriftStatus::Drift`], or [`DriftStatus::Warning`] when the engine
    /// is configured to emit warnings.
    pub status: DriftStatus,
}

impl DriftEvent {
    /// `true` if this event is a drift (vs. a warning).
    #[must_use]
    pub fn is_drift(&self) -> bool {
        self.status == DriftStatus::Drift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_predicate() {
        let drift = DriftEvent {
            stream: 1,
            seq: 10,
            status: DriftStatus::Drift,
        };
        let warn = DriftEvent {
            stream: 1,
            seq: 9,
            status: DriftStatus::Warning,
        };
        assert!(drift.is_drift());
        assert!(!warn.is_drift());
    }
}
