//! Events emitted by the engine.

use optwin_core::DriftStatus;
use serde::{Deserialize, Serialize};

/// One detector verdict worth surfacing, tied to its exact stream position.
///
/// Events are serializable (see [`crate::JsonLinesSink`]) so detections can
/// be shipped to files, logs or downstream services without a translation
/// layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriftEvent {
    /// The stream the event belongs to.
    pub stream: u64,
    /// 0-based sequence number of the element (within its stream) whose
    /// ingestion produced this event. Monotonically increasing per stream
    /// across batches.
    pub seq: u64,
    /// [`DriftStatus::Drift`], or [`DriftStatus::Warning`] when the engine
    /// is configured to emit warnings.
    pub status: DriftStatus,
}

impl DriftEvent {
    /// `true` if this event is a drift (vs. a warning).
    #[must_use]
    pub fn is_drift(&self) -> bool {
        self.status == DriftStatus::Drift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_predicate() {
        let drift = DriftEvent {
            stream: 1,
            seq: 10,
            status: DriftStatus::Drift,
        };
        let warn = DriftEvent {
            stream: 1,
            seq: 9,
            status: DriftStatus::Warning,
        };
        assert!(drift.is_drift());
        assert!(!warn.is_drift());
    }

    #[test]
    fn json_round_trip() {
        let event = DriftEvent {
            stream: 42,
            seq: 1_234,
            status: DriftStatus::Warning,
        };
        let json = serde_json::to_string(&event).unwrap();
        assert!(json.contains("\"stream\":42"));
        assert!(json.contains("\"Warning\""));
        let back: DriftEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, event);
    }
}
