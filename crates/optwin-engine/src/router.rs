//! The stream → shard routing table.
//!
//! Historically a stream was pinned to shard `id % shards` by arithmetic
//! scattered through the submit path. [`Router`] turns that placement into a
//! first-class, *rebalanceable* table owned by the engine: the routing
//! function stays total (any stream id always routes somewhere — unknown ids
//! fall back to the modulo default, so first-sight auto-registration keeps
//! working with zero writes on the hot path) while **pins** recorded by
//! restore ([`crate::EngineBuilder::restore`], wire format v3) and by
//! [`crate::EngineHandle::rebalance`] override the default for individual
//! streams.
//!
//! # Locking protocol
//!
//! The table is guarded by a readers–writer lock with a strict discipline:
//!
//! * Every handle operation that **sends messages to shard workers** (submit,
//!   register, flush, query, snapshot, shutdown) holds the *read* lock across
//!   its whole partition-and-send sequence.
//! * A rebalance holds the *write* lock across its entire
//!   query → plan → extract → install → repin sequence.
//!
//! Because per-shard channels are FIFO, this makes every rebalance a clean
//! cut in each worker's message stream: everything sent before the write
//! lock was acquired is processed before the migration, everything sent
//! after it was released is processed after — so per-stream record order
//! (and therefore every `DriftEvent` and its `seq`) is bit-exact regardless
//! of how many rebalances interleave with ingestion. Workers never take the
//! lock, so producers blocked on queue backpressure cannot deadlock a
//! migration.

use std::collections::HashMap;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The routing state: the shard count plus explicit per-stream pins.
///
/// Streams without a pin route to `id % shards` — the engine's historical
/// static placement, now merely the default rule of the table.
pub(crate) struct RouterTable {
    shards: usize,
    pins: HashMap<u64, usize>,
}

impl RouterTable {
    /// The shard records for `stream` route to.
    #[inline]
    pub(crate) fn shard_of(&self, stream: u64) -> usize {
        match self.pins.get(&stream) {
            Some(&shard) => shard,
            None => (stream % self.shards as u64) as usize,
        }
    }

    /// `true` when `stream` has an explicit pin (restore or rebalance put it
    /// somewhere the modulo default would not).
    pub(crate) fn is_pinned(&self, stream: u64) -> bool {
        self.pins.contains_key(&stream)
    }

    /// Replaces the pin set wholesale with a freshly computed assignment
    /// (the rebalance path). Assignments equal to the modulo default are
    /// dropped so the table only stores genuine overrides.
    pub(crate) fn repin(&mut self, assignment: impl IntoIterator<Item = (u64, usize)>) {
        self.pins.clear();
        for (stream, shard) in assignment {
            debug_assert!(shard < self.shards);
            if shard != (stream % self.shards as u64) as usize {
                self.pins.insert(stream, shard);
            }
        }
    }

    /// Number of explicit pins currently held.
    pub(crate) fn pin_count(&self) -> usize {
        self.pins.len()
    }
}

/// Shared, lock-protected routing table (see the module docs for the
/// locking protocol).
pub(crate) struct Router {
    table: RwLock<RouterTable>,
}

impl Router {
    /// A router over `shards` shards with the given initial pins (restored
    /// or pre-registered placements; modulo-equal entries are elided).
    pub(crate) fn new(shards: usize, pins: impl IntoIterator<Item = (u64, usize)>) -> Self {
        let mut table = RouterTable {
            shards,
            pins: HashMap::new(),
        };
        table.repin(pins);
        Self {
            table: RwLock::new(table),
        }
    }

    /// Read access for the send paths: holds off rebalances for the duration
    /// of the guard.
    pub(crate) fn read(&self) -> RwLockReadGuard<'_, RouterTable> {
        self.table.read()
    }

    /// Exclusive access for a rebalance: excludes every send path for the
    /// duration of the guard.
    pub(crate) fn write(&self) -> RwLockWriteGuard<'_, RouterTable> {
        self.table.write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpinned_streams_route_by_modulo() {
        let router = Router::new(4, []);
        let table = router.read();
        for stream in 0..16u64 {
            assert_eq!(table.shard_of(stream), (stream % 4) as usize);
            assert!(!table.is_pinned(stream));
        }
        assert_eq!(table.pin_count(), 0);
    }

    #[test]
    fn pins_override_the_default_and_modulo_pins_are_elided() {
        let router = Router::new(4, [(0, 3), (1, 1), (6, 0)]);
        let table = router.read();
        assert_eq!(table.shard_of(0), 3);
        assert!(table.is_pinned(0));
        // (1 % 4 == 1): the pin agrees with the default and is elided.
        assert_eq!(table.shard_of(1), 1);
        assert!(!table.is_pinned(1));
        assert_eq!(table.shard_of(6), 0);
        assert_eq!(table.pin_count(), 2);
    }

    #[test]
    fn repin_replaces_the_whole_pin_set() {
        let router = Router::new(2, [(5, 0)]);
        {
            let mut table = router.write();
            assert_eq!(table.shard_of(5), 0);
            table.repin([(8, 1), (9, 1)]);
        }
        let table = router.read();
        // The old pin is gone; stream 5 is back on its modulo shard.
        assert_eq!(table.shard_of(5), 1);
        assert_eq!(table.shard_of(8), 1);
        // (9 % 2 == 1): elided again.
        assert_eq!(table.pin_count(), 1);
    }
}
