//! Engine-level persistence: snapshot the per-stream detector state of a
//! running engine and restore it in a fresh process.
//!
//! [`crate::EngineHandle::snapshot`] asks every shard worker to serialize
//! its streams (sequence counters plus each detector's
//! [`optwin_core::DriftDetector::snapshot_state`]) into an
//! [`EngineSnapshot`], a plain serializable value that can be written to
//! disk as JSON. [`crate::EngineBuilder::restore`] replays such a snapshot
//! into a new engine: the builder's detector factory constructs a fresh
//! detector per recorded stream and the serialized state is restored into
//! it, so the rebuilt engine makes **identical subsequent decisions** to the
//! one that was snapshotted — a restarted process resumes mid-stream with no
//! re-warm-up and no double-reported drifts.
//!
//! The snapshot deliberately excludes detector *configuration*: restoration
//! goes through the same factory that built the original detectors, which
//! re-derives configuration (and shared cut tables) from code. Only the
//! stream-dependent state crosses the file boundary. Shard count and warning
//! policy are recorded as provenance but do not constrain the restoring
//! builder — streams are re-pinned to shards by `id % shards` automatically.

use serde::{Deserialize, Serialize};

use crate::engine::EngineError;

/// Serialization format version of [`EngineSnapshot`].
pub const ENGINE_SNAPSHOT_VERSION: u64 = 1;

/// The persisted state of one stream: its position and its detector's
/// serialized internals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStateSnapshot {
    /// The stream id.
    pub stream: u64,
    /// Elements ingested for this stream so far (the next element's sequence
    /// number).
    pub seq: u64,
    /// The detector's stable name, validated against the factory-built
    /// detector on restore.
    pub detector: String,
    /// Wall-clock seconds spent inside the detector (diagnostics; carried
    /// across restarts so lifetime stats stay meaningful).
    pub detector_seconds: f64,
    /// The detector state from
    /// [`optwin_core::DriftDetector::snapshot_state`].
    pub state: serde::Value,
}

/// A point-in-time capture of every stream in an engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Format version ([`ENGINE_SNAPSHOT_VERSION`]).
    pub version: u64,
    /// Shard count of the engine that produced the snapshot (provenance
    /// only; the restoring builder chooses its own shard count).
    pub shards: usize,
    /// Whether the producing engine emitted warning events (provenance
    /// only).
    pub emit_warnings: bool,
    /// Per-stream states, sorted by stream id.
    pub streams: Vec<StreamStateSnapshot>,
}

impl EngineSnapshot {
    /// Number of streams captured in the snapshot.
    #[must_use]
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Serializes the snapshot to compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("value-tree serialization is infallible")
    }

    /// Parses a snapshot previously produced by [`EngineSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidSnapshot`] on malformed JSON, a shape
    /// mismatch, or an unsupported format version.
    pub fn from_json(text: &str) -> Result<Self, EngineError> {
        let snapshot: Self =
            serde_json::from_str(text).map_err(|e| EngineError::InvalidSnapshot(e.to_string()))?;
        if snapshot.version != ENGINE_SNAPSHOT_VERSION {
            return Err(EngineError::InvalidSnapshot(format!(
                "unsupported engine snapshot version {} (expected {ENGINE_SNAPSHOT_VERSION})",
                snapshot.version
            )));
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EngineSnapshot {
        EngineSnapshot {
            version: ENGINE_SNAPSHOT_VERSION,
            shards: 4,
            emit_warnings: true,
            streams: vec![StreamStateSnapshot {
                stream: 7,
                seq: 1_234,
                detector: "OPTWIN".to_string(),
                detector_seconds: 0.25,
                // `Int` (not `UInt`): in-range unsigned values re-parse as
                // `Int`, and the round-trip assertion compares value trees.
                state: serde::Value::Object(vec![("split".to_string(), serde::Value::Int(10))]),
            }],
        }
    }

    #[test]
    fn json_round_trip() {
        let snapshot = sample();
        let json = snapshot.to_json();
        let back = EngineSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snapshot);
        assert_eq!(back.stream_count(), 1);
        assert_eq!(
            back.streams[0].state.get("split"),
            Some(&serde::Value::Int(10))
        );
    }

    #[test]
    fn rejects_garbage_and_future_versions() {
        assert!(matches!(
            EngineSnapshot::from_json("not json"),
            Err(EngineError::InvalidSnapshot(_))
        ));
        let mut future = sample();
        future.version = ENGINE_SNAPSHOT_VERSION + 1;
        let err = EngineSnapshot::from_json(&future.to_json()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }
}
