//! Engine-level persistence: snapshot the per-stream detector state of a
//! running engine and restore it in a fresh process.
//!
//! [`crate::EngineHandle::snapshot`] asks every shard worker to serialize
//! its streams (sequence counters plus each detector's
//! [`optwin_core::DriftDetector::snapshot_state`]) into an
//! [`EngineSnapshot`], a plain serializable value that can be written to
//! disk as JSON. [`crate::EngineBuilder::restore`] replays such a snapshot
//! into a new engine so that the rebuilt engine makes **identical subsequent
//! decisions** to the one that was snapshotted — a restarted process resumes
//! mid-stream with no re-warm-up and no double-reported drifts.
//!
//! # Wire format v2: self-describing streams
//!
//! Since format version 2 every stream registered through a
//! [`optwin_baselines::DetectorSpec`] (the builder's
//! [`crate::EngineBuilder::default_spec`] / [`crate::EngineBuilder::stream_spec`]
//! or the handle's [`crate::EngineHandle::register_stream_spec`]) records its
//! spec in the snapshot as `{spec, state}`. Restoring such a snapshot needs
//! **no caller-side factory at all**: the builder reconstructs each detector
//! from its embedded spec and restores the serialized state into it.
//!
//! Streams registered with an opaque detector instance (the closure-factory
//! escape hatch or [`crate::EngineHandle::register_stream`]) have no spec to
//! embed — their snapshot entry carries `state` only and restoring them
//! still requires a factory, exactly like the v1 format. Version-1 snapshots
//! (no `spec` entries at all) therefore keep loading behind a factory,
//! unchanged.
//!
//! # Wire format v3: placement-preserving streams
//!
//! Since format version 3 every stream entry additionally records the
//! **shard** it lived on (`{spec, state, shard}`), so a restore reproduces
//! a placement tuned by [`crate::EngineHandle::rebalance`] instead of
//! resetting it to modulo. The restoring builder seeds its routing table
//! with `persisted_shard % shards` per stream — exact when the new engine
//! has at least as many shards as the old one, a deterministic fold
//! otherwise — and streams with no recorded shard (v1/v2 snapshots) fall
//! back to the `id % shards` default, so older snapshots keep loading
//! unchanged.
//!
//! # Wire format v4: compact binary window payloads
//!
//! Since format version 4 the per-stream detector `state` may embed its
//! sequence-shaped payloads — OPTWIN/KSWIN windows, the STEPD result
//! window, ADWIN's bucket columns — as compact base64 binary blobs (see
//! [`optwin_core::snapshot`]) instead of JSON number arrays, shrinking
//! large-window fleet snapshots by an order of magnitude while keeping
//! restores **bit-exact** (the blobs carry the same raw accumulators; no
//! recomputation happens on either side). The outer JSON structure is
//! unchanged, and every detector's `restore_state` accepts both layouts, so
//! a v4 reader loads v1–v3 snapshots unchanged and the layout is chosen
//! purely at write time: [`crate::EngineHandle::snapshot_compact`] (or the
//! [`crate::EngineBuilder::snapshot_encoding`] knob) writes v4,
//! [`crate::EngineHandle::snapshot`] defaults to v3 JSON.
//!
//! # Hibernated streams (no wire bump)
//!
//! A stream asleep in the hibernation tier (see [`crate::hibernate`])
//! persists without being woken: its entry embeds the hibernation blob's
//! state tree verbatim plus a `hibernated: true` marker. The marker is
//! omitted for awake streams, so all-awake snapshots remain byte-identical
//! to pre-hibernation output, and the embedded state is ordinary wire-v4
//! binary-encoded detector state that **every** restore path already
//! accepts — which is why hibernated entries require **no** wire version
//! bump: they ride v3/v4 unchanged, and a reader that ignores the marker
//! still restores correctly (awake).
//!
//! The snapshot deliberately excludes detector *configuration* beyond the
//! spec string: restoration re-derives shared resources (e.g. OPTWIN cut
//! tables) from the spec or factory. Shard count and warning policy are
//! recorded as provenance and do not constrain the restoring builder.
//!
//! # Wire format v5: checkpoint directories (built on v4)
//!
//! Whole-fleet snapshots are point-in-time; the [`crate::checkpoint`]
//! subsystem turns them into *continuous* durability without defining a new
//! stream encoding. A checkpoint **directory** (wire v5) holds a full v4
//! [`EngineSnapshot`] as its base, delta overlays listing only the streams
//! each barrier found dirty (same per-stream `{spec, seq, state, shard,
//! hibernated}` entries, reusing this module's serialization verbatim), and
//! per-shard write-ahead-log segments covering the records since the last
//! barrier. Shard workers track a per-stream **dirty bit** — set on
//! creation, after every ingested batch, on hibernation transitions and on
//! migration, cleared only when a checkpoint captures the stream — which is
//! what makes the overlays sparse. Recovery merges base → overlays → WAL
//! tail through the ordinary restore path of this module, so everything
//! above about bit-exactness, factory-less spec restore, placement and
//! hibernated entries applies to recovered fleets unchanged.

use optwin_baselines::DetectorSpec;
use optwin_core::SnapshotEncoding;
use serde::{Deserialize, Serialize};

use crate::engine::EngineError;

/// Current serialization format version of [`EngineSnapshot`].
///
/// * **v1** — per-stream `{seq, detector, state}`; restore requires a
///   factory.
/// * **v2** — adds the optional per-stream `spec`, making restore
///   factory-less for spec-registered streams. v1 snapshots still parse and
///   restore (behind a factory).
/// * **v3** — adds the optional per-stream `shard`, making restore
///   placement-preserving (a rebalanced routing table survives a restart).
///   v1/v2 snapshots still parse and restore, defaulting to `id % shards`.
/// * **v4** — detector states embed window/bucket payloads as compact
///   binary blobs instead of JSON number arrays. v1–v3 snapshots still
///   parse and restore unchanged; v3 remains the default *write* format
///   ([`wire_version`]).
///
/// Wire **v5** is a checkpoint *directory* format
/// ([`crate::checkpoint::CHECKPOINT_WIRE_VERSION`]) layered on top of v4
/// snapshots — it does not bump this constant.
pub const ENGINE_SNAPSHOT_VERSION: u64 = 4;

/// The wire version written for a given sequence layout: v3 for
/// [`SnapshotEncoding::Json`] (the historical number-array layout), v4 for
/// [`SnapshotEncoding::Binary`] (compact blobs).
#[must_use]
pub fn wire_version(encoding: SnapshotEncoding) -> u64 {
    match encoding {
        SnapshotEncoding::Json => 3,
        SnapshotEncoding::Binary => ENGINE_SNAPSHOT_VERSION,
    }
}

/// The persisted state of one stream: its position, optionally the
/// [`DetectorSpec`] it was registered with, and its detector's serialized
/// internals.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStateSnapshot {
    /// The stream id.
    pub stream: u64,
    /// Elements ingested for this stream so far (the next element's sequence
    /// number).
    pub seq: u64,
    /// The detector's stable name, validated against the rebuilt detector on
    /// restore.
    pub detector: String,
    /// Wall-clock seconds spent inside the detector (diagnostics; carried
    /// across restarts so lifetime stats stay meaningful).
    pub detector_seconds: f64,
    /// The spec the stream was registered with, when it was registered
    /// declaratively (`None` for closure-factory and explicit-instance
    /// streams, and for every stream of a v1 snapshot).
    pub spec: Option<DetectorSpec>,
    /// The shard the stream lived on when the snapshot was taken (`None`
    /// for v1/v2 snapshots). Restores re-pin the stream to
    /// `shard % new_shard_count`.
    pub shard: Option<usize>,
    /// The detector state from
    /// [`optwin_core::DriftDetector::snapshot_state`].
    pub state: serde::Value,
    /// Whether the stream was hibernated when the snapshot was taken. Such
    /// an entry's `state` is the detector's complete wire-v4 binary-encoded
    /// state (embedded from the hibernation blob, never by waking the
    /// detector), so it restores on every path: a restoring builder with
    /// [`crate::EngineBuilder::hibernation`] configured re-creates the
    /// stream still asleep, any other builder materializes the detector as
    /// for an awake entry. The flag is **omitted** on the wire when false —
    /// all-awake snapshots stay byte-identical to what pre-hibernation
    /// writers produced, which is why this needs no wire version bump.
    pub hibernated: bool,
}

// Hand-written (rather than derived) so that the `hibernated` marker is
// omitted when false: an all-awake snapshot must stay byte-identical to the
// pre-hibernation wire output (golden fixtures and the size guard pin this).
impl Serialize for StreamStateSnapshot {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("stream".to_string(), self.stream.to_value()),
            ("seq".to_string(), self.seq.to_value()),
            ("detector".to_string(), self.detector.to_value()),
            (
                "detector_seconds".to_string(),
                self.detector_seconds.to_value(),
            ),
            ("spec".to_string(), self.spec.to_value()),
            ("shard".to_string(), self.shard.to_value()),
            ("state".to_string(), self.state.to_value()),
        ];
        if self.hibernated {
            fields.push(("hibernated".to_string(), serde::Value::Bool(true)));
        }
        serde::Value::Object(fields)
    }
}

// Hand-written (rather than derived) so that the `spec` and `shard` entries
// may be absent on the wire: v1 snapshots predate both and v2 predates
// `shard`, and omitting-vs-null must both read back as `None` (likewise an
// absent `hibernated` reads back as `false`).
impl Deserialize for StreamStateSnapshot {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let missing =
            |name: &str| serde::DeError::new(format!("missing field `{name}` in stream snapshot"));
        let spec = match value.get("spec") {
            None | Some(serde::Value::Null) => None,
            Some(v) => Some(DetectorSpec::from_value(v)?),
        };
        let shard = match value.get("shard") {
            None | Some(serde::Value::Null) => None,
            Some(v) => Some(usize::from_value(v)?),
        };
        let hibernated = match value.get("hibernated") {
            None | Some(serde::Value::Null) => false,
            Some(v) => bool::from_value(v)?,
        };
        Ok(Self {
            stream: u64::from_value(value.get("stream").ok_or_else(|| missing("stream"))?)?,
            seq: u64::from_value(value.get("seq").ok_or_else(|| missing("seq"))?)?,
            detector: String::from_value(
                value.get("detector").ok_or_else(|| missing("detector"))?,
            )?,
            detector_seconds: f64::from_value(
                value
                    .get("detector_seconds")
                    .ok_or_else(|| missing("detector_seconds"))?,
            )?,
            spec,
            shard,
            state: value.get("state").ok_or_else(|| missing("state"))?.clone(),
            hibernated,
        })
    }
}

/// A point-in-time capture of every stream in an engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Format version (parsed snapshots may be any supported version up to
    /// [`ENGINE_SNAPSHOT_VERSION`]).
    pub version: u64,
    /// Shard count of the engine that produced the snapshot (provenance
    /// only; the restoring builder chooses its own shard count).
    pub shards: usize,
    /// Whether the producing engine emitted warning events (provenance
    /// only).
    pub emit_warnings: bool,
    /// Per-stream states, sorted by stream id.
    pub streams: Vec<StreamStateSnapshot>,
}

impl EngineSnapshot {
    /// Number of streams captured in the snapshot.
    #[must_use]
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// `true` when every stream embeds its [`DetectorSpec`], i.e. the
    /// snapshot restores with no factory configured.
    #[must_use]
    pub fn is_self_describing(&self) -> bool {
        self.streams.iter().all(|s| s.spec.is_some())
    }

    /// `true` when every stream records its shard placement (wire format
    /// v3), i.e. a restore reproduces the producing engine's routing table
    /// instead of re-pinning by `id % shards`.
    #[must_use]
    pub fn records_placement(&self) -> bool {
        self.streams.iter().all(|s| s.shard.is_some())
    }

    /// Serializes the snapshot to compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("value-tree serialization is infallible")
    }

    /// Parses a snapshot previously produced by [`EngineSnapshot::to_json`]
    /// — any supported format version (v1 through v4).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidSnapshot`] on malformed JSON, a shape
    /// mismatch, or an unsupported format version.
    pub fn from_json(text: &str) -> Result<Self, EngineError> {
        let snapshot: Self =
            serde_json::from_str(text).map_err(|e| EngineError::InvalidSnapshot(e.to_string()))?;
        snapshot.check_version()?;
        Ok(snapshot)
    }

    /// Validates that this snapshot's format version is supported.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidSnapshot`] for version 0 or versions
    /// newer than [`ENGINE_SNAPSHOT_VERSION`].
    pub(crate) fn check_version(&self) -> Result<(), EngineError> {
        if !(1..=ENGINE_SNAPSHOT_VERSION).contains(&self.version) {
            return Err(EngineError::InvalidSnapshot(format!(
                "unsupported engine snapshot version {} (supported: 1..={ENGINE_SNAPSHOT_VERSION})",
                self.version
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EngineSnapshot {
        EngineSnapshot {
            version: ENGINE_SNAPSHOT_VERSION,
            shards: 4,
            emit_warnings: true,
            streams: vec![
                StreamStateSnapshot {
                    stream: 7,
                    seq: 1_234,
                    detector: "OPTWIN".to_string(),
                    detector_seconds: 0.25,
                    spec: Some("optwin:w_max=500".parse().expect("valid spec")),
                    shard: Some(3),
                    // `Int` (not `UInt`): in-range unsigned values re-parse as
                    // `Int`, and the round-trip assertion compares value trees.
                    state: serde::Value::Object(vec![("split".to_string(), serde::Value::Int(10))]),
                    hibernated: false,
                },
                StreamStateSnapshot {
                    stream: 9,
                    seq: 3,
                    detector: "gate".to_string(),
                    detector_seconds: 0.0,
                    spec: None,
                    shard: None,
                    state: serde::Value::Null,
                    hibernated: false,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip() {
        let snapshot = sample();
        let json = snapshot.to_json();
        let back = EngineSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snapshot);
        assert_eq!(back.stream_count(), 2);
        assert!(!back.is_self_describing());
        assert_eq!(
            back.streams[0].state.get("split"),
            Some(&serde::Value::Int(10))
        );
        assert_eq!(
            back.streams[0].spec.as_ref().map(DetectorSpec::id),
            Some("optwin")
        );
    }

    #[test]
    fn v1_snapshots_without_spec_entries_parse() {
        // A v1 snapshot has no `spec` (nor `shard`) field at all; it must
        // read back as spec-less, placement-less streams.
        let v1 = r#"{"version":1,"shards":2,"emit_warnings":false,"streams":[
            {"stream":3,"seq":10,"detector":"OPTWIN","detector_seconds":0.5,"state":null}
        ]}"#;
        let snapshot = EngineSnapshot::from_json(v1).unwrap();
        assert_eq!(snapshot.version, 1);
        assert_eq!(snapshot.streams[0].spec, None);
        assert_eq!(snapshot.streams[0].shard, None);
        assert!(!snapshot.is_self_describing());
        assert!(!snapshot.records_placement());
    }

    #[test]
    fn v2_snapshots_without_shard_entries_parse() {
        // A v2 snapshot embeds specs but predates the `shard` entry.
        let v2 = r#"{"version":2,"shards":2,"emit_warnings":false,"streams":[
            {"stream":3,"seq":10,"detector":"ADWIN","detector_seconds":0.5,
             "spec":"adwin:delta=0.002,clock=32,min_window_len=10,min_sub_window_len=5",
             "state":null}
        ]}"#;
        let snapshot = EngineSnapshot::from_json(v2).unwrap();
        assert_eq!(snapshot.version, 2);
        assert!(snapshot.is_self_describing());
        assert_eq!(snapshot.streams[0].shard, None);
        assert!(!snapshot.records_placement());
    }

    #[test]
    fn hibernated_marker_is_omitted_when_false_and_round_trips_when_true() {
        // Awake entries must serialize byte-identically to pre-hibernation
        // output: no `hibernated` key at all.
        let snapshot = sample();
        assert!(!snapshot.to_json().contains("hibernated"));

        let mut sleeping = sample();
        sleeping.streams[0].hibernated = true;
        let json = sleeping.to_json();
        assert!(json.contains(r#""hibernated":true"#));
        let back = EngineSnapshot::from_json(&json).unwrap();
        assert_eq!(back, sleeping);
        assert!(back.streams[0].hibernated);
        assert!(!back.streams[1].hibernated);
    }

    #[test]
    fn self_describing_and_placement_detection() {
        let mut snapshot = sample();
        snapshot.streams.truncate(1);
        assert!(snapshot.is_self_describing());
        assert!(snapshot.records_placement());
    }

    #[test]
    fn rejects_garbage_and_future_versions() {
        assert!(matches!(
            EngineSnapshot::from_json("not json"),
            Err(EngineError::InvalidSnapshot(_))
        ));
        let mut future = sample();
        future.version = ENGINE_SNAPSHOT_VERSION + 1;
        let err = EngineSnapshot::from_json(&future.to_json()).unwrap_err();
        assert!(err.to_string().contains("version"));
        let mut zero = sample();
        zero.version = 0;
        let err = EngineSnapshot::from_json(&zero.to_json()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }
}
