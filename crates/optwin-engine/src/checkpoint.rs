//! Continuous durability: delta checkpoints plus a write-ahead log — the
//! checkpoint **wire format v5**.
//!
//! Full engine snapshots (wire v1–v4) are O(fleet) per capture: the wrong
//! shape for a long-running service that must bound its data-loss window at
//! million-stream scale, where almost every stream is cold between any two
//! barriers. The checkpoint subsystem makes durability **incremental**:
//!
//! * Shard workers track a *dirty* bit per stream (set by ingestion,
//!   hibernation and migration; cleared at capture). A checkpoint writes a
//!   **delta overlay** holding only the dirty streams' full
//!   `{spec, seq, state, shard, hibernated}` entries — the same
//!   [`StreamStateSnapshot`] the v4 format uses, so a delta of a 1 %-active
//!   fleet costs ~1 % of a base snapshot.
//! * Between checkpoints, every record batch (and every declarative
//!   registration) a worker dequeues is first appended to a per-shard
//!   **write-ahead log** segment — self-checksummed frames over the
//!   [`optwin_core::snapshot`] WAL framing, so a torn tail from a crash
//!   mid-append reads as clean EOF while real corruption fails loudly.
//! * When the delta chain's cumulative size crosses
//!   [`CheckpointPolicy::compact_ratio`] × the base size, the next
//!   checkpoint **compacts**: it captures every stream into a fresh base
//!   and drops the chain.
//!
//! On disk a checkpoint directory is
//!
//! ```text
//! MANIFEST.json           {"version":5,"generation":G,"shards":N,"base":…,"deltas":[…]}
//! base-<g>.json           full EngineSnapshot (wire v4, binary-encoded states)
//! delta-<g>.json          {"version":5,"generation":g,"streams":[dirty entries]}
//! wal-<g>-<shard>.log     per-shard segments covering activity after checkpoint g-1
//! ```
//!
//! Checkpoint *generations* count captures: checkpoint `G` is a barrier
//! covering everything the workers processed before it, after which each
//! worker logs to segment `wal-<G+1>-<shard>.log`. The manifest names the
//! last completed checkpoint; every file write goes through a temp-file
//! rename and old files are garbage-collected only after the new manifest
//! is durably in place, so a crash at **any** point leaves a recoverable
//! directory.
//!
//! Recovery ([`crate::EngineBuilder::recover_from_dir`]) replays base →
//! deltas → WAL tail: the merged snapshot restores exactly like a v4
//! snapshot (hibernated entries recover **asleep** under a hibernating
//! builder), then the logged record batches are re-submitted in their
//! original per-stream order. Because every detector restore is bit-exact,
//! the recovered fleet emits byte-identical [`crate::DriftEvent`]s and
//! `seq` numbers to an uninterrupted run — the crash-recovery harness in
//! `tests/engine_checkpoint.rs` kills the process mid-ingest and proves it
//! for all 8 detector kinds.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use optwin_baselines::DetectorSpec;
use optwin_core::snapshot as codec;
use serde::{Deserialize, Serialize};

use optwin_core::SnapshotEncoding;

use crate::engine::EngineError;
use crate::persist::{wire_version, EngineSnapshot, StreamStateSnapshot};

/// Wire format version of a checkpoint directory (manifest + base + delta
/// overlays + WAL segments). v5 is a *directory* format: its base and the
/// merged view of base + deltas are ordinary wire-v4 [`EngineSnapshot`]s,
/// which is why recovery rides the existing restore path unchanged.
pub const CHECKPOINT_WIRE_VERSION: u64 = 5;

/// Manifest filename inside a checkpoint directory.
pub(crate) const MANIFEST_FILE: &str = "MANIFEST.json";

/// WAL frame kind: a submitted record batch (one shard's partition).
pub(crate) const WAL_KIND_RECORDS: u8 = 0;
/// WAL frame kind: a declarative stream registration.
pub(crate) const WAL_KIND_REGISTER: u8 = 1;

// ---------------------------------------------------------------------------
// Policy and report
// ---------------------------------------------------------------------------

/// How hard checkpoint and WAL writes push data toward stable storage.
///
/// The default, [`Durability::PageCache`], flushes every write to the OS —
/// the logged prefix survives a process abort, the durability model the
/// crash-recovery harness proves. [`Durability::Fsync`] additionally
/// `fsync`s WAL segments at every append barrier and makes base/delta and
/// manifest writes durable (file synced before the rename, directory
/// synced after), extending the guarantee to power loss at a per-batch
/// latency cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Flush to the kernel page cache only (survives process crashes).
    #[default]
    PageCache,
    /// Also fsync files (and the checkpoint directory around manifest
    /// renames) so the data survives power loss.
    Fsync,
}

/// Lifetime count of `fsync`-class calls ([`File::sync_data`] /
/// [`File::sync_all`]) issued by this module. [`Durability::PageCache`]
/// issues none, which is what the crash-harness probe asserts.
static SYNC_CALLS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Process-wide count of fsync-class calls issued by the checkpoint
/// subsystem — a test probe for asserting a [`Durability`] level is
/// honored (power loss itself cannot be simulated in-process).
#[must_use]
pub fn fsync_count() -> u64 {
    SYNC_CALLS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Syncs a file's data (and metadata needed to reach it) to stable
/// storage, counting the call for the [`fsync_count`] probe.
fn sync_file(file: &File, path: &Path) -> Result<(), EngineError> {
    SYNC_CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    file.sync_data().map_err(|e| io_err("syncing", path, &e))
}

/// Syncs a directory so a just-renamed entry inside it is durable.
fn sync_dir(dir: &Path) -> Result<(), EngineError> {
    let handle = File::open(dir).map_err(|e| io_err("opening for sync", dir, &e))?;
    SYNC_CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    handle.sync_all().map_err(|e| io_err("syncing", dir, &e))
}

/// When and how the engine checkpoints, configured via
/// [`crate::EngineBuilder::checkpoint`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointPolicy {
    /// Take a checkpoint every this many [`crate::EngineHandle::flush`]
    /// barriers (`0`: only explicit [`crate::EngineHandle::checkpoint`]
    /// calls checkpoint; the WAL still bounds the loss window either way).
    pub every_flushes: u32,
    /// Compact the delta chain back into a fresh base once the chain's
    /// cumulative bytes exceed this ratio of the base's bytes. `0.0` forces
    /// every checkpoint to be a full base; an infinite ratio never
    /// compacts.
    pub compact_ratio: f64,
    /// How hard WAL appends and checkpoint files push toward stable
    /// storage (default: [`Durability::PageCache`]).
    pub durability: Durability,
}

impl CheckpointPolicy {
    /// A policy checkpointing every `flushes` flush barriers with the
    /// default compaction ratio.
    #[must_use]
    pub fn every_flushes(flushes: u32) -> Self {
        Self {
            every_flushes: flushes,
            ..Self::default()
        }
    }

    /// Returns the policy with the compaction ratio replaced.
    #[must_use]
    pub fn compact_ratio(mut self, ratio: f64) -> Self {
        self.compact_ratio = ratio;
        self
    }

    /// Returns the policy with the durability level replaced.
    #[must_use]
    pub fn durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }
}

impl Default for CheckpointPolicy {
    /// Checkpoint at every flush barrier; compact once the delta chain
    /// outweighs half the base — deltas stay the common case while the
    /// recovery read amplification stays below 1.5 × the fleet size.
    /// Durability targets process crashes (page-cache flushes, no fsync).
    fn default() -> Self {
        Self {
            every_flushes: 1,
            compact_ratio: 0.5,
            durability: Durability::PageCache,
        }
    }
}

/// What one checkpoint did, returned by
/// [`crate::EngineHandle::checkpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The generation this checkpoint completed.
    pub generation: u64,
    /// `true` when a full base was written (first checkpoint, compaction,
    /// or recovery); `false` for a delta overlay.
    pub full: bool,
    /// Stream entries written (the dirty set for a delta; the whole fleet
    /// for a base).
    pub streams: usize,
    /// Bytes of the file this checkpoint wrote.
    pub bytes: u64,
    /// Bytes of the current base snapshot after this checkpoint.
    pub base_bytes: u64,
    /// Cumulative bytes of the delta chain after this checkpoint (0 right
    /// after a compaction).
    pub delta_chain_bytes: u64,
}

impl std::fmt::Display for CheckpointReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checkpoint #{} ({}): {} streams, {} bytes (chain {} / base {})",
            self.generation,
            if self.full { "base" } else { "delta" },
            self.streams,
            self.bytes,
            self.delta_chain_bytes,
            self.base_bytes
        )
    }
}

// ---------------------------------------------------------------------------
// On-disk records
// ---------------------------------------------------------------------------

/// The checkpoint directory's root record: which base and which overlays —
/// in application order — constitute the current state, and the generation
/// of the last completed checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Manifest {
    /// Always [`CHECKPOINT_WIRE_VERSION`].
    pub(crate) version: u64,
    /// Generation of the last completed checkpoint; WAL segments with a
    /// larger generation hold the uncheckpointed tail.
    pub(crate) generation: u64,
    /// Shard count of the engine that wrote the checkpoint (provenance).
    pub(crate) shards: usize,
    /// Filename of the base snapshot, relative to the directory.
    pub(crate) base: String,
    /// Filenames of the delta overlays, oldest first.
    pub(crate) deltas: Vec<String>,
}

/// One delta overlay: the dirty streams' full snapshot entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct DeltaSnapshot {
    /// Always [`CHECKPOINT_WIRE_VERSION`].
    pub(crate) version: u64,
    /// The checkpoint generation that wrote this overlay.
    pub(crate) generation: u64,
    /// Entries of the streams dirty since the previous checkpoint, sorted
    /// by stream id. Each replaces (or introduces) its stream wholesale
    /// when the overlay is applied.
    pub(crate) streams: Vec<StreamStateSnapshot>,
}

/// Filename of the base snapshot written by checkpoint `generation`.
pub(crate) fn base_file_name(generation: u64) -> String {
    format!("base-{generation}.json")
}

/// Filename of the delta overlay written by checkpoint `generation`.
pub(crate) fn delta_file_name(generation: u64) -> String {
    format!("delta-{generation}.json")
}

/// Path of the WAL segment holding shard `shard`'s activity after
/// checkpoint `generation - 1`.
pub(crate) fn wal_segment_path(dir: &Path, generation: u64, shard: usize) -> PathBuf {
    dir.join(format!("wal-{generation}-{shard}.log"))
}

/// Parses a WAL segment filename back into `(generation, shard)`.
fn parse_wal_segment_name(name: &str) -> Option<(u64, usize)> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    let (generation, shard) = rest.split_once('-')?;
    Some((generation.parse().ok()?, shard.parse().ok()?))
}

/// Wraps an I/O failure into [`EngineError::Checkpoint`], naming the path.
fn io_err(action: &str, path: &Path, error: &io::Error) -> EngineError {
    EngineError::Checkpoint(format!("{action} {}: {error}", path.display()))
}

/// Writes `contents` to `path` through a temp-file rename, so a crash
/// mid-write can never leave a half-written file under the final name.
/// Under [`Durability::Fsync`] the temp file is synced before the rename
/// and the parent directory after it, so the file under its final name
/// survives power loss, not just process death.
pub(crate) fn write_atomic_durable(
    path: &Path,
    contents: &str,
    durability: Durability,
) -> Result<(), EngineError> {
    let tmp = path.with_extension("tmp");
    match durability {
        Durability::PageCache => {
            fs::write(&tmp, contents).map_err(|e| io_err("writing", &tmp, &e))?;
        }
        Durability::Fsync => {
            let mut file = File::create(&tmp).map_err(|e| io_err("creating", &tmp, &e))?;
            file.write_all(contents.as_bytes())
                .map_err(|e| io_err("writing", &tmp, &e))?;
            sync_file(&file, &tmp)?;
        }
    }
    fs::rename(&tmp, path).map_err(|e| io_err("renaming", &tmp, &e))?;
    if durability == Durability::Fsync {
        if let Some(parent) = path.parent() {
            sync_dir(parent)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Write-ahead log
// ---------------------------------------------------------------------------

/// Encodes a record batch as a WAL payload: `count u32 LE`, then per record
/// `stream u64 LE · value-bits u64 LE` (bit patterns, so non-finite values
/// survive).
fn encode_records_payload(records: &[(u64, f64)]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + records.len() * 16);
    payload.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for &(stream, value) in records {
        payload.extend_from_slice(&stream.to_le_bytes());
        payload.extend_from_slice(&value.to_bits().to_le_bytes());
    }
    payload
}

/// Decodes a record-batch payload, validating the count against the length.
fn decode_records_payload(payload: &[u8]) -> Result<Vec<(u64, f64)>, EngineError> {
    let bad = |message: String| EngineError::InvalidSnapshot(message);
    if payload.len() < 4 {
        return Err(bad("WAL record frame shorter than its count".to_string()));
    }
    let count = u32::from_le_bytes(payload[..4].try_into().expect("4 bytes")) as usize;
    let body = &payload[4..];
    if body.len() != count * 16 {
        return Err(bad(format!(
            "WAL record frame count mismatch: {count} records but {} payload bytes",
            body.len()
        )));
    }
    Ok(body
        .chunks_exact(16)
        .map(|chunk| {
            let stream = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"));
            let bits = u64::from_le_bytes(chunk[8..].try_into().expect("8 bytes"));
            (stream, f64::from_bits(bits))
        })
        .collect())
}

/// Encodes a declarative registration: `stream u64 LE · spec utf-8`.
fn encode_register_payload(stream: u64, spec: &DetectorSpec) -> Vec<u8> {
    let text = spec.to_string();
    let mut payload = Vec::with_capacity(8 + text.len());
    payload.extend_from_slice(&stream.to_le_bytes());
    payload.extend_from_slice(text.as_bytes());
    payload
}

/// Decodes a registration payload back into `(stream, spec)`.
fn decode_register_payload(payload: &[u8]) -> Result<(u64, DetectorSpec), EngineError> {
    let bad = |message: String| EngineError::InvalidSnapshot(message);
    if payload.len() < 8 {
        return Err(bad(
            "WAL register frame shorter than its stream id".to_string()
        ));
    }
    let stream = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    let text = std::str::from_utf8(&payload[8..])
        .map_err(|e| bad(format!("WAL register frame spec is not UTF-8: {e}")))?;
    let spec = text
        .parse::<DetectorSpec>()
        .map_err(|e| bad(format!("WAL register frame spec `{text}`: {e}")))?;
    Ok((stream, spec))
}

/// A shard worker's append handle to its current WAL segment. Every append
/// is flushed through to the OS before the batch is processed, so the
/// logged prefix survives a process abort (kernel page cache). Under the
/// default [`Durability::PageCache`] no `fsync` is issued per batch — the
/// durability target is process crashes, not power loss;
/// [`Durability::Fsync`] adds a `sync_data` at every append barrier to
/// cover power loss too.
pub(crate) struct WalWriter {
    writer: BufWriter<File>,
    path: PathBuf,
    durability: Durability,
}

impl WalWriter {
    /// Creates (truncating) the segment for `(generation, shard)` and
    /// writes its header.
    pub(crate) fn create(
        dir: &Path,
        generation: u64,
        shard: usize,
        durability: Durability,
    ) -> Result<Self, EngineError> {
        let path = wal_segment_path(dir, generation, shard);
        let file = File::create(&path).map_err(|e| io_err("creating", &path, &e))?;
        let mut writer = BufWriter::new(file);
        writer
            .write_all(&codec::wal_segment_header(shard as u32, generation))
            .and_then(|()| writer.flush())
            .map_err(|e| io_err("writing header of", &path, &e))?;
        let wal = Self {
            writer,
            path,
            durability,
        };
        wal.sync_if_fsync()?;
        Ok(wal)
    }

    /// Issues the append-barrier `fsync` when the policy asks for it.
    fn sync_if_fsync(&self) -> Result<(), EngineError> {
        if self.durability == Durability::Fsync {
            sync_file(self.writer.get_ref(), &self.path)?;
        }
        Ok(())
    }

    /// Appends (and flushes) one record-batch frame.
    pub(crate) fn append_records(&mut self, records: &[(u64, f64)]) -> Result<(), EngineError> {
        self.append(WAL_KIND_RECORDS, &encode_records_payload(records))
    }

    /// Appends (and flushes) one registration frame.
    pub(crate) fn append_register(
        &mut self,
        stream: u64,
        spec: &DetectorSpec,
    ) -> Result<(), EngineError> {
        self.append(WAL_KIND_REGISTER, &encode_register_payload(stream, spec))
    }

    fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), EngineError> {
        self.writer
            .write_all(&codec::wal_frame(kind, payload))
            .and_then(|()| self.writer.flush())
            .map_err(|e| io_err("appending to", &self.path, &e))?;
        self.sync_if_fsync()
    }

    /// Finalizes the segment (flushes buffered bytes) before rotation.
    pub(crate) fn finish(mut self) -> Result<(), EngineError> {
        self.writer
            .flush()
            .map_err(|e| io_err("finalizing", &self.path, &e))?;
        self.sync_if_fsync()
    }
}

/// One replayable operation recovered from the WAL tail.
pub(crate) enum ReplayOp {
    /// A record batch, in its original submission order.
    Records(Vec<(u64, f64)>),
    /// A declarative registration (explicit-instance registrations are not
    /// durable — they have no spec to log).
    Register(u64, DetectorSpec),
}

/// The uncheckpointed tail recovered from a checkpoint directory: the
/// logged operations in replay order, plus the generation the next
/// checkpoint must use (past every generation present on disk).
pub(crate) struct RecoveredLog {
    pub(crate) ops: Vec<ReplayOp>,
    pub(crate) next_generation: u64,
}

/// Parses one WAL segment into replay operations. A torn trailing frame
/// reads as clean EOF; a checksum failure on a complete frame, a header
/// mismatch against the filename, or an unknown frame kind is corruption.
fn read_wal_segment(
    path: &Path,
    generation: u64,
    shard: usize,
    ops: &mut Vec<ReplayOp>,
) -> Result<(), EngineError> {
    let name = path.display();
    let bad = |message: String| EngineError::InvalidSnapshot(message);
    let bytes = fs::read(path).map_err(|e| bad(format!("reading WAL segment {name}: {e}")))?;
    let (header_shard, header_generation) = codec::wal_parse_segment_header(&bytes)
        .map_err(|e| bad(format!("WAL segment {name}: {e}")))?;
    if (header_shard as usize, header_generation) != (shard, generation) {
        return Err(bad(format!(
            "WAL segment {name}: header says generation {header_generation} shard \
             {header_shard}, filename says generation {generation} shard {shard}"
        )));
    }
    let mut at = codec::WAL_HEADER_LEN;
    while let Some((kind, payload, consumed)) =
        codec::wal_next_frame(&bytes[at..]).map_err(|e| bad(format!("WAL segment {name}: {e}")))?
    {
        match kind {
            WAL_KIND_RECORDS => ops.push(ReplayOp::Records(
                decode_records_payload(payload)
                    .map_err(|e| bad(format!("WAL segment {name}: {e}")))?,
            )),
            WAL_KIND_REGISTER => {
                let (stream, spec) = decode_register_payload(payload)
                    .map_err(|e| bad(format!("WAL segment {name}: {e}")))?;
                ops.push(ReplayOp::Register(stream, spec));
            }
            other => {
                return Err(bad(format!(
                    "WAL segment {name}: unknown frame kind {other}"
                )))
            }
        }
        at += consumed;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Loading a checkpoint directory
// ---------------------------------------------------------------------------

/// Reads and validates the manifest of a checkpoint directory.
pub(crate) fn read_manifest(dir: &Path) -> Result<Manifest, EngineError> {
    let path = dir.join(MANIFEST_FILE);
    let bad = |message: String| EngineError::InvalidSnapshot(message);
    let text =
        fs::read_to_string(&path).map_err(|e| bad(format!("reading {}: {e}", path.display())))?;
    let manifest: Manifest =
        serde_json::from_str(&text).map_err(|e| bad(format!("parsing {}: {e}", path.display())))?;
    if manifest.version != CHECKPOINT_WIRE_VERSION {
        return Err(bad(format!(
            "unsupported checkpoint manifest version {} (expected {CHECKPOINT_WIRE_VERSION})",
            manifest.version
        )));
    }
    Ok(manifest)
}

/// Loads the checkpointed state of a directory — base snapshot with every
/// delta overlay applied in order — **without** the WAL tail. This is the
/// introspection entry point (what would a recovery start from?); actual
/// recovery ([`crate::EngineBuilder::recover_from_dir`]) additionally
/// replays the logged record batches.
///
/// # Errors
///
/// Returns [`EngineError::InvalidSnapshot`] when the manifest, the base or
/// any overlay is missing, truncated, corrupt, or of an unsupported
/// version.
pub fn load_checkpoint_dir(dir: impl AsRef<Path>) -> Result<EngineSnapshot, EngineError> {
    let dir = dir.as_ref();
    let manifest = read_manifest(dir)?;
    let bad = |message: String| EngineError::InvalidSnapshot(message);

    let base_path = dir.join(&manifest.base);
    let text = fs::read_to_string(&base_path).map_err(|e| {
        bad(format!(
            "missing base snapshot {}: {e}",
            base_path.display()
        ))
    })?;
    let base = EngineSnapshot::from_json(&text)
        .map_err(|e| bad(format!("base snapshot {}: {e}", base_path.display())))?;

    // Apply overlays in manifest order: each entry replaces (or introduces)
    // its stream wholesale. Positions are looked up through a map; the
    // merged stream list stays sorted by id like every snapshot.
    let mut streams = base.streams;
    let mut index: std::collections::HashMap<u64, usize> = streams
        .iter()
        .enumerate()
        .map(|(at, s)| (s.stream, at))
        .collect();
    for name in &manifest.deltas {
        let delta_path = dir.join(name);
        let text = fs::read_to_string(&delta_path).map_err(|e| {
            bad(format!(
                "missing delta overlay {}: {e}",
                delta_path.display()
            ))
        })?;
        let delta: DeltaSnapshot = serde_json::from_str(&text)
            .map_err(|e| bad(format!("delta overlay {}: {e}", delta_path.display())))?;
        if delta.version != CHECKPOINT_WIRE_VERSION {
            return Err(bad(format!(
                "delta overlay {}: unsupported version {} (expected {CHECKPOINT_WIRE_VERSION})",
                delta_path.display(),
                delta.version
            )));
        }
        for entry in delta.streams {
            match index.get(&entry.stream) {
                Some(&at) => streams[at] = entry,
                None => {
                    index.insert(entry.stream, streams.len());
                    streams.push(entry);
                }
            }
        }
    }
    streams.sort_unstable_by_key(|s| s.stream);

    Ok(EngineSnapshot {
        version: base.version,
        shards: manifest.shards,
        emit_warnings: base.emit_warnings,
        streams,
    })
}

/// Loads everything recovery needs: the merged checkpoint state plus the
/// WAL tail (segments past the manifest generation, in generation-then-
/// shard order — per-stream record order is preserved because a stream
/// lives on one shard within a generation window; checkpoints are barriers
/// at every migration).
pub(crate) fn load_recovery(dir: &Path) -> Result<(EngineSnapshot, RecoveredLog), EngineError> {
    let manifest = read_manifest(dir)?;
    let snapshot = load_checkpoint_dir(dir)?;

    let mut segments: Vec<(u64, usize)> = Vec::new();
    let mut max_generation = manifest.generation;
    let entries = fs::read_dir(dir).map_err(|e| {
        EngineError::InvalidSnapshot(format!("reading checkpoint dir {}: {e}", dir.display()))
    })?;
    for entry in entries {
        let entry = entry.map_err(|e| {
            EngineError::InvalidSnapshot(format!("reading checkpoint dir {}: {e}", dir.display()))
        })?;
        let name = entry.file_name();
        let Some((generation, shard)) = name.to_str().and_then(parse_wal_segment_name) else {
            continue;
        };
        max_generation = max_generation.max(generation);
        if generation > manifest.generation {
            segments.push((generation, shard));
        }
    }
    segments.sort_unstable();

    let mut ops = Vec::new();
    for (generation, shard) in segments {
        read_wal_segment(
            &wal_segment_path(dir, generation, shard),
            generation,
            shard,
            &mut ops,
        )?;
    }
    Ok((
        snapshot,
        RecoveredLog {
            ops,
            next_generation: max_generation + 1,
        },
    ))
}

// ---------------------------------------------------------------------------
// Handle-side checkpoint state
// ---------------------------------------------------------------------------

/// Checkpoint configuration threaded from the builder into the spawned
/// engine.
pub(crate) struct CheckpointConfig {
    pub(crate) dir: PathBuf,
    pub(crate) policy: CheckpointPolicy,
    /// Generation the first checkpoint taken by this engine will use
    /// (0 for a fresh directory; past every on-disk generation after a
    /// recovery).
    pub(crate) next_generation: u64,
}

/// Mutable checkpoint bookkeeping, held behind a mutex in the handle's
/// shared state. File sizes are tracked here so the compaction decision
/// (delta chain vs. base) costs no filesystem metadata calls on the flush
/// path.
pub(crate) struct CheckpointState {
    pub(crate) dir: PathBuf,
    pub(crate) policy: CheckpointPolicy,
    /// Generation of the next checkpoint to take.
    pub(crate) next_generation: u64,
    /// Filename of the current base (`None` until the first checkpoint).
    pub(crate) base_file: Option<String>,
    pub(crate) base_bytes: u64,
    /// Delta overlay filenames since the base, oldest first.
    pub(crate) deltas: Vec<String>,
    pub(crate) delta_bytes: u64,
    /// Flush barriers since the last checkpoint, for
    /// [`CheckpointPolicy::every_flushes`].
    pub(crate) flushes_since: u32,
    /// Set when a checkpoint failed after its capture barrier: some shards
    /// may already have cleared dirty bits for entries that never reached a
    /// manifest, so a later *delta* could silently omit them once garbage
    /// collection drops the WAL segments covering their records. Forces the
    /// next checkpoint to write a full base, restoring the invariant.
    pub(crate) degraded: bool,
}

impl CheckpointState {
    pub(crate) fn new(config: CheckpointConfig) -> Self {
        Self {
            dir: config.dir,
            policy: config.policy,
            next_generation: config.next_generation,
            base_file: None,
            base_bytes: 0,
            deltas: Vec::new(),
            delta_bytes: 0,
            flushes_since: 0,
            degraded: false,
        }
    }

    /// `true` when the next checkpoint must write a full base: there is no
    /// base yet, or the delta chain outgrew
    /// [`CheckpointPolicy::compact_ratio`].
    pub(crate) fn wants_full(&self) -> bool {
        self.base_file.is_none()
            || self.degraded
            || (!self.deltas.is_empty()
                && self.delta_bytes as f64 > self.policy.compact_ratio * self.base_bytes as f64)
    }

    /// The manifest describing the current base + delta chain.
    pub(crate) fn manifest(&self, generation: u64, shards: usize) -> Manifest {
        Manifest {
            version: CHECKPOINT_WIRE_VERSION,
            generation,
            shards,
            base: self.base_file.clone().unwrap_or_default(),
            deltas: self.deltas.clone(),
        }
    }

    /// The handle side of a checkpoint, after the workers captured their
    /// entries: writes the base or delta file, then the manifest (the
    /// commit point), advances the generation counters, and garbage-
    /// collects — in that order, so a crash between any two steps leaves
    /// the previous manifest authoritative with its WAL segments intact.
    pub(crate) fn commit(
        &mut self,
        generation: u64,
        full: bool,
        streams: Vec<StreamStateSnapshot>,
        shards: usize,
        emit_warnings: bool,
    ) -> Result<CheckpointReport, EngineError> {
        let entry_count = streams.len();
        let (name, contents) = if full {
            let snapshot = EngineSnapshot {
                version: wire_version(SnapshotEncoding::Binary),
                shards,
                emit_warnings,
                streams,
            };
            (base_file_name(generation), snapshot.to_json())
        } else {
            let delta = DeltaSnapshot {
                version: CHECKPOINT_WIRE_VERSION,
                generation,
                streams,
            };
            (
                delta_file_name(generation),
                serde_json::to_string(&delta).expect("value-tree serialization is infallible"),
            )
        };
        let bytes = contents.len() as u64;
        // Under `Fsync`, the base/delta file (and its directory entry) is
        // durable *before* the manifest rename publishes it — a manifest
        // must never outlive the files it names.
        write_atomic_durable(&self.dir.join(&name), &contents, self.policy.durability)?;
        if full {
            self.base_file = Some(name);
            self.base_bytes = bytes;
            self.deltas.clear();
            self.delta_bytes = 0;
        } else {
            self.deltas.push(name);
            self.delta_bytes += bytes;
        }
        let manifest = self.manifest(generation, shards);
        write_atomic_durable(
            &self.dir.join(MANIFEST_FILE),
            &serde_json::to_string(&manifest).expect("value-tree serialization is infallible"),
            self.policy.durability,
        )?;
        self.next_generation = generation + 1;
        self.flushes_since = 0;
        self.degraded = false;
        self.collect_garbage(generation);
        Ok(CheckpointReport {
            generation,
            full,
            streams: entry_count,
            bytes,
            base_bytes: self.base_bytes,
            delta_chain_bytes: self.delta_bytes,
        })
    }

    /// Deletes every file the current manifest no longer references: old
    /// bases and overlays, and WAL segments at or below the completed
    /// generation. Failures are ignored — garbage costs disk, not
    /// correctness, and the next checkpoint retries.
    pub(crate) fn collect_garbage(&self, completed_generation: u64) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        let live: std::collections::HashSet<&str> = self
            .base_file
            .iter()
            .map(String::as_str)
            .chain(self.deltas.iter().map(String::as_str))
            .collect();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else {
                continue;
            };
            let stale = if let Some((generation, _)) = parse_wal_segment_name(name) {
                generation <= completed_generation
            } else if name.starts_with("base-") || name.starts_with("delta-") {
                !live.contains(name)
            } else {
                false
            };
            if stale {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_payload_round_trips_with_nonfinite_values() {
        let records = vec![
            (0u64, 0.25f64),
            (u64::MAX, f64::NEG_INFINITY),
            (7, f64::MAX),
            (8, -0.0),
        ];
        let decoded = decode_records_payload(&encode_records_payload(&records)).unwrap();
        assert_eq!(decoded.len(), records.len());
        for ((s0, v0), (s1, v1)) in records.iter().zip(&decoded) {
            assert_eq!(s0, s1);
            assert_eq!(v0.to_bits(), v1.to_bits());
        }
        // NaN survives by bit pattern, which `==` cannot check.
        let nan = vec![(3u64, f64::from_bits(0x7ff8_dead_beef_0001))];
        let back = decode_records_payload(&encode_records_payload(&nan)).unwrap();
        assert_eq!(back[0].1.to_bits(), 0x7ff8_dead_beef_0001);
    }

    #[test]
    fn records_payload_rejects_count_mismatch() {
        let mut payload = encode_records_payload(&[(1, 1.0), (2, 2.0)]);
        payload[0] = 3; // claims 3 records, carries 2
        assert!(matches!(
            decode_records_payload(&payload),
            Err(EngineError::InvalidSnapshot(_))
        ));
        assert!(decode_records_payload(&[1, 0]).is_err());
    }

    #[test]
    fn register_payload_round_trips() {
        let spec: DetectorSpec = "adwin:delta=0.002".parse().unwrap();
        let (stream, back) = decode_register_payload(&encode_register_payload(42, &spec)).unwrap();
        assert_eq!(stream, 42);
        assert_eq!(back, spec);

        assert!(decode_register_payload(&[1, 2, 3]).is_err());
        let mut garbage = encode_register_payload(1, &spec);
        garbage.truncate(9);
        garbage[8] = 0xff; // not UTF-8 start of a spec
        assert!(decode_register_payload(&garbage).is_err());
    }

    #[test]
    fn wal_segment_names_parse_and_reject() {
        assert_eq!(parse_wal_segment_name("wal-12-3.log"), Some((12, 3)));
        assert_eq!(parse_wal_segment_name("wal-0-0.log"), Some((0, 0)));
        assert_eq!(parse_wal_segment_name("base-3.json"), None);
        assert_eq!(parse_wal_segment_name("wal-x-0.log"), None);
        assert_eq!(parse_wal_segment_name("wal-3.log"), None);
    }

    #[test]
    fn manifest_round_trips_and_rejects_future_versions() {
        let dir = std::env::temp_dir().join(format!(
            "optwin-ckpt-manifest-{}-{}",
            std::process::id(),
            line!()
        ));
        fs::create_dir_all(&dir).unwrap();
        let manifest = Manifest {
            version: CHECKPOINT_WIRE_VERSION,
            generation: 4,
            shards: 2,
            base: base_file_name(3),
            deltas: vec![delta_file_name(4)],
        };
        write_atomic_durable(
            &dir.join(MANIFEST_FILE),
            &serde_json::to_string(&manifest).unwrap(),
            Durability::PageCache,
        )
        .unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), manifest);

        let mut future = manifest;
        future.version = CHECKPOINT_WIRE_VERSION + 1;
        write_atomic_durable(
            &dir.join(MANIFEST_FILE),
            &serde_json::to_string(&future).unwrap(),
            Durability::PageCache,
        )
        .unwrap();
        let err = read_manifest(&dir).unwrap_err().to_string();
        assert!(err.contains("version"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
