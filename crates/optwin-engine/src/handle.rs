//! The non-blocking front door: shard worker threads and the cloneable
//! [`EngineHandle`] that feeds them.
//!
//! [`crate::EngineBuilder::build`] spawns one long-lived OS thread per
//! shard; each worker owns its shard's `(stream id → detector)` map
//! outright, so the hot path needs no locking. The returned [`EngineHandle`]
//! is cheaply cloneable (an `Arc` plus per-shard channel senders): any
//! number of producer threads can [`EngineHandle::submit`] record batches,
//! which partitions them by `stream % shards` and enqueues each partition on
//! the owning shard's bounded queue, returning immediately. Detections flow
//! out through the configured [`crate::EventSink`]s from the worker threads;
//! the submitting thread never sees them.
//!
//! Backpressure is accounted in **records, per shard**: `submit` blocks
//! while a target shard's queue is at capacity, [`EngineHandle::try_submit`]
//! instead fails fast with [`EngineError::QueueFull`] and enqueues nothing.
//! [`EngineHandle::flush`] and [`EngineHandle::shutdown`] are barriers: they
//! ride the same FIFO channels as the records, so when they return, every
//! record previously submitted *by the calling thread* has been fully
//! processed and the sinks have been flushed.

use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use optwin_baselines::DetectorSpec;
use optwin_core::{DriftDetector, DriftStatus, SnapshotEncoding};

use crate::checkpoint::{
    CheckpointConfig, CheckpointReport, CheckpointState, Durability, WalWriter,
};
use crate::engine::{EngineConfig, EngineError, StreamSnapshot};
use crate::event::DriftEvent;
use crate::hibernate::{DetectorSlot, HibernatedDetector, HibernationPolicy};
use crate::persist::{wire_version, EngineSnapshot, StreamStateSnapshot};
use crate::router::Router;
use crate::sink::EventSink;

/// A detector factory shared by every shard worker (and, for the blocking
/// facade, the submitting side): builds a detector the first time a record
/// for an unknown stream id arrives.
pub type SharedDetectorFactory = Arc<dyn Fn(u64) -> Box<dyn DriftDetector + Send> + Send + Sync>;

/// How the engine builds detectors for auto-registered (first-sight) stream
/// ids: declaratively from a [`DetectorSpec`] — the canonical path, which
/// also records the spec on the stream so snapshots are self-describing —
/// or through an opaque closure (the escape hatch for custom detector
/// types, which leaves no spec behind).
#[derive(Clone)]
pub(crate) enum DetectorSource {
    /// Every unknown stream gets `spec.build()` and records the spec.
    Spec(DetectorSpec),
    /// Every unknown stream gets `factory(id)`; no spec is recorded.
    Closure(SharedDetectorFactory),
}

impl DetectorSource {
    /// Builds a detector (and the spec to record, if any) for `stream`.
    pub(crate) fn make(
        &self,
        stream: u64,
    ) -> Result<(Box<dyn DriftDetector + Send>, Option<DetectorSpec>), EngineError> {
        match self {
            DetectorSource::Spec(spec) => {
                let detector = spec
                    .build()
                    .map_err(|e| EngineError::InvalidSpec(e.to_string()))?;
                Ok((detector, Some(spec.clone())))
            }
            DetectorSource::Closure(factory) => Ok((factory(stream), None)),
        }
    }
}

/// Decay factor of the per-shard batch-latency EWMA: each new batch
/// contributes 20 % — responsive to load shifts without jittering on a
/// single slow batch.
const BATCH_EWMA_ALPHA: f64 = 0.2;

/// Observed load of one shard worker.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardLoad {
    /// The shard index.
    pub shard: usize,
    /// Streams currently placed on this shard.
    pub streams: usize,
    /// Lifetime records of the streams **currently placed** on this shard
    /// (migrated streams carry their history with them) — the
    /// placement-attributed load [`EngineStats::imbalance`] and the
    /// auto-rebalance trigger act on.
    pub stream_records: u64,
    /// Lifetime records this *worker* has processed (history stays with the
    /// worker that did the work, so this diverges from `stream_records`
    /// after a migration).
    pub records: u64,
    /// Records currently sitting in this shard's queue (instantaneous
    /// occupancy at the time of the query).
    pub queue_depth: usize,
    /// Exponentially-weighted moving average of the wall-clock seconds this
    /// worker spends processing one submitted batch partition. Zero until
    /// the first batch lands.
    pub batch_ewma_seconds: f64,
    /// Resident detector bytes of the streams placed on this shard: each
    /// live detector's [`DriftDetector::mem_footprint`] plus each sleeping
    /// stream's compressed-state bookkeeping — the memory counterpart of
    /// [`ShardLoad::stream_records`].
    pub resident_bytes: usize,
    /// Streams currently hibernated on this shard.
    pub hibernated_streams: usize,
    /// Bytes held in hibernated state blobs on this shard (a subset of
    /// [`ShardLoad::resident_bytes`]).
    pub hibernated_bytes: usize,
    /// Lifetime hibernated→live rehydrations this worker has performed.
    pub rehydrations: u64,
}

/// Aggregate lifetime counters across all streams of an engine, plus the
/// per-shard and per-stream load breakdown that makes imbalance observable
/// from the handle.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EngineStats {
    /// Number of registered streams.
    pub streams: usize,
    /// Total elements ingested across all streams.
    pub elements: u64,
    /// Total drifts flagged across all streams.
    pub drifts: u64,
    /// Per-shard load (indexed by shard).
    pub shards: Vec<ShardLoad>,
    /// Lifetime records per stream, sorted by stream id.
    pub stream_records: Vec<(u64, u64)>,
}

impl EngineStats {
    /// Load-imbalance ratio across shards: the hottest shard's
    /// placement-attributed record count ([`ShardLoad::stream_records`])
    /// over the mean (1.0 = perfectly balanced; 1.0 for an engine that has
    /// ingested nothing). Drops back toward 1.0 after a successful
    /// rebalance, since moved streams take their history with them.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        imbalance(
            &self
                .shards
                .iter()
                .map(|s| s.stream_records as f64)
                .collect::<Vec<_>>(),
        )
    }

    /// Resident detector bytes across all shards (live footprints plus
    /// hibernated blobs) — see [`ShardLoad::resident_bytes`].
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.resident_bytes).sum()
    }

    /// Streams currently hibernated across all shards.
    #[must_use]
    pub fn hibernated_streams(&self) -> usize {
        self.shards.iter().map(|s| s.hibernated_streams).sum()
    }

    /// Bytes held in hibernated state blobs across all shards.
    #[must_use]
    pub fn hibernated_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.hibernated_bytes).sum()
    }

    /// Lifetime hibernated→live rehydrations across all shards.
    #[must_use]
    pub fn rehydrations(&self) -> u64 {
        self.shards.iter().map(|s| s.rehydrations).sum()
    }
}

/// Renders a byte count with a binary-unit suffix (`1.5MiB`), for the
/// [`EngineStats`] display table.
fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{value:.1}{}", UNITS[unit])
    }
}

impl fmt::Display for EngineStats {
    /// Compact multi-line dump for CLIs: aggregate counters, one line per
    /// shard, and the hottest streams.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} streams · {} records · {} drifts · imbalance {:.2} · mem {} \
             ({} hibernated, {} blobs)",
            self.streams,
            self.elements,
            self.drifts,
            self.imbalance(),
            fmt_bytes(self.resident_bytes()),
            self.hibernated_streams(),
            fmt_bytes(self.hibernated_bytes())
        )?;
        for shard in &self.shards {
            writeln!(
                f,
                "  shard {}: {} streams · {} records · {} processed · queue {} · \
                 batch EWMA {:.3}ms · mem {} ({} hibernated, {} blobs)",
                shard.shard,
                shard.streams,
                shard.stream_records,
                shard.records,
                shard.queue_depth,
                shard.batch_ewma_seconds * 1e3,
                fmt_bytes(shard.resident_bytes),
                shard.hibernated_streams,
                fmt_bytes(shard.hibernated_bytes)
            )?;
        }
        // Top-k selection, not a full sort: stats() carries one entry per
        // stream and fleets are large.
        let mut hottest: Vec<(u64, u64)> = self.stream_records.clone();
        let by_heat = |a: &(u64, u64), b: &(u64, u64)| b.1.cmp(&a.1).then(a.0.cmp(&b.0));
        if hottest.len() > 5 {
            hottest.select_nth_unstable_by(4, by_heat);
            hottest.truncate(5);
        }
        hottest.sort_unstable_by(by_heat);
        if !hottest.is_empty() {
            write!(f, "  hottest streams:")?;
            for (stream, records) in hottest {
                write!(f, " #{stream} ({records})")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// `max / mean` of a load vector (1.0 when the total load is zero).
fn imbalance(loads: &[f64]) -> f64 {
    let total: f64 = loads.iter().sum();
    if loads.is_empty() || total <= 0.0 {
        return 1.0;
    }
    let max = loads.iter().copied().fold(0.0f64, f64::max);
    max * loads.len() as f64 / total
}

/// The observed per-stream quantity a rebalance packs into bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RebalancePolicy {
    /// Balance lifetime records ingested per stream — the right default for
    /// skewed traffic (a few hot streams, many cold ones).
    #[default]
    Records,
    /// Balance wall-clock seconds observed inside each stream's detector —
    /// accounts for heterogeneous per-element detector cost (e.g. large
    /// OPTWIN windows next to cheap DDM streams).
    DetectorSeconds,
}

/// What a [`EngineHandle::rebalance`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceReport {
    /// The policy the plan was computed under.
    pub policy: RebalancePolicy,
    /// Streams considered.
    pub streams: usize,
    /// Streams actually migrated to a different shard.
    pub moved: usize,
    /// Per-shard load (in policy units) under the old placement.
    pub load_before: Vec<f64>,
    /// Per-shard load (in policy units) under the new placement.
    pub load_after: Vec<f64>,
}

impl RebalanceReport {
    /// `max / mean` shard load before the rebalance (1.0 = balanced).
    #[must_use]
    pub fn imbalance_before(&self) -> f64 {
        imbalance(&self.load_before)
    }

    /// `max / mean` shard load after the rebalance.
    #[must_use]
    pub fn imbalance_after(&self) -> f64 {
        imbalance(&self.load_after)
    }
}

impl fmt::Display for RebalanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rebalance({:?}): moved {}/{} streams, imbalance {:.2} -> {:.2}",
            self.policy,
            self.moved,
            self.streams,
            self.imbalance_before(),
            self.imbalance_after()
        )
    }
}

/// Messages a worker accepts over its FIFO channel. Control messages ride
/// the same queue as records, so every control operation doubles as a
/// barrier for the records enqueued before it.
enum ShardMsg {
    /// A partition of a submitted batch (all records belong to this shard).
    Records(Vec<(u64, f64)>),
    /// Register a stream with an explicit detector (and, when it was built
    /// from a [`DetectorSpec`], the spec to record for introspection and
    /// self-describing snapshots).
    Register {
        stream: u64,
        detector: Box<dyn DriftDetector + Send>,
        spec: Option<DetectorSpec>,
        ack: Sender<Result<(), EngineError>>,
    },
    /// Flush the sinks and acknowledge (barrier).
    Flush { ack: Sender<()> },
    /// Report per-stream lifetime statistics and shard-level load (barrier).
    Query { ack: Sender<ShardReport> },
    /// Report only `(sum of current streams' lifetime records, stream
    /// count)` — the cheap (two words, no per-stream allocation) probe
    /// behind the auto-rebalance trigger, which runs on **every** flush
    /// (barrier).
    LoadProbe { ack: Sender<(u64, usize)> },
    /// Serialize per-stream detector state in the given sequence layout
    /// (barrier).
    Snapshot {
        encoding: SnapshotEncoding,
        ack: Sender<Result<Vec<StreamStateSnapshot>, EngineError>>,
    },
    /// Remove the named streams' [`StreamState`]s and hand them back — the
    /// outbound half of a migration. Sent only under the router write lock,
    /// so it rides the FIFO queue behind every record previously routed to
    /// this shard and acts as a per-stream barrier.
    Extract {
        streams: Vec<u64>,
        ack: Sender<Vec<(u64, StreamState)>>,
    },
    /// Adopt migrated [`StreamState`]s — the inbound half of a migration.
    Install {
        states: Vec<(u64, StreamState)>,
        ack: Sender<()>,
    },
    /// Checkpoint barrier: finalize the current WAL segment, rotate to the
    /// segment of `generation + 1`, and capture the dirty streams' entries
    /// (every stream when `full`) — clearing their dirty bits (barrier).
    Checkpoint {
        generation: u64,
        full: bool,
        ack: Sender<Result<Vec<StreamStateSnapshot>, EngineError>>,
    },
    /// Exit the worker loop after draining everything queued before this.
    Shutdown,
}

/// One shard's answer to [`ShardMsg::Query`]: its streams plus its own load
/// counters (queue occupancy is accounted handle-side).
pub(crate) struct ShardReport {
    streams: Vec<StreamSnapshot>,
    /// Lifetime records this worker has ingested.
    records: u64,
    /// EWMA of per-batch processing latency, seconds.
    batch_ewma_seconds: f64,
    /// Resident detector bytes across the shard's streams.
    resident_bytes: usize,
    /// Streams currently hibernated.
    hibernated_streams: usize,
    /// Bytes held in hibernated state blobs.
    hibernated_bytes: usize,
    /// Lifetime rehydrations performed by this worker.
    rehydrations: u64,
}

/// Queue accounting shared between producers and workers.
///
/// The channels themselves are unbounded; boundedness comes from this
/// record-level ledger, which lets `try_submit` reserve space on *all*
/// target shards atomically (a partial enqueue would break the
/// all-or-nothing contract).
struct QueueState {
    /// Records currently queued per shard.
    depth: Mutex<Vec<usize>>,
    /// Signalled whenever a worker dequeues records or the engine closes.
    space: Condvar,
    /// Set when any worker exits (shutdown or panic): the engine no longer
    /// makes progress, so producers must stop waiting.
    closed: AtomicBool,
    /// Ingestion-time errors recorded by workers (e.g. an unknown stream
    /// with no factory), surfaced by [`EngineHandle::flush`].
    errors: Mutex<Vec<EngineError>>,
}

impl QueueState {
    fn record_error(&self, error: EngineError) {
        self.errors
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(error);
    }
}

/// Per-stream state owned by exactly one shard worker.
pub(crate) struct StreamState {
    /// The detector — resident, or compressed to a hibernated blob.
    pub(crate) slot: DetectorSlot,
    /// The spec the stream was registered with, when registered
    /// declaratively (`None` for closure-factory and explicit-instance
    /// registrations). Recorded so operators can introspect live streams
    /// ([`EngineHandle::stream_spec`]) and snapshots are self-describing —
    /// and, since the hibernation tier, so a sleeping stream's detector can
    /// be rebuilt on its next record.
    pub(crate) spec: Option<DetectorSpec>,
    /// Elements ingested for this stream so far (the next element's sequence
    /// number).
    pub(crate) seq: u64,
    /// Wall-clock seconds spent inside the detector for this stream.
    pub(crate) seconds: f64,
    /// Values staged for the current batch (reused across batches).
    staged: Vec<f64>,
    /// [`StreamState::seq`] as observed at the previous flush barrier — the
    /// idleness reference for the hibernation sweep.
    last_flush_seq: u64,
    /// Consecutive flush barriers at which `seq` had not moved.
    idle_flushes: u32,
    /// `true` when this stream's persisted entry changed since the last
    /// checkpoint capture: set at creation, after every ingested batch,
    /// when the hibernation sweep compresses the stream (the entry's
    /// `hibernated` flag and state layout change even though the logical
    /// detector state does not), and when a migration installs the stream
    /// on a new shard (the entry's `shard` changes). Cleared only by
    /// checkpoint capture — the delta overlay holds exactly the streams
    /// with this bit set.
    dirty: bool,
}

impl StreamState {
    pub(crate) fn new(detector: Box<dyn DriftDetector + Send>) -> Self {
        Self::with_spec(detector, None)
    }

    pub(crate) fn with_spec(
        detector: Box<dyn DriftDetector + Send>,
        spec: Option<DetectorSpec>,
    ) -> Self {
        Self {
            slot: DetectorSlot::Live(detector),
            spec,
            seq: 0,
            seconds: 0.0,
            staged: Vec::new(),
            last_flush_seq: 0,
            idle_flushes: 0,
            dirty: true,
        }
    }

    /// A stream restored from a snapshot *without* materializing its
    /// detector: the persisted state stays compressed until the stream's
    /// next record. Only reachable from a builder with hibernation
    /// configured (see [`crate::EngineBuilder::hibernation`]).
    pub(crate) fn asleep(sleeper: HibernatedDetector, spec: DetectorSpec) -> Self {
        Self {
            slot: DetectorSlot::Hibernated(sleeper),
            spec: Some(spec),
            seq: 0,
            seconds: 0.0,
            staged: Vec::new(),
            last_flush_seq: 0,
            idle_flushes: 0,
            dirty: true,
        }
    }

    /// Seeds the restored position: `seq`, lifetime seconds, and the
    /// idleness reference (so a restored stream is not misread as
    /// freshly-active at its first flush barrier).
    pub(crate) fn restore_position(&mut self, seq: u64, seconds: f64) {
        self.seq = seq;
        self.seconds = seconds;
        self.last_flush_seq = seq;
    }

    /// Compresses the live detector into a hibernated blob, freeing the
    /// detector and the staging buffer. No-op (returning `false`) when the
    /// stream is already asleep, has no spec to rebuild from, or runs a
    /// detector without snapshot support.
    fn hibernate(&mut self) -> bool {
        let DetectorSlot::Live(detector) = &self.slot else {
            return false;
        };
        if self.spec.is_none() {
            return false;
        }
        debug_assert!(self.staged.is_empty(), "hibernating mid-batch");
        let Some(sleeper) = HibernatedDetector::capture(detector.as_ref()) else {
            return false;
        };
        self.slot = DetectorSlot::Hibernated(sleeper);
        // Drop the staging buffer's capacity along with the detector: a
        // cold stream should cost its blob, not its last batch size.
        self.staged = Vec::new();
        true
    }

    /// Decompresses a hibernated stream back into a live detector,
    /// bit-exact with the one that was captured. No-op when already live.
    ///
    /// # Errors
    ///
    /// [`EngineError::Hibernation`] — see [`HibernatedDetector::wake`]. The
    /// stream stays asleep (and its blob intact) on error.
    fn rehydrate(&mut self, stream: u64) -> Result<(), EngineError> {
        let DetectorSlot::Hibernated(sleeper) = &self.slot else {
            return Ok(());
        };
        let spec = self.spec.as_ref().ok_or_else(|| EngineError::Hibernation {
            stream,
            message: "hibernated stream has no spec to rebuild its detector from".to_string(),
        })?;
        let detector = sleeper.wake(stream, spec)?;
        self.slot = DetectorSlot::Live(detector);
        Ok(())
    }
}

/// A shard: a disjoint set of streams processed sequentially by one worker.
#[derive(Default)]
struct ShardState {
    /// This shard's index (for [`StreamSnapshot::shard`]).
    shard_index: usize,
    streams: HashMap<u64, StreamState>,
    /// First-seen order of the streams staged in the current batch.
    batch_order: Vec<u64>,
    /// Event staging buffer, reused across batches.
    events: Vec<DriftEvent>,
    /// Lifetime records ingested by this worker (migrated streams keep their
    /// own counters; this one follows the *worker*).
    records: u64,
    /// Batch partitions processed (0 ⇔ the EWMA below is unseeded).
    batches: u64,
    /// EWMA of the wall-clock seconds spent processing one batch partition
    /// (zero until the first batch).
    batch_ewma_seconds: f64,
    /// When set, the sweep run at every flush barrier compresses cold
    /// streams (see [`crate::hibernate`]).
    hibernation: Option<HibernationPolicy>,
    /// Lifetime hibernated→live rehydrations performed by this worker.
    rehydrations: u64,
    /// Checkpoint directory WAL segments are written into (set iff the
    /// engine checkpoints).
    wal_dir: Option<PathBuf>,
    /// Durability level WAL segments are written with (from
    /// [`crate::CheckpointPolicy::durability`]).
    wal_durability: Durability,
    /// The current write-ahead-log segment. `None` until the first
    /// checkpoint barrier activates logging (everything before that barrier
    /// is covered by the base it captures), and after a WAL I/O failure
    /// (the error surfaces at the next flush; durability degrades to the
    /// last checkpoint until a new one rotates segments successfully).
    wal: Option<WalWriter>,
}

impl ShardState {
    fn register(
        &mut self,
        stream: u64,
        detector: Box<dyn DriftDetector + Send>,
        spec: Option<DetectorSpec>,
    ) -> Result<(), EngineError> {
        if self.streams.contains_key(&stream) {
            return Err(EngineError::DuplicateStream(stream));
        }
        self.streams
            .insert(stream, StreamState::with_spec(detector, spec));
        Ok(())
    }

    /// Stages `records`, creating unknown streams through the default
    /// detector source (or recording [`EngineError::UnknownStream`] and
    /// skipping the record when there is none), runs every staged stream's
    /// detector through its batch path, and emits the events — sorted by
    /// `(stream, seq)` within this call — into the sinks.
    fn ingest(
        &mut self,
        records: &[(u64, f64)],
        source: Option<&DetectorSource>,
        sinks: &[Arc<dyn EventSink>],
        emit_warnings: bool,
        queue: &QueueState,
    ) {
        self.batch_order.clear();
        for &(stream, value) in records {
            let state = match self.streams.entry(stream) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => match source {
                    Some(source) => match source.make(stream) {
                        Ok((detector, spec)) => e.insert(StreamState::with_spec(detector, spec)),
                        Err(error) => {
                            // Unreachable for a builder-validated spec, but a
                            // worker must never panic over it.
                            queue.record_error(error);
                            continue;
                        }
                    },
                    None => {
                        queue.record_error(EngineError::UnknownStream(stream));
                        continue;
                    }
                },
            };
            if state.staged.is_empty() {
                self.batch_order.push(stream);
            }
            state.staged.push(value);
        }

        self.events.clear();
        for &stream in &self.batch_order {
            let state = self.streams.get_mut(&stream).expect("staged above");
            if state.slot.is_hibernated() {
                if let Err(error) = state.rehydrate(stream) {
                    // Keep the blob intact and drop this batch's records for
                    // the stream; the next batch retries the wake.
                    queue.record_error(error);
                    state.staged.clear();
                    continue;
                }
                self.rehydrations += 1;
            }
            let DetectorSlot::Live(detector) = &mut state.slot else {
                unreachable!("rehydrated above");
            };
            let started = Instant::now();
            let outcome = detector.add_batch(&state.staged);
            state.seconds += started.elapsed().as_secs_f64();

            self.events
                .extend(outcome.drift_indices.iter().map(|&i| DriftEvent {
                    stream,
                    seq: state.seq + i as u64,
                    status: DriftStatus::Drift,
                }));
            if emit_warnings {
                self.events
                    .extend(outcome.warning_indices.iter().map(|&i| DriftEvent {
                        stream,
                        seq: state.seq + i as u64,
                        status: DriftStatus::Warning,
                    }));
            }
            state.seq += state.staged.len() as u64;
            state.staged.clear();
            state.dirty = true;
        }

        self.events.sort_unstable_by_key(|e| (e.stream, e.seq));
        for event in &self.events {
            for sink in sinks {
                sink.emit(event);
            }
        }
    }

    /// Folds one processed batch partition into the load counters. A batch
    /// counter (not a 0.0 sentinel) marks the unseeded EWMA, since a coarse
    /// clock can legitimately measure a batch at exactly zero seconds.
    fn note_batch(&mut self, records: usize, seconds: f64) {
        self.records += records as u64;
        if self.batches == 0 {
            self.batch_ewma_seconds = seconds;
        } else {
            self.batch_ewma_seconds += BATCH_EWMA_ALPHA * (seconds - self.batch_ewma_seconds);
        }
        self.batches += 1;
    }

    fn query(&self) -> ShardReport {
        let mut resident_bytes = 0usize;
        let mut hibernated_streams = 0usize;
        let mut hibernated_bytes = 0usize;
        let streams = self
            .streams
            .iter()
            .map(|(&stream, state)| {
                let mem_bytes = state.slot.mem_bytes();
                resident_bytes += mem_bytes;
                if state.slot.is_hibernated() {
                    hibernated_streams += 1;
                    hibernated_bytes += state.slot.hibernated_bytes();
                }
                StreamSnapshot {
                    stream,
                    shard: self.shard_index,
                    elements: state.seq,
                    drifts: state.slot.drifts_detected(),
                    detector_seconds: state.seconds,
                    detector: state.slot.name(),
                    spec: state.spec.clone(),
                    hibernated: state.slot.is_hibernated(),
                    mem_bytes,
                }
            })
            .collect();
        ShardReport {
            streams,
            records: self.records,
            batch_ewma_seconds: self.batch_ewma_seconds,
            resident_bytes,
            hibernated_streams,
            hibernated_bytes,
            rehydrations: self.rehydrations,
        }
    }

    /// Serializes one stream's persisted entry. A sleeping stream embeds
    /// its blob verbatim — snapshotting a mostly-cold fleet never
    /// materializes its detectors. The blob is always wire-v4
    /// binary-encoded state, which every restore path accepts regardless of
    /// the requested encoding.
    fn snapshot_entry(
        &self,
        stream: u64,
        encoding: SnapshotEncoding,
    ) -> Result<StreamStateSnapshot, EngineError> {
        let state = &self.streams[&stream];
        let detector_state =
            match &state.slot {
                DetectorSlot::Live(detector) => detector
                    .snapshot_state_encoded(encoding)
                    .ok_or_else(|| EngineError::SnapshotUnsupported {
                        stream,
                        detector: detector.name().to_string(),
                    })?,
                DetectorSlot::Hibernated(sleeper) => sleeper.state_value(),
            };
        Ok(StreamStateSnapshot {
            stream,
            seq: state.seq,
            detector: state.slot.name().to_string(),
            detector_seconds: state.seconds,
            spec: state.spec.clone(),
            shard: Some(self.shard_index),
            state: detector_state,
            hibernated: state.slot.is_hibernated(),
        })
    }

    fn snapshot(
        &self,
        encoding: SnapshotEncoding,
    ) -> Result<Vec<StreamStateSnapshot>, EngineError> {
        let mut ids: Vec<u64> = self.streams.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|stream| self.snapshot_entry(stream, encoding))
            .collect()
    }

    /// The worker half of a checkpoint barrier: finalizes the current WAL
    /// segment, rotates to the segment of `generation + 1`, and captures
    /// the dirty streams' entries (all streams when `full`), clearing their
    /// dirty bits.
    ///
    /// Ordering matters for crash safety: the rotation happens *before*
    /// the capture, so if the capture fails (or the handle side crashes
    /// before the manifest lands) the finalized old segment is still ≥ the
    /// last durable manifest generation and recovery replays it — nothing
    /// processed is ever outside both the checkpoint and the log. Dirty
    /// bits are cleared only after every entry serialized, so a failed
    /// capture retries in full at the next barrier.
    fn checkpoint_capture(
        &mut self,
        generation: u64,
        full: bool,
    ) -> Result<Vec<StreamStateSnapshot>, EngineError> {
        if let Some(wal) = self.wal.take() {
            wal.finish()?;
        }
        if let Some(dir) = &self.wal_dir {
            self.wal = Some(WalWriter::create(
                dir,
                generation + 1,
                self.shard_index,
                self.wal_durability,
            )?);
        }
        let mut ids: Vec<u64> = self
            .streams
            .iter()
            .filter(|(_, state)| full || state.dirty)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        let entries = ids
            .iter()
            .map(|&stream| self.snapshot_entry(stream, SnapshotEncoding::Binary))
            .collect::<Result<Vec<_>, _>>()?;
        for stream in ids {
            self.streams.get_mut(&stream).expect("listed above").dirty = false;
        }
        Ok(entries)
    }

    /// The hibernation sweep, run at every flush barrier (before sinks
    /// flush): advances each stream's idleness counter and compresses the
    /// ones that crossed [`HibernationPolicy::cold_after_flushes`]. With
    /// `cold_after_flushes == 0` every spec-registered stream hibernates at
    /// every barrier, active or not — the forced mode equivalence tests use.
    fn hibernation_sweep(&mut self) {
        let Some(policy) = self.hibernation else {
            return;
        };
        for state in self.streams.values_mut() {
            if state.seq != state.last_flush_seq {
                state.last_flush_seq = state.seq;
                state.idle_flushes = 0;
                if policy.cold_after_flushes > 0 {
                    continue;
                }
            } else {
                state.idle_flushes = state.idle_flushes.saturating_add(1);
            }
            if state.idle_flushes >= policy.cold_after_flushes && state.hibernate() {
                // A hibernation transition changes the persisted entry (the
                // `hibernated` flag and blob form), so the next delta
                // checkpoint must re-capture the stream.
                state.dirty = true;
            }
        }
    }
}

/// Marks the engine closed when the worker exits — normally *or* by panic —
/// so producers blocked on backpressure wake up instead of hanging.
struct WorkerGuard {
    queue: Arc<QueueState>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.queue.record_error(EngineError::Poisoned);
        }
        self.queue.closed.store(true, Ordering::SeqCst);
        self.queue.space.notify_all();
    }
}

#[allow(clippy::needless_pass_by_value)]
fn worker_loop(
    shard_index: usize,
    rx: Receiver<ShardMsg>,
    queue: Arc<QueueState>,
    mut shard: ShardState,
    source: Option<DetectorSource>,
    sinks: Vec<Arc<dyn EventSink>>,
    emit_warnings: bool,
) {
    let _guard = WorkerGuard {
        queue: Arc::clone(&queue),
    };
    // Exiting when `recv` fails makes dropping the last handle an implicit
    // shutdown: all senders gone, nothing can arrive anymore.
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Records(records) => {
                {
                    let mut depth = queue.depth.lock().unwrap_or_else(PoisonError::into_inner);
                    depth[shard_index] = depth[shard_index].saturating_sub(records.len());
                }
                queue.space.notify_all();
                // Log-then-apply: the batch lands in the write-ahead log
                // before any detector sees it, so a crash mid-batch replays
                // it in full. A WAL I/O failure degrades durability rather
                // than availability — the error surfaces at the next
                // barrier and logging stops until the next checkpoint
                // rotates a fresh segment in.
                if let Some(wal) = shard.wal.as_mut() {
                    if let Err(error) = wal.append_records(&records) {
                        queue.record_error(error);
                        shard.wal = None;
                    }
                }
                let started = Instant::now();
                shard.ingest(&records, source.as_ref(), &sinks, emit_warnings, &queue);
                shard.note_batch(records.len(), started.elapsed().as_secs_f64());
            }
            ShardMsg::Register {
                stream,
                detector,
                spec,
                ack,
            } => {
                // Spec-carrying registrations are durable: the spec string
                // replays the registration verbatim during recovery.
                // Explicit-instance registrations (no spec) cannot be
                // logged — their detector is an opaque closure product —
                // so recovery relies on the next checkpoint capturing them.
                let logged_spec = spec.clone();
                let result = shard.register(stream, detector, spec);
                if result.is_ok() {
                    if let (Some(wal), Some(spec)) = (shard.wal.as_mut(), logged_spec) {
                        if let Err(error) = wal.append_register(stream, &spec) {
                            queue.record_error(error);
                            shard.wal = None;
                        }
                    }
                }
                let _ = ack.send(result);
            }
            ShardMsg::Flush { ack } => {
                // Flush barriers double as the hibernation sweep points: a
                // batch never ends mid-flush, so every stream's staging
                // buffer is empty here.
                shard.hibernation_sweep();
                for sink in &sinks {
                    sink.flush();
                }
                let _ = ack.send(());
            }
            ShardMsg::Query { ack } => {
                let _ = ack.send(shard.query());
            }
            ShardMsg::LoadProbe { ack } => {
                let load: u64 = shard.streams.values().map(|s| s.seq).sum();
                let _ = ack.send((load, shard.streams.len()));
            }
            ShardMsg::Snapshot { encoding, ack } => {
                let _ = ack.send(shard.snapshot(encoding));
            }
            ShardMsg::Extract { streams, ack } => {
                let mut extracted = Vec::with_capacity(streams.len());
                for stream in streams {
                    if let Some(state) = shard.streams.remove(&stream) {
                        extracted.push((stream, state));
                    }
                }
                let _ = ack.send(extracted);
            }
            ShardMsg::Install { states, ack } => {
                for (stream, mut state) in states {
                    debug_assert!(
                        !shard.streams.contains_key(&stream),
                        "migration target already owns stream {stream}"
                    );
                    // A migrated stream's persisted `shard` field changed,
                    // so the next delta checkpoint must re-capture it here
                    // (the source shard no longer owns it at all).
                    state.dirty = true;
                    shard.streams.insert(stream, state);
                }
                let _ = ack.send(());
            }
            ShardMsg::Checkpoint {
                generation,
                full,
                ack,
            } => {
                let _ = ack.send(shard.checkpoint_capture(generation, full));
            }
            ShardMsg::Shutdown => break,
        }
    }
    for sink in &sinks {
        sink.flush();
    }
}

/// State shared by every clone of an [`EngineHandle`].
struct HandleShared {
    queue: Arc<QueueState>,
    /// The stream → shard routing table. Read-locked by every send path,
    /// write-locked by [`EngineHandle::rebalance`] (see [`crate::router`]).
    router: Router,
    /// Worker join handles, taken by the first successful
    /// [`EngineHandle::shutdown`].
    workers: Mutex<Vec<JoinHandle<()>>>,
    config: EngineConfig,
    queue_capacity: usize,
    has_factory: bool,
    /// The sequence layout [`EngineHandle::snapshot`] writes —
    /// [`SnapshotEncoding::Json`] (wire v3) unless the builder opted into
    /// compact binary (wire v4) via
    /// [`crate::EngineBuilder::snapshot_encoding`].
    snapshot_encoding: SnapshotEncoding,
    /// When set, [`EngineHandle::flush`] triggers a
    /// [`RebalancePolicy::Records`] rebalance whenever the shard record-load
    /// imbalance (`max / mean`) exceeds this threshold.
    auto_rebalance_threshold: Option<f64>,
    /// Auto-rebalance hysteresis: after a triggered rebalance whose plan
    /// could not improve the placement (`moved == 0` — e.g. fewer active
    /// streams than shards makes the threshold structurally unreachable),
    /// records `(imbalance, active streams)` of the futile attempt. Further
    /// triggers are suppressed until the imbalance worsens or the stream
    /// population changes, so flush-per-batch callers do not pay a full
    /// plan computation on every flush forever.
    futile_auto_rebalance: Mutex<Option<(f64, usize)>>,
    /// Durability bookkeeping for the checkpoint subsystem (wire v5):
    /// the target directory, the policy, the next generation number and
    /// the overlay-chain accounting driving base/delta decisions. `None`
    /// when the engine was built without [`crate::EngineBuilder::checkpoint`].
    checkpoint: Option<Mutex<CheckpointState>>,
}

/// A cheaply-cloneable, thread-safe front door to a running engine.
///
/// Obtained from [`crate::EngineBuilder::build`]. Clones share the same
/// worker threads and queues; dropping the last clone (and any
/// [`crate::DriftEngine`] facade holding one) lets the workers drain and
/// exit on their own.
///
/// Queueing and barrier semantics: `submit` blocks on a full shard queue
/// while [`EngineHandle::try_submit`] fails fast; [`EngineHandle::flush`],
/// the query methods and [`EngineHandle::snapshot`] ride the same FIFO
/// channels as the records, so each acts as a barrier for everything this
/// thread submitted before it; [`EngineHandle::shutdown`] additionally
/// drains the queues and joins the workers.
pub struct EngineHandle {
    /// Per-clone channel senders (`mpsc::Sender` is `Sync`, so a single
    /// handle may also be shared by reference across threads).
    senders: Vec<Sender<ShardMsg>>,
    shared: Arc<HandleShared>,
}

impl Clone for EngineHandle {
    fn clone(&self) -> Self {
        Self {
            senders: self.senders.clone(),
            shared: Arc::clone(&self.shared),
        }
    }
}

impl std::fmt::Debug for EngineHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineHandle")
            .field("config", &self.shared.config)
            .field("queue_capacity", &self.shared.queue_capacity)
            .field("has_factory", &self.shared.has_factory)
            .field("closed", &self.shared.queue.closed.load(Ordering::SeqCst))
            .finish()
    }
}

/// Spawns the shard workers and assembles the handle. Called by
/// [`crate::EngineBuilder::build`] after validation. `initial_streams` is
/// the per-shard placement of restored and pre-registered streams; it seeds
/// the routing table, so non-modulo placements (a restored v3 snapshot)
/// stick.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_engine(
    config: EngineConfig,
    queue_capacity: usize,
    source: Option<DetectorSource>,
    sinks: Vec<Arc<dyn EventSink>>,
    initial_streams: Vec<HashMap<u64, StreamState>>,
    auto_rebalance_threshold: Option<f64>,
    snapshot_encoding: SnapshotEncoding,
    hibernation: Option<HibernationPolicy>,
    checkpoint: Option<CheckpointConfig>,
) -> EngineHandle {
    debug_assert_eq!(initial_streams.len(), config.shards);
    let queue = Arc::new(QueueState {
        depth: Mutex::new(vec![0; config.shards]),
        space: Condvar::new(),
        closed: AtomicBool::new(false),
        errors: Mutex::new(Vec::new()),
    });
    let router = Router::new(
        config.shards,
        initial_streams
            .iter()
            .enumerate()
            .flat_map(|(shard, streams)| streams.keys().map(move |&stream| (stream, shard))),
    );

    let mut senders = Vec::with_capacity(config.shards);
    let mut workers = Vec::with_capacity(config.shards);
    for (shard_index, streams) in initial_streams.into_iter().enumerate() {
        let (tx, rx) = channel();
        let shard = ShardState {
            shard_index,
            streams,
            hibernation,
            // Workers start with the WAL *inactive* even when checkpointing
            // is configured: logging begins at the first checkpoint barrier
            // (the builder runs a full one right after spawn), so recovery
            // replay itself is never re-logged against a stale generation.
            wal_dir: checkpoint.as_ref().map(|c| c.dir.clone()),
            wal_durability: checkpoint
                .as_ref()
                .map(|c| c.policy.durability)
                .unwrap_or_default(),
            ..ShardState::default()
        };
        let queue = Arc::clone(&queue);
        let source = source.clone();
        let sinks = sinks.clone();
        let emit_warnings = config.emit_warnings;
        let worker = std::thread::Builder::new()
            .name(format!("optwin-shard-{shard_index}"))
            .spawn(move || {
                worker_loop(shard_index, rx, queue, shard, source, sinks, emit_warnings);
            })
            .expect("failed to spawn engine shard worker");
        senders.push(tx);
        workers.push(worker);
    }

    EngineHandle {
        senders,
        shared: Arc::new(HandleShared {
            queue,
            router,
            workers: Mutex::new(workers),
            config,
            queue_capacity,
            has_factory: source.is_some(),
            snapshot_encoding,
            auto_rebalance_threshold,
            futile_auto_rebalance: Mutex::new(None),
            checkpoint: checkpoint.map(|config| Mutex::new(CheckpointState::new(config))),
        }),
    }
}

impl EngineHandle {
    /// Number of shards (worker threads).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// The engine configuration the handle was built with.
    #[must_use]
    pub fn config(&self) -> EngineConfig {
        self.shared.config
    }

    /// Per-shard queue capacity, in records.
    #[must_use]
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue_capacity
    }

    /// `true` when the engine auto-registers unknown streams through a
    /// default detector source — either a [`DetectorSpec`] installed with
    /// [`crate::EngineBuilder::default_spec`] or a closure factory installed
    /// with [`crate::EngineBuilder::factory`].
    #[must_use]
    pub fn has_factory(&self) -> bool {
        self.shared.has_factory
    }

    /// The shard records for `stream` currently route to — the routing
    /// table's answer, whether the stream is registered or not (unknown ids
    /// report the shard they *would* land on). The modulo default applies
    /// unless a restore or a [`EngineHandle::rebalance`] pinned the stream
    /// elsewhere.
    #[must_use]
    pub fn shard_of(&self, stream: u64) -> usize {
        self.shared.router.read().shard_of(stream)
    }

    /// `true` when `stream` has an explicit routing pin (placed by a
    /// rebalance or a restored v3 snapshot) overriding the `id % shards`
    /// default.
    #[must_use]
    pub fn is_rerouted(&self, stream: u64) -> bool {
        self.shared.router.read().is_pinned(stream)
    }

    /// Number of streams currently routed away from their `id % shards`
    /// default (0 until a rebalance or a placement-preserving restore moves
    /// one).
    #[must_use]
    pub fn rerouted_streams(&self) -> usize {
        self.shared.router.read().pin_count()
    }

    /// Enqueues a batch of `(stream id, value)` records and returns
    /// immediately; the shard workers process them asynchronously and push
    /// any detections into the sinks.
    ///
    /// Records are partitioned by `stream % shards`; per-stream order is the
    /// submission order (across all clones, submission order is whatever
    /// order the `submit` calls won the internal reservation). **Blocks**
    /// while a target shard's queue is at capacity; use
    /// [`EngineHandle::try_submit`] to fail fast instead.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ChannelClosed`] after
    /// [`EngineHandle::shutdown`] (or a worker death), or
    /// [`EngineError::Poisoned`] when internal state was poisoned by a
    /// panicking thread. Records referencing unknown streams are validated
    /// on the worker: with a factory they auto-register, without one the
    /// offending records are dropped and the error surfaces at the next
    /// [`EngineHandle::flush`].
    pub fn submit(&self, records: &[(u64, f64)]) -> Result<(), EngineError> {
        self.submit_inner(records, true)
    }

    /// Non-blocking [`EngineHandle::submit`]: if any target shard's queue
    /// lacks room for its partition, returns [`EngineError::QueueFull`]
    /// **without enqueuing anything** (space is reserved on all shards
    /// atomically), so the caller can retry the whole batch later or shed
    /// load.
    ///
    /// # Errors
    ///
    /// [`EngineError::QueueFull`] on backpressure; otherwise as
    /// [`EngineHandle::submit`].
    pub fn try_submit(&self, records: &[(u64, f64)]) -> Result<(), EngineError> {
        self.submit_inner(records, false)
    }

    fn submit_inner(&self, records: &[(u64, f64)], block: bool) -> Result<(), EngineError> {
        if records.is_empty() {
            return Ok(());
        }
        let nshards = self.senders.len();
        // The router read lock is held across partitioning *and* the sends
        // below: a concurrent rebalance (write lock) can therefore never
        // observe — or invalidate — a half-enqueued batch.
        let router = self.shared.router.read();
        let mut parts: Vec<Vec<(u64, f64)>> = vec![Vec::new(); nshards];
        for &record in records {
            parts[router.shard_of(record.0)].push(record);
        }

        {
            let queue = &self.shared.queue;
            let capacity = self.shared.queue_capacity;
            let mut depth = queue.depth.lock().map_err(|_| EngineError::Poisoned)?;
            loop {
                if queue.closed.load(Ordering::SeqCst) {
                    return Err(EngineError::ChannelClosed);
                }
                // A partition larger than the whole capacity is admitted once
                // its shard's queue is empty, so oversized batches make
                // progress instead of deadlocking.
                let fits = parts.iter().enumerate().all(|(i, part)| {
                    part.is_empty() || depth[i] + part.len() <= capacity || depth[i] == 0
                });
                if fits {
                    break;
                }
                if !block {
                    return Err(EngineError::QueueFull);
                }
                depth = queue.space.wait(depth).map_err(|_| EngineError::Poisoned)?;
            }
            for (i, part) in parts.iter().enumerate() {
                depth[i] += part.len();
            }
        }

        for (i, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            self.senders[i]
                .send(ShardMsg::Records(part))
                .map_err(|_| EngineError::ChannelClosed)?;
        }
        Ok(())
    }

    /// Registers a stream with an explicit, caller-constructed detector
    /// instance, blocking until the owning shard worker acknowledges (so a
    /// subsequent [`EngineHandle::submit`] from this thread is guaranteed to
    /// find the stream registered).
    ///
    /// This is the escape hatch for detector types the declarative layer
    /// does not know about. The stream records **no [`DetectorSpec`]**:
    /// [`EngineHandle::stream_spec`] reports `None` for it, and an
    /// [`EngineHandle::snapshot`] containing it is not self-describing —
    /// restoring that snapshot requires a factory
    /// ([`crate::EngineBuilder::factory`]) able to rebuild the detector.
    /// Prefer [`EngineHandle::register_stream_spec`] when the detector can
    /// be described declaratively.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DuplicateStream`] if the id is already
    /// registered (the stream keeps its original detector), or
    /// [`EngineError::ChannelClosed`] when the engine has shut down.
    pub fn register_stream(
        &self,
        stream: u64,
        detector: Box<dyn DriftDetector + Send>,
    ) -> Result<(), EngineError> {
        self.register_with(stream, detector, None)
    }

    /// Registers a stream declaratively: validates `spec`, builds its
    /// detector, and records the spec on the stream — the canonical
    /// registration path. Spec-registered streams are introspectable via
    /// [`EngineHandle::stream_spec`] and make [`EngineHandle::snapshot`]
    /// self-describing (restorable with zero caller-side factories).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidSpec`] when the spec's parameters are
    /// out of range, [`EngineError::DuplicateStream`] if the id is already
    /// registered, or [`EngineError::ChannelClosed`] when the engine has
    /// shut down.
    pub fn register_stream_spec(&self, stream: u64, spec: DetectorSpec) -> Result<(), EngineError> {
        let detector = spec
            .build()
            .map_err(|e| EngineError::InvalidSpec(e.to_string()))?;
        self.register_with(stream, detector, Some(spec))
    }

    fn register_with(
        &self,
        stream: u64,
        detector: Box<dyn DriftDetector + Send>,
        spec: Option<DetectorSpec>,
    ) -> Result<(), EngineError> {
        let (ack, response) = channel();
        {
            // Route-and-send under the router read lock so a concurrent
            // rebalance cannot move the stream between lookup and enqueue.
            let router = self.shared.router.read();
            self.senders[router.shard_of(stream)]
                .send(ShardMsg::Register {
                    stream,
                    detector,
                    spec,
                    ack,
                })
                .map_err(|_| EngineError::ChannelClosed)?;
        }
        response.recv().map_err(|_| EngineError::ChannelClosed)?
    }

    /// The [`DetectorSpec`] a live stream is running, so operators can
    /// introspect a fleet without bookkeeping on the side. Returns `None`
    /// when the stream is not registered *or* was registered without a spec
    /// (explicit instance / closure factory) — use
    /// [`EngineHandle::stream_stats`] to distinguish the two.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ChannelClosed`] when the engine has shut down.
    pub fn stream_spec(&self, stream: u64) -> Result<Option<DetectorSpec>, EngineError> {
        Ok(self.stream_stats(stream)?.and_then(|s| s.spec))
    }

    /// Barrier: waits until every record submitted (by this thread) before
    /// this call has been processed and the sinks have been flushed.
    ///
    /// # Errors
    ///
    /// Returns the first ingestion error recorded since the last flush
    /// (e.g. [`EngineError::UnknownStream`] for records dropped by a
    /// factory-less engine — any further pending errors are discarded
    /// together with it), [`EngineError::ChannelClosed`] when the engine has
    /// shut down, or [`EngineError::Poisoned`] after a worker panic.
    pub fn flush(&self) -> Result<(), EngineError> {
        let mut acks = Vec::with_capacity(self.senders.len());
        {
            let _router = self.shared.router.read();
            for sender in &self.senders {
                let (ack, response) = channel();
                sender
                    .send(ShardMsg::Flush { ack })
                    .map_err(|_| EngineError::ChannelClosed)?;
                acks.push(response);
            }
        }
        for response in acks {
            response.recv().map_err(|_| EngineError::ChannelClosed)?;
        }
        if let Some(error) = self.take_error() {
            return Err(error);
        }
        // The flush barrier is the designated rebalance point: with the
        // queues just drained, migrations are cheap and cheap to reason
        // about. A no-op when the load is within threshold (or when no plan
        // improves on the current placement). The trigger probes the sum of
        // per-*stream* records under the *current* placement (migrated
        // streams carry their history with them — per-worker lifetime
        // counters would keep re-triggering on a long-fixed warm-up skew),
        // one `u64` per shard so the per-flush cost stays flat in fleet
        // size.
        if let Some(threshold) = self.shared.auto_rebalance_threshold {
            let mut acks = Vec::with_capacity(self.senders.len());
            {
                let _router = self.shared.router.read();
                for sender in &self.senders {
                    let (ack, response) = channel();
                    sender
                        .send(ShardMsg::LoadProbe { ack })
                        .map_err(|_| EngineError::ChannelClosed)?;
                    acks.push(response);
                }
            }
            let mut loads = Vec::with_capacity(acks.len());
            let mut active_streams = 0usize;
            for response in acks {
                let (load, streams) = response.recv().map_err(|_| EngineError::ChannelClosed)?;
                loads.push(load as f64);
                active_streams += streams;
            }
            let observed = imbalance(&loads);
            if observed > threshold {
                // Hysteresis: a previous attempt at (no worse) imbalance
                // with the same stream population produced no improving
                // plan — skip until something changed.
                let futile = *self
                    .shared
                    .futile_auto_rebalance
                    .lock()
                    .map_err(|_| EngineError::Poisoned)?;
                let skip = matches!(
                    futile,
                    Some((imbalance, streams))
                        if streams == active_streams && observed <= imbalance + 1e-9
                );
                if !skip {
                    let report = self.rebalance(RebalancePolicy::Records)?;
                    *self
                        .shared
                        .futile_auto_rebalance
                        .lock()
                        .map_err(|_| EngineError::Poisoned)? = if report.moved == 0 {
                        Some((observed, active_streams))
                    } else {
                        None
                    };
                }
            }
        }
        // Checkpoint cadence rides the same barrier: with the queues
        // drained, the dirty sets are exact and the capture is a clean
        // cut. `every_flushes == 0` disables the automatic cadence
        // (explicit [`EngineHandle::checkpoint`] calls only).
        if let Some(state) = &self.shared.checkpoint {
            let due = {
                let mut state = state.lock().map_err(|_| EngineError::Poisoned)?;
                state.flushes_since += 1;
                state.policy.every_flushes > 0 && state.flushes_since >= state.policy.every_flushes
            };
            if due {
                self.run_checkpoint(false, false)?;
            }
        }
        Ok(())
    }

    /// Removes and returns the oldest pending ingestion error, discarding
    /// the rest. [`EngineHandle::flush`] calls this internally; it is public
    /// for callers that poll instead of flushing.
    #[must_use]
    pub fn take_error(&self) -> Option<EngineError> {
        let mut errors = self
            .shared
            .queue
            .errors
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if errors.is_empty() {
            None
        } else {
            let first = errors.remove(0);
            errors.clear();
            Some(first)
        }
    }

    /// Per-shard reports (streams plus shard load), as a barrier (reflects
    /// all records submitted by this thread before the call). Indexed by
    /// shard.
    fn query_all(&self) -> Result<Vec<ShardReport>, EngineError> {
        let mut acks = Vec::with_capacity(self.senders.len());
        {
            let _router = self.shared.router.read();
            for sender in &self.senders {
                let (ack, response) = channel();
                sender
                    .send(ShardMsg::Query { ack })
                    .map_err(|_| EngineError::ChannelClosed)?;
                acks.push(response);
            }
        }
        acks.into_iter()
            .map(|response| response.recv().map_err(|_| EngineError::ChannelClosed))
            .collect()
    }

    /// Lifetime statistics for every registered stream, sorted by stream id.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ChannelClosed`] when the engine has shut down.
    pub fn stream_snapshots(&self) -> Result<Vec<StreamSnapshot>, EngineError> {
        let mut snapshots: Vec<StreamSnapshot> = self
            .query_all()?
            .into_iter()
            .flat_map(|report| report.streams)
            .collect();
        snapshots.sort_unstable_by_key(|s| s.stream);
        Ok(snapshots)
    }

    /// Lifetime statistics for one stream, if registered.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ChannelClosed`] when the engine has shut down.
    pub fn stream_stats(&self, stream: u64) -> Result<Option<StreamSnapshot>, EngineError> {
        let (ack, response) = channel();
        {
            let router = self.shared.router.read();
            self.senders[router.shard_of(stream)]
                .send(ShardMsg::Query { ack })
                .map_err(|_| EngineError::ChannelClosed)?;
        }
        let report = response.recv().map_err(|_| EngineError::ChannelClosed)?;
        Ok(report.streams.into_iter().find(|s| s.stream == stream))
    }

    /// Aggregate lifetime counters across all streams, including the
    /// per-shard load breakdown (records ingested, instantaneous queue
    /// occupancy, batch-latency EWMA) and per-stream record counts — the
    /// observability surface behind [`EngineHandle::rebalance`]. `Display`
    /// renders it as a compact table for CLI dumps.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ChannelClosed`] when the engine has shut down,
    /// or [`EngineError::Poisoned`] when queue accounting was poisoned.
    pub fn stats(&self) -> Result<EngineStats, EngineError> {
        let reports = self.query_all()?;
        let depths: Vec<usize> = self
            .shared
            .queue
            .depth
            .lock()
            .map_err(|_| EngineError::Poisoned)?
            .clone();
        let mut stream_records: Vec<(u64, u64)> = reports
            .iter()
            .flat_map(|report| report.streams.iter().map(|s| (s.stream, s.elements)))
            .collect();
        stream_records.sort_unstable();
        Ok(EngineStats {
            streams: stream_records.len(),
            elements: stream_records.iter().map(|&(_, n)| n).sum(),
            drifts: reports
                .iter()
                .flat_map(|report| report.streams.iter().map(|s| s.drifts))
                .sum(),
            shards: reports
                .iter()
                .enumerate()
                .map(|(shard, report)| ShardLoad {
                    shard,
                    streams: report.streams.len(),
                    stream_records: report.streams.iter().map(|s| s.elements).sum(),
                    records: report.records,
                    queue_depth: depths.get(shard).copied().unwrap_or(0),
                    batch_ewma_seconds: report.batch_ewma_seconds,
                    resident_bytes: report.resident_bytes,
                    hibernated_streams: report.hibernated_streams,
                    hibernated_bytes: report.hibernated_bytes,
                    rehydrations: report.rehydrations,
                })
                .collect(),
            stream_records,
        })
    }

    /// Recomputes the stream placement from observed load and migrates the
    /// moved streams' state between shard workers — detector, spec, `seq`
    /// counter, lifetime stats — atomically with respect to every other
    /// handle operation.
    ///
    /// The plan is greedy bin-packing (longest-processing-time): streams
    /// sorted by observed load (policy units; ties by id) are assigned one
    /// by one to the least-loaded shard. The call acts as its own barrier —
    /// the migration messages ride the same FIFO queues as records, and the
    /// router's write lock excludes concurrent submits — so per-stream
    /// record order, and therefore every future [`DriftEvent`] and its
    /// `seq`, is exactly what it would have been without the rebalance.
    /// Moving a stream moves its *future* work only; per-shard lifetime
    /// `records` counters stay with the workers that did the work.
    ///
    /// Returns a [`RebalanceReport`] with the move count and the before /
    /// after load vectors. When the greedy plan matches the current
    /// placement the call is a cheap no-op (`moved == 0`, no messages
    /// beyond the load query).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ChannelClosed`] when the engine has shut
    /// down.
    pub fn rebalance(&self, policy: RebalancePolicy) -> Result<RebalanceReport, EngineError> {
        let nshards = self.senders.len();
        let mut router = self.shared.router.write();

        // Load query under the write lock: the answer reflects exactly the
        // records that will have been processed before the migration cut.
        let mut acks = Vec::with_capacity(nshards);
        for sender in &self.senders {
            let (ack, response) = channel();
            sender
                .send(ShardMsg::Query { ack })
                .map_err(|_| EngineError::ChannelClosed)?;
            acks.push(response);
        }
        // (stream, current shard, load in policy units)
        let mut streams: Vec<(u64, usize, f64)> = Vec::new();
        for (shard, response) in acks.into_iter().enumerate() {
            let report = response.recv().map_err(|_| EngineError::ChannelClosed)?;
            for s in report.streams {
                let load = match policy {
                    RebalancePolicy::Records => s.elements as f64,
                    RebalancePolicy::DetectorSeconds => s.detector_seconds,
                };
                streams.push((s.stream, shard, load));
            }
        }

        let mut load_before = vec![0.0; nshards];
        for &(_, shard, load) in &streams {
            load_before[shard] += load;
        }

        // Greedy LPT: heaviest stream first onto the least-loaded shard
        // (ties by lowest shard index). Deterministic for a given load
        // vector. Streams with **no observed load stay put** — packing them
        // by LPT would dump every zero onto one shard (adding 0.0 never
        // advances the minimum), and there is no evidence to justify moving
        // them anyway.
        streams.sort_unstable_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut load_after = vec![0.0; nshards];
        let mut assignment: Vec<(u64, usize)> = Vec::with_capacity(streams.len());
        let mut moves: Vec<(u64, usize, usize)> = Vec::new(); // (stream, from, to)
        for &(stream, current, load) in &streams {
            let target = if load > 0.0 {
                load_after
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map_or(0, |(i, _)| i)
            } else {
                current
            };
            load_after[target] += load;
            assignment.push((stream, target));
            if target != current {
                moves.push((stream, current, target));
            }
        }

        // LPT from scratch is not monotone against an arbitrary existing
        // placement (e.g. loads {3,3}|{2,2,2} re-pack to {3,2,2}|{3,2}): a
        // plan that does not *strictly* lower the hottest shard is
        // discarded and the current placement kept — so rebalance never
        // makes things worse and an auto-rebalance loop cannot thrash.
        let max_of = |loads: &[f64]| loads.iter().copied().fold(0.0f64, f64::max);
        if !moves.is_empty() && max_of(&load_after) >= max_of(&load_before) {
            moves.clear();
            assignment.clear();
            assignment.extend(
                streams
                    .iter()
                    .map(|&(stream, current, _)| (stream, current)),
            );
            load_after.clone_from(&load_before);
        }

        let report = RebalanceReport {
            policy,
            streams: streams.len(),
            moved: moves.len(),
            load_before,
            load_after,
        };
        if moves.is_empty() {
            return Ok(report);
        }

        // Extract every moved stream from its source shard (the message is
        // a per-shard barrier: all previously routed records are already
        // processed when it lands)...
        let mut outgoing: Vec<Vec<u64>> = vec![Vec::new(); nshards];
        for &(stream, from, _) in &moves {
            outgoing[from].push(stream);
        }
        let mut extract_acks = Vec::new();
        for (shard, streams) in outgoing.into_iter().enumerate() {
            if streams.is_empty() {
                continue;
            }
            let (ack, response) = channel();
            self.senders[shard]
                .send(ShardMsg::Extract { streams, ack })
                .map_err(|_| EngineError::ChannelClosed)?;
            extract_acks.push(response);
        }
        let mut extracted: HashMap<u64, StreamState> = HashMap::new();
        for response in extract_acks {
            for (stream, state) in response.recv().map_err(|_| EngineError::ChannelClosed)? {
                extracted.insert(stream, state);
            }
        }

        // ... and install it on its destination.
        let mut incoming: Vec<Vec<(u64, StreamState)>> = (0..nshards).map(|_| Vec::new()).collect();
        for &(stream, _, to) in &moves {
            if let Some(state) = extracted.remove(&stream) {
                incoming[to].push((stream, state));
            }
        }
        let mut install_acks = Vec::new();
        for (shard, states) in incoming.into_iter().enumerate() {
            if states.is_empty() {
                continue;
            }
            let (ack, response) = channel();
            self.senders[shard]
                .send(ShardMsg::Install { states, ack })
                .map_err(|_| EngineError::ChannelClosed)?;
            install_acks.push(response);
        }
        for response in install_acks {
            response.recv().map_err(|_| EngineError::ChannelClosed)?;
        }

        // Only now does the routing table flip: every record submitted
        // after the write lock releases follows the new placement.
        router.repin(assignment);

        // A migration changes stream → shard ownership, which the WAL
        // cannot express (segments are per-shard and replay in shard
        // order). Cutting a checkpoint at the migration barrier — while
        // the router write lock still excludes new records — keeps
        // recovery exact: everything before the move is covered by the
        // checkpoint, everything after logs under the new owner.
        if self.shared.checkpoint.is_some() {
            self.run_checkpoint(false, true)?;
        }
        Ok(report)
    }

    /// Cuts a checkpoint **now**, as a barrier: everything submitted by
    /// this thread before the call is covered. Writes a delta overlay of
    /// the streams dirty since the previous checkpoint — or a fresh full
    /// base when there is none yet or the overlay chain has outgrown
    /// [`crate::CheckpointPolicy::compact_ratio`] × the base (compaction) —
    /// then the manifest, then prunes files no longer referenced.
    /// Checkpoints also run automatically at flush barriers per
    /// [`crate::CheckpointPolicy::every_flushes`]; this method is for
    /// explicit cut points (before a planned handover, after a bulk load).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Checkpoint`] when the engine was built
    /// without [`crate::EngineBuilder::checkpoint`] or when writing to the
    /// checkpoint directory fails, [`EngineError::SnapshotUnsupported`]
    /// when a dirty stream runs a custom detector without state
    /// serialization, or [`EngineError::ChannelClosed`] when the engine
    /// has shut down.
    pub fn checkpoint(&self) -> Result<CheckpointReport, EngineError> {
        self.run_checkpoint(false, false)
    }

    /// The checkpoint cycle shared by [`EngineHandle::checkpoint`], the
    /// flush cadence and the rebalance hook. `router_locked` is `true` when
    /// the caller already holds the router write lock (rebalance) —
    /// `std::sync::RwLock` is not reentrant.
    ///
    /// Write ordering is the crash-safety contract: delta/base file first,
    /// manifest (the commit point) second, garbage collection last — and
    /// every file lands via write-to-temp + rename. A crash between any
    /// two steps leaves the previous manifest authoritative and the WAL
    /// segments it needs intact.
    pub(crate) fn run_checkpoint(
        &self,
        force_full: bool,
        router_locked: bool,
    ) -> Result<CheckpointReport, EngineError> {
        let Some(state_mutex) = &self.shared.checkpoint else {
            return Err(EngineError::Checkpoint(
                "engine was built without a checkpoint directory \
                 (EngineBuilder::checkpoint)"
                    .to_string(),
            ));
        };
        let mut state = state_mutex.lock().map_err(|_| EngineError::Poisoned)?;
        let full = force_full || state.wants_full();
        let generation = state.next_generation;

        // The capture barrier: every worker finalizes its WAL segment,
        // rotates to generation + 1 and returns its (dirty or full) entry
        // set. Holding the checkpoint lock serializes concurrent cuts;
        // the router read lock keeps the shard set stable underneath.
        let mut acks = Vec::with_capacity(self.senders.len());
        {
            let _router = (!router_locked).then(|| self.shared.router.read());
            for sender in &self.senders {
                let (ack, response) = channel();
                sender
                    .send(ShardMsg::Checkpoint {
                        generation,
                        full,
                        ack,
                    })
                    .map_err(|_| EngineError::ChannelClosed)?;
                acks.push(response);
            }
        }
        // Past the barrier, shards have already cleared dirty bits; any
        // failure before the manifest lands marks the state degraded so the
        // next checkpoint writes a full base instead of a (possibly
        // incomplete) delta.
        let collected: Result<Vec<StreamStateSnapshot>, EngineError> = (|| {
            let mut streams = Vec::new();
            for response in acks {
                streams.extend(response.recv().map_err(|_| EngineError::ChannelClosed)??);
            }
            Ok(streams)
        })();
        let result = collected.and_then(|mut streams| {
            streams.sort_unstable_by_key(|entry| entry.stream);
            state.commit(
                generation,
                full,
                streams,
                self.senders.len(),
                self.shared.config.emit_warnings,
            )
        });
        if result.is_err() {
            state.degraded = true;
        }
        result
    }

    /// Serializes the state of every stream into an [`EngineSnapshot`], as
    /// a barrier: the snapshot reflects every record submitted by this
    /// thread before the call. Restore it with
    /// [`crate::EngineBuilder::restore`] — with **no factory needed** when
    /// every stream was registered through a [`DetectorSpec`] (the snapshot
    /// then embeds `{spec, state}` per stream; see
    /// [`EngineSnapshot::is_self_describing`]). Wire format v3 additionally
    /// records each stream's **shard placement**, so a restore reproduces a
    /// rebalanced (tuned) routing table instead of resetting to modulo.
    ///
    /// Writes the layout configured at build time
    /// ([`crate::EngineBuilder::snapshot_encoding`], default: v3 JSON
    /// arrays); [`EngineHandle::snapshot_compact`] always writes the v4
    /// compact binary layout. All 8 shipped detector kinds (OPTWIN and
    /// every baseline) implement state serialization with bit-exact
    /// resumption, in both layouts.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::SnapshotUnsupported`] when a stream runs a
    /// *custom* detector that does not implement
    /// [`optwin_core::DriftDetector::snapshot_state`], or
    /// [`EngineError::ChannelClosed`] when the engine has shut down.
    pub fn snapshot(&self) -> Result<EngineSnapshot, EngineError> {
        self.snapshot_with(self.shared.snapshot_encoding)
    }

    /// [`EngineHandle::snapshot`] in the **v4 compact binary** layout:
    /// detector windows and bucket rows are embedded as base64 binary blobs
    /// (bit-packed / fixed-point-delta / raw frames, whichever is smallest
    /// per sequence — see [`optwin_core::snapshot`]) instead of JSON number
    /// arrays. At the paper's large-`w_max` OPTWIN configurations this
    /// shrinks fleet snapshots by several ×; restores remain bit-exact.
    ///
    /// # Errors
    ///
    /// As [`EngineHandle::snapshot`].
    pub fn snapshot_compact(&self) -> Result<EngineSnapshot, EngineError> {
        self.snapshot_with(SnapshotEncoding::Binary)
    }

    /// [`EngineHandle::snapshot`] with an explicit sequence layout (the
    /// wire version follows it: v3 for JSON, v4 for binary).
    ///
    /// # Errors
    ///
    /// As [`EngineHandle::snapshot`].
    pub fn snapshot_with(&self, encoding: SnapshotEncoding) -> Result<EngineSnapshot, EngineError> {
        let mut acks = Vec::with_capacity(self.senders.len());
        {
            let _router = self.shared.router.read();
            for sender in &self.senders {
                let (ack, response) = channel();
                sender
                    .send(ShardMsg::Snapshot { encoding, ack })
                    .map_err(|_| EngineError::ChannelClosed)?;
                acks.push(response);
            }
        }
        let mut streams = Vec::new();
        for response in acks {
            streams.extend(response.recv().map_err(|_| EngineError::ChannelClosed)??);
        }
        streams.sort_unstable_by_key(|s| s.stream);
        Ok(EngineSnapshot {
            version: wire_version(encoding),
            shards: self.senders.len(),
            emit_warnings: self.shared.config.emit_warnings,
            streams,
        })
    }

    /// Drains every queue, stops the workers and joins their threads. After
    /// this, every `submit`/`flush`/query on any clone fails with
    /// [`EngineError::ChannelClosed`]. Safe to call more than once (later
    /// calls are no-ops).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Poisoned`] when a worker thread panicked, or
    /// the first pending ingestion error (as [`EngineHandle::flush`]).
    pub fn shutdown(&self) -> Result<(), EngineError> {
        {
            // Taken so a shutdown cannot cut a concurrent migration in
            // half (the write lock is held across extract + install).
            let _router = self.shared.router.read();
            for sender in &self.senders {
                // A closed channel means the worker is already gone — fine.
                let _ = sender.send(ShardMsg::Shutdown);
            }
        }
        let workers: Vec<JoinHandle<()>> = {
            let mut guard = self
                .shared
                .workers
                .lock()
                .map_err(|_| EngineError::Poisoned)?;
            guard.drain(..).collect()
        };
        let mut poisoned = false;
        for worker in workers {
            poisoned |= worker.join().is_err();
        }
        if poisoned {
            return Err(EngineError::Poisoned);
        }
        match self.take_error() {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }
}
