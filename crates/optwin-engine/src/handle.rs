//! The non-blocking front door: shard worker threads and the cloneable
//! [`EngineHandle`] that feeds them.
//!
//! [`crate::EngineBuilder::build`] spawns one long-lived OS thread per
//! shard; each worker owns its shard's `(stream id → detector)` map
//! outright, so the hot path needs no locking. The returned [`EngineHandle`]
//! is cheaply cloneable (an `Arc` plus per-shard channel senders): any
//! number of producer threads can [`EngineHandle::submit`] record batches,
//! which partitions them by `stream % shards` and enqueues each partition on
//! the owning shard's bounded queue, returning immediately. Detections flow
//! out through the configured [`crate::EventSink`]s from the worker threads;
//! the submitting thread never sees them.
//!
//! Backpressure is accounted in **records, per shard**: `submit` blocks
//! while a target shard's queue is at capacity, [`EngineHandle::try_submit`]
//! instead fails fast with [`EngineError::QueueFull`] and enqueues nothing.
//! [`EngineHandle::flush`] and [`EngineHandle::shutdown`] are barriers: they
//! ride the same FIFO channels as the records, so when they return, every
//! record previously submitted *by the calling thread* has been fully
//! processed and the sinks have been flushed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use optwin_baselines::DetectorSpec;
use optwin_core::{DriftDetector, DriftStatus};

use crate::engine::{EngineConfig, EngineError, StreamSnapshot};
use crate::event::DriftEvent;
use crate::persist::{EngineSnapshot, StreamStateSnapshot, ENGINE_SNAPSHOT_VERSION};
use crate::sink::EventSink;

/// A detector factory shared by every shard worker (and, for the blocking
/// facade, the submitting side): builds a detector the first time a record
/// for an unknown stream id arrives.
pub type SharedDetectorFactory = Arc<dyn Fn(u64) -> Box<dyn DriftDetector + Send> + Send + Sync>;

/// How the engine builds detectors for auto-registered (first-sight) stream
/// ids: declaratively from a [`DetectorSpec`] — the canonical path, which
/// also records the spec on the stream so snapshots are self-describing —
/// or through an opaque closure (the escape hatch for custom detector
/// types, which leaves no spec behind).
#[derive(Clone)]
pub(crate) enum DetectorSource {
    /// Every unknown stream gets `spec.build()` and records the spec.
    Spec(DetectorSpec),
    /// Every unknown stream gets `factory(id)`; no spec is recorded.
    Closure(SharedDetectorFactory),
}

impl DetectorSource {
    /// Builds a detector (and the spec to record, if any) for `stream`.
    pub(crate) fn make(
        &self,
        stream: u64,
    ) -> Result<(Box<dyn DriftDetector + Send>, Option<DetectorSpec>), EngineError> {
        match self {
            DetectorSource::Spec(spec) => {
                let detector = spec
                    .build()
                    .map_err(|e| EngineError::InvalidSpec(e.to_string()))?;
                Ok((detector, Some(spec.clone())))
            }
            DetectorSource::Closure(factory) => Ok((factory(stream), None)),
        }
    }
}

/// Aggregate lifetime counters across all streams of an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Number of registered streams.
    pub streams: usize,
    /// Total elements ingested across all streams.
    pub elements: u64,
    /// Total drifts flagged across all streams.
    pub drifts: u64,
}

/// Messages a worker accepts over its FIFO channel. Control messages ride
/// the same queue as records, so every control operation doubles as a
/// barrier for the records enqueued before it.
enum ShardMsg {
    /// A partition of a submitted batch (all records belong to this shard).
    Records(Vec<(u64, f64)>),
    /// Register a stream with an explicit detector (and, when it was built
    /// from a [`DetectorSpec`], the spec to record for introspection and
    /// self-describing snapshots).
    Register {
        stream: u64,
        detector: Box<dyn DriftDetector + Send>,
        spec: Option<DetectorSpec>,
        ack: Sender<Result<(), EngineError>>,
    },
    /// Flush the sinks and acknowledge (barrier).
    Flush { ack: Sender<()> },
    /// Report per-stream lifetime statistics (barrier).
    Query { ack: Sender<Vec<StreamSnapshot>> },
    /// Serialize per-stream detector state (barrier).
    Snapshot {
        ack: Sender<Result<Vec<StreamStateSnapshot>, EngineError>>,
    },
    /// Exit the worker loop after draining everything queued before this.
    Shutdown,
}

/// Queue accounting shared between producers and workers.
///
/// The channels themselves are unbounded; boundedness comes from this
/// record-level ledger, which lets `try_submit` reserve space on *all*
/// target shards atomically (a partial enqueue would break the
/// all-or-nothing contract).
struct QueueState {
    /// Records currently queued per shard.
    depth: Mutex<Vec<usize>>,
    /// Signalled whenever a worker dequeues records or the engine closes.
    space: Condvar,
    /// Set when any worker exits (shutdown or panic): the engine no longer
    /// makes progress, so producers must stop waiting.
    closed: AtomicBool,
    /// Ingestion-time errors recorded by workers (e.g. an unknown stream
    /// with no factory), surfaced by [`EngineHandle::flush`].
    errors: Mutex<Vec<EngineError>>,
}

impl QueueState {
    fn record_error(&self, error: EngineError) {
        self.errors
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(error);
    }
}

/// Per-stream state owned by exactly one shard worker.
pub(crate) struct StreamState {
    pub(crate) detector: Box<dyn DriftDetector + Send>,
    /// The spec the stream was registered with, when registered
    /// declaratively (`None` for closure-factory and explicit-instance
    /// registrations). Recorded so operators can introspect live streams
    /// ([`EngineHandle::stream_spec`]) and snapshots are self-describing.
    pub(crate) spec: Option<DetectorSpec>,
    /// Elements ingested for this stream so far (the next element's sequence
    /// number).
    pub(crate) seq: u64,
    /// Wall-clock seconds spent inside the detector for this stream.
    pub(crate) seconds: f64,
    /// Values staged for the current batch (reused across batches).
    staged: Vec<f64>,
}

impl StreamState {
    pub(crate) fn new(detector: Box<dyn DriftDetector + Send>) -> Self {
        Self::with_spec(detector, None)
    }

    pub(crate) fn with_spec(
        detector: Box<dyn DriftDetector + Send>,
        spec: Option<DetectorSpec>,
    ) -> Self {
        Self {
            detector,
            spec,
            seq: 0,
            seconds: 0.0,
            staged: Vec::new(),
        }
    }
}

/// A shard: a disjoint set of streams processed sequentially by one worker.
#[derive(Default)]
struct ShardState {
    streams: HashMap<u64, StreamState>,
    /// First-seen order of the streams staged in the current batch.
    batch_order: Vec<u64>,
    /// Event staging buffer, reused across batches.
    events: Vec<DriftEvent>,
}

impl ShardState {
    fn register(
        &mut self,
        stream: u64,
        detector: Box<dyn DriftDetector + Send>,
        spec: Option<DetectorSpec>,
    ) -> Result<(), EngineError> {
        if self.streams.contains_key(&stream) {
            return Err(EngineError::DuplicateStream(stream));
        }
        self.streams
            .insert(stream, StreamState::with_spec(detector, spec));
        Ok(())
    }

    /// Stages `records`, creating unknown streams through the default
    /// detector source (or recording [`EngineError::UnknownStream`] and
    /// skipping the record when there is none), runs every staged stream's
    /// detector through its batch path, and emits the events — sorted by
    /// `(stream, seq)` within this call — into the sinks.
    fn ingest(
        &mut self,
        records: &[(u64, f64)],
        source: Option<&DetectorSource>,
        sinks: &[Arc<dyn EventSink>],
        emit_warnings: bool,
        queue: &QueueState,
    ) {
        self.batch_order.clear();
        for &(stream, value) in records {
            let state = match self.streams.entry(stream) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => match source {
                    Some(source) => match source.make(stream) {
                        Ok((detector, spec)) => e.insert(StreamState::with_spec(detector, spec)),
                        Err(error) => {
                            // Unreachable for a builder-validated spec, but a
                            // worker must never panic over it.
                            queue.record_error(error);
                            continue;
                        }
                    },
                    None => {
                        queue.record_error(EngineError::UnknownStream(stream));
                        continue;
                    }
                },
            };
            if state.staged.is_empty() {
                self.batch_order.push(stream);
            }
            state.staged.push(value);
        }

        self.events.clear();
        for &stream in &self.batch_order {
            let state = self.streams.get_mut(&stream).expect("staged above");
            let started = Instant::now();
            let outcome = state.detector.add_batch(&state.staged);
            state.seconds += started.elapsed().as_secs_f64();

            self.events
                .extend(outcome.drift_indices.iter().map(|&i| DriftEvent {
                    stream,
                    seq: state.seq + i as u64,
                    status: DriftStatus::Drift,
                }));
            if emit_warnings {
                self.events
                    .extend(outcome.warning_indices.iter().map(|&i| DriftEvent {
                        stream,
                        seq: state.seq + i as u64,
                        status: DriftStatus::Warning,
                    }));
            }
            state.seq += state.staged.len() as u64;
            state.staged.clear();
        }

        self.events.sort_unstable_by_key(|e| (e.stream, e.seq));
        for event in &self.events {
            for sink in sinks {
                sink.emit(event);
            }
        }
    }

    fn query(&self) -> Vec<StreamSnapshot> {
        self.streams
            .iter()
            .map(|(&stream, state)| StreamSnapshot {
                stream,
                elements: state.seq,
                drifts: state.detector.drifts_detected(),
                detector_seconds: state.seconds,
                detector: state.detector.name(),
                spec: state.spec.clone(),
            })
            .collect()
    }

    fn snapshot(&self) -> Result<Vec<StreamStateSnapshot>, EngineError> {
        let mut ids: Vec<u64> = self.streams.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|stream| {
                let state = &self.streams[&stream];
                let detector_state = state.detector.snapshot_state().ok_or_else(|| {
                    EngineError::SnapshotUnsupported {
                        stream,
                        detector: state.detector.name().to_string(),
                    }
                })?;
                Ok(StreamStateSnapshot {
                    stream,
                    seq: state.seq,
                    detector: state.detector.name().to_string(),
                    detector_seconds: state.seconds,
                    spec: state.spec.clone(),
                    state: detector_state,
                })
            })
            .collect()
    }
}

/// Marks the engine closed when the worker exits — normally *or* by panic —
/// so producers blocked on backpressure wake up instead of hanging.
struct WorkerGuard {
    queue: Arc<QueueState>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.queue.record_error(EngineError::Poisoned);
        }
        self.queue.closed.store(true, Ordering::SeqCst);
        self.queue.space.notify_all();
    }
}

#[allow(clippy::needless_pass_by_value)]
fn worker_loop(
    shard_index: usize,
    rx: Receiver<ShardMsg>,
    queue: Arc<QueueState>,
    mut shard: ShardState,
    source: Option<DetectorSource>,
    sinks: Vec<Arc<dyn EventSink>>,
    emit_warnings: bool,
) {
    let _guard = WorkerGuard {
        queue: Arc::clone(&queue),
    };
    // Exiting when `recv` fails makes dropping the last handle an implicit
    // shutdown: all senders gone, nothing can arrive anymore.
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Records(records) => {
                {
                    let mut depth = queue.depth.lock().unwrap_or_else(PoisonError::into_inner);
                    depth[shard_index] = depth[shard_index].saturating_sub(records.len());
                }
                queue.space.notify_all();
                shard.ingest(&records, source.as_ref(), &sinks, emit_warnings, &queue);
            }
            ShardMsg::Register {
                stream,
                detector,
                spec,
                ack,
            } => {
                let _ = ack.send(shard.register(stream, detector, spec));
            }
            ShardMsg::Flush { ack } => {
                for sink in &sinks {
                    sink.flush();
                }
                let _ = ack.send(());
            }
            ShardMsg::Query { ack } => {
                let _ = ack.send(shard.query());
            }
            ShardMsg::Snapshot { ack } => {
                let _ = ack.send(shard.snapshot());
            }
            ShardMsg::Shutdown => break,
        }
    }
    for sink in &sinks {
        sink.flush();
    }
}

/// State shared by every clone of an [`EngineHandle`].
struct HandleShared {
    queue: Arc<QueueState>,
    /// Worker join handles, taken by the first successful
    /// [`EngineHandle::shutdown`].
    workers: Mutex<Vec<JoinHandle<()>>>,
    config: EngineConfig,
    queue_capacity: usize,
    has_factory: bool,
}

/// A cheaply-cloneable, thread-safe front door to a running engine.
///
/// Obtained from [`crate::EngineBuilder::build`]. Clones share the same
/// worker threads and queues; dropping the last clone (and any
/// [`crate::DriftEngine`] facade holding one) lets the workers drain and
/// exit on their own.
///
/// Queueing and barrier semantics: `submit` blocks on a full shard queue
/// while [`EngineHandle::try_submit`] fails fast; [`EngineHandle::flush`],
/// the query methods and [`EngineHandle::snapshot`] ride the same FIFO
/// channels as the records, so each acts as a barrier for everything this
/// thread submitted before it; [`EngineHandle::shutdown`] additionally
/// drains the queues and joins the workers.
pub struct EngineHandle {
    /// Per-clone channel senders (`mpsc::Sender` is `Sync`, so a single
    /// handle may also be shared by reference across threads).
    senders: Vec<Sender<ShardMsg>>,
    shared: Arc<HandleShared>,
}

impl Clone for EngineHandle {
    fn clone(&self) -> Self {
        Self {
            senders: self.senders.clone(),
            shared: Arc::clone(&self.shared),
        }
    }
}

impl std::fmt::Debug for EngineHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineHandle")
            .field("config", &self.shared.config)
            .field("queue_capacity", &self.shared.queue_capacity)
            .field("has_factory", &self.shared.has_factory)
            .field("closed", &self.shared.queue.closed.load(Ordering::SeqCst))
            .finish()
    }
}

/// Spawns the shard workers and assembles the handle. Called by
/// [`crate::EngineBuilder::build`] after validation.
pub(crate) fn spawn_engine(
    config: EngineConfig,
    queue_capacity: usize,
    source: Option<DetectorSource>,
    sinks: Vec<Arc<dyn EventSink>>,
    initial_streams: Vec<HashMap<u64, StreamState>>,
) -> EngineHandle {
    debug_assert_eq!(initial_streams.len(), config.shards);
    let queue = Arc::new(QueueState {
        depth: Mutex::new(vec![0; config.shards]),
        space: Condvar::new(),
        closed: AtomicBool::new(false),
        errors: Mutex::new(Vec::new()),
    });

    let mut senders = Vec::with_capacity(config.shards);
    let mut workers = Vec::with_capacity(config.shards);
    for (shard_index, streams) in initial_streams.into_iter().enumerate() {
        let (tx, rx) = channel();
        let shard = ShardState {
            streams,
            ..ShardState::default()
        };
        let queue = Arc::clone(&queue);
        let source = source.clone();
        let sinks = sinks.clone();
        let emit_warnings = config.emit_warnings;
        let worker = std::thread::Builder::new()
            .name(format!("optwin-shard-{shard_index}"))
            .spawn(move || {
                worker_loop(shard_index, rx, queue, shard, source, sinks, emit_warnings);
            })
            .expect("failed to spawn engine shard worker");
        senders.push(tx);
        workers.push(worker);
    }

    EngineHandle {
        senders,
        shared: Arc::new(HandleShared {
            queue,
            workers: Mutex::new(workers),
            config,
            queue_capacity,
            has_factory: source.is_some(),
        }),
    }
}

impl EngineHandle {
    /// Number of shards (worker threads).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// The engine configuration the handle was built with.
    #[must_use]
    pub fn config(&self) -> EngineConfig {
        self.shared.config
    }

    /// Per-shard queue capacity, in records.
    #[must_use]
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue_capacity
    }

    /// `true` when the engine auto-registers unknown streams through a
    /// default detector source — either a [`DetectorSpec`] installed with
    /// [`crate::EngineBuilder::default_spec`] or a closure factory installed
    /// with [`crate::EngineBuilder::factory`].
    #[must_use]
    pub fn has_factory(&self) -> bool {
        self.shared.has_factory
    }

    /// The shard a stream id is pinned to.
    #[inline]
    fn shard_of(&self, stream: u64) -> usize {
        (stream % self.senders.len() as u64) as usize
    }

    /// Enqueues a batch of `(stream id, value)` records and returns
    /// immediately; the shard workers process them asynchronously and push
    /// any detections into the sinks.
    ///
    /// Records are partitioned by `stream % shards`; per-stream order is the
    /// submission order (across all clones, submission order is whatever
    /// order the `submit` calls won the internal reservation). **Blocks**
    /// while a target shard's queue is at capacity; use
    /// [`EngineHandle::try_submit`] to fail fast instead.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ChannelClosed`] after
    /// [`EngineHandle::shutdown`] (or a worker death), or
    /// [`EngineError::Poisoned`] when internal state was poisoned by a
    /// panicking thread. Records referencing unknown streams are validated
    /// on the worker: with a factory they auto-register, without one the
    /// offending records are dropped and the error surfaces at the next
    /// [`EngineHandle::flush`].
    pub fn submit(&self, records: &[(u64, f64)]) -> Result<(), EngineError> {
        self.submit_inner(records, true)
    }

    /// Non-blocking [`EngineHandle::submit`]: if any target shard's queue
    /// lacks room for its partition, returns [`EngineError::QueueFull`]
    /// **without enqueuing anything** (space is reserved on all shards
    /// atomically), so the caller can retry the whole batch later or shed
    /// load.
    ///
    /// # Errors
    ///
    /// [`EngineError::QueueFull`] on backpressure; otherwise as
    /// [`EngineHandle::submit`].
    pub fn try_submit(&self, records: &[(u64, f64)]) -> Result<(), EngineError> {
        self.submit_inner(records, false)
    }

    fn submit_inner(&self, records: &[(u64, f64)], block: bool) -> Result<(), EngineError> {
        if records.is_empty() {
            return Ok(());
        }
        let nshards = self.senders.len();
        let mut parts: Vec<Vec<(u64, f64)>> = vec![Vec::new(); nshards];
        for &record in records {
            parts[(record.0 % nshards as u64) as usize].push(record);
        }

        {
            let queue = &self.shared.queue;
            let capacity = self.shared.queue_capacity;
            let mut depth = queue.depth.lock().map_err(|_| EngineError::Poisoned)?;
            loop {
                if queue.closed.load(Ordering::SeqCst) {
                    return Err(EngineError::ChannelClosed);
                }
                // A partition larger than the whole capacity is admitted once
                // its shard's queue is empty, so oversized batches make
                // progress instead of deadlocking.
                let fits = parts.iter().enumerate().all(|(i, part)| {
                    part.is_empty() || depth[i] + part.len() <= capacity || depth[i] == 0
                });
                if fits {
                    break;
                }
                if !block {
                    return Err(EngineError::QueueFull);
                }
                depth = queue.space.wait(depth).map_err(|_| EngineError::Poisoned)?;
            }
            for (i, part) in parts.iter().enumerate() {
                depth[i] += part.len();
            }
        }

        for (i, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            self.senders[i]
                .send(ShardMsg::Records(part))
                .map_err(|_| EngineError::ChannelClosed)?;
        }
        Ok(())
    }

    /// Registers a stream with an explicit, caller-constructed detector
    /// instance, blocking until the owning shard worker acknowledges (so a
    /// subsequent [`EngineHandle::submit`] from this thread is guaranteed to
    /// find the stream registered).
    ///
    /// This is the escape hatch for detector types the declarative layer
    /// does not know about. The stream records **no [`DetectorSpec`]**:
    /// [`EngineHandle::stream_spec`] reports `None` for it, and an
    /// [`EngineHandle::snapshot`] containing it is not self-describing —
    /// restoring that snapshot requires a factory
    /// ([`crate::EngineBuilder::factory`]) able to rebuild the detector.
    /// Prefer [`EngineHandle::register_stream_spec`] when the detector can
    /// be described declaratively.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DuplicateStream`] if the id is already
    /// registered (the stream keeps its original detector), or
    /// [`EngineError::ChannelClosed`] when the engine has shut down.
    pub fn register_stream(
        &self,
        stream: u64,
        detector: Box<dyn DriftDetector + Send>,
    ) -> Result<(), EngineError> {
        self.register_with(stream, detector, None)
    }

    /// Registers a stream declaratively: validates `spec`, builds its
    /// detector, and records the spec on the stream — the canonical
    /// registration path. Spec-registered streams are introspectable via
    /// [`EngineHandle::stream_spec`] and make [`EngineHandle::snapshot`]
    /// self-describing (restorable with zero caller-side factories).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidSpec`] when the spec's parameters are
    /// out of range, [`EngineError::DuplicateStream`] if the id is already
    /// registered, or [`EngineError::ChannelClosed`] when the engine has
    /// shut down.
    pub fn register_stream_spec(&self, stream: u64, spec: DetectorSpec) -> Result<(), EngineError> {
        let detector = spec
            .build()
            .map_err(|e| EngineError::InvalidSpec(e.to_string()))?;
        self.register_with(stream, detector, Some(spec))
    }

    fn register_with(
        &self,
        stream: u64,
        detector: Box<dyn DriftDetector + Send>,
        spec: Option<DetectorSpec>,
    ) -> Result<(), EngineError> {
        let (ack, response) = channel();
        self.senders[self.shard_of(stream)]
            .send(ShardMsg::Register {
                stream,
                detector,
                spec,
                ack,
            })
            .map_err(|_| EngineError::ChannelClosed)?;
        response.recv().map_err(|_| EngineError::ChannelClosed)?
    }

    /// The [`DetectorSpec`] a live stream is running, so operators can
    /// introspect a fleet without bookkeeping on the side. Returns `None`
    /// when the stream is not registered *or* was registered without a spec
    /// (explicit instance / closure factory) — use
    /// [`EngineHandle::stream_stats`] to distinguish the two.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ChannelClosed`] when the engine has shut down.
    pub fn stream_spec(&self, stream: u64) -> Result<Option<DetectorSpec>, EngineError> {
        Ok(self.stream_stats(stream)?.and_then(|s| s.spec))
    }

    /// Barrier: waits until every record submitted (by this thread) before
    /// this call has been processed and the sinks have been flushed.
    ///
    /// # Errors
    ///
    /// Returns the first ingestion error recorded since the last flush
    /// (e.g. [`EngineError::UnknownStream`] for records dropped by a
    /// factory-less engine — any further pending errors are discarded
    /// together with it), [`EngineError::ChannelClosed`] when the engine has
    /// shut down, or [`EngineError::Poisoned`] after a worker panic.
    pub fn flush(&self) -> Result<(), EngineError> {
        let mut acks = Vec::with_capacity(self.senders.len());
        for sender in &self.senders {
            let (ack, response) = channel();
            sender
                .send(ShardMsg::Flush { ack })
                .map_err(|_| EngineError::ChannelClosed)?;
            acks.push(response);
        }
        for response in acks {
            response.recv().map_err(|_| EngineError::ChannelClosed)?;
        }
        match self.take_error() {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }

    /// Removes and returns the oldest pending ingestion error, discarding
    /// the rest. [`EngineHandle::flush`] calls this internally; it is public
    /// for callers that poll instead of flushing.
    #[must_use]
    pub fn take_error(&self) -> Option<EngineError> {
        let mut errors = self
            .shared
            .queue
            .errors
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if errors.is_empty() {
            None
        } else {
            let first = errors.remove(0);
            errors.clear();
            Some(first)
        }
    }

    /// Per-stream snapshots of every shard, as a barrier (reflects all
    /// records submitted by this thread before the call).
    fn query_all(&self) -> Result<Vec<StreamSnapshot>, EngineError> {
        let mut acks = Vec::with_capacity(self.senders.len());
        for sender in &self.senders {
            let (ack, response) = channel();
            sender
                .send(ShardMsg::Query { ack })
                .map_err(|_| EngineError::ChannelClosed)?;
            acks.push(response);
        }
        let mut snapshots = Vec::new();
        for response in acks {
            snapshots.extend(response.recv().map_err(|_| EngineError::ChannelClosed)?);
        }
        Ok(snapshots)
    }

    /// Lifetime statistics for every registered stream, sorted by stream id.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ChannelClosed`] when the engine has shut down.
    pub fn stream_snapshots(&self) -> Result<Vec<StreamSnapshot>, EngineError> {
        let mut snapshots = self.query_all()?;
        snapshots.sort_unstable_by_key(|s| s.stream);
        Ok(snapshots)
    }

    /// Lifetime statistics for one stream, if registered.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ChannelClosed`] when the engine has shut down.
    pub fn stream_stats(&self, stream: u64) -> Result<Option<StreamSnapshot>, EngineError> {
        let (ack, response) = channel();
        self.senders[self.shard_of(stream)]
            .send(ShardMsg::Query { ack })
            .map_err(|_| EngineError::ChannelClosed)?;
        let snapshots = response.recv().map_err(|_| EngineError::ChannelClosed)?;
        Ok(snapshots.into_iter().find(|s| s.stream == stream))
    }

    /// Aggregate lifetime counters across all streams.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ChannelClosed`] when the engine has shut down.
    pub fn stats(&self) -> Result<EngineStats, EngineError> {
        let snapshots = self.query_all()?;
        Ok(EngineStats {
            streams: snapshots.len(),
            elements: snapshots.iter().map(|s| s.elements).sum(),
            drifts: snapshots.iter().map(|s| s.drifts).sum(),
        })
    }

    /// Serializes the state of every stream into an [`EngineSnapshot`], as
    /// a barrier: the snapshot reflects every record submitted by this
    /// thread before the call. Restore it with
    /// [`crate::EngineBuilder::restore`] — with **no factory needed** when
    /// every stream was registered through a [`DetectorSpec`] (the snapshot
    /// then embeds `{spec, state}` per stream; see
    /// [`EngineSnapshot::is_self_describing`]).
    ///
    /// All 8 shipped detector kinds (OPTWIN and every baseline) implement
    /// state serialization with bit-exact resumption.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::SnapshotUnsupported`] when a stream runs a
    /// *custom* detector that does not implement
    /// [`optwin_core::DriftDetector::snapshot_state`], or
    /// [`EngineError::ChannelClosed`] when the engine has shut down.
    pub fn snapshot(&self) -> Result<EngineSnapshot, EngineError> {
        let mut acks = Vec::with_capacity(self.senders.len());
        for sender in &self.senders {
            let (ack, response) = channel();
            sender
                .send(ShardMsg::Snapshot { ack })
                .map_err(|_| EngineError::ChannelClosed)?;
            acks.push(response);
        }
        let mut streams = Vec::new();
        for response in acks {
            streams.extend(response.recv().map_err(|_| EngineError::ChannelClosed)??);
        }
        streams.sort_unstable_by_key(|s| s.stream);
        Ok(EngineSnapshot {
            version: ENGINE_SNAPSHOT_VERSION,
            shards: self.senders.len(),
            emit_warnings: self.shared.config.emit_warnings,
            streams,
        })
    }

    /// Drains every queue, stops the workers and joins their threads. After
    /// this, every `submit`/`flush`/query on any clone fails with
    /// [`EngineError::ChannelClosed`]. Safe to call more than once (later
    /// calls are no-ops).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Poisoned`] when a worker thread panicked, or
    /// the first pending ingestion error (as [`EngineHandle::flush`]).
    pub fn shutdown(&self) -> Result<(), EngineError> {
        for sender in &self.senders {
            // A closed channel means the worker is already gone — fine.
            let _ = sender.send(ShardMsg::Shutdown);
        }
        let workers: Vec<JoinHandle<()>> = {
            let mut guard = self
                .shared
                .workers
                .lock()
                .map_err(|_| EngineError::Poisoned)?;
            guard.drain(..).collect()
        };
        let mut poisoned = false;
        for worker in workers {
            poisoned |= worker.join().is_err();
        }
        if poisoned {
            return Err(EngineError::Poisoned);
        }
        match self.take_error() {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }
}
