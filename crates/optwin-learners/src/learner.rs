//! The online-learner interface.

use optwin_stream::Instance;

/// An incrementally trainable classifier operating on
/// [`optwin_stream::Instance`]s.
///
/// The evaluation harness always uses learners prequentially: each instance
/// is first used for testing ([`OnlineLearner::predict`]) and then for
/// training ([`OnlineLearner::learn`]).
pub trait OnlineLearner {
    /// Predicts the class label of an instance (without learning from it).
    fn predict(&self, instance: &Instance) -> u32;

    /// Updates the model with a labelled instance.
    fn learn(&mut self, instance: &Instance);

    /// Forgets everything learned so far (the active drift-adaptation
    /// strategy of the paper: retrain from scratch after a drift).
    fn reset(&mut self);

    /// A short human-readable name.
    fn name(&self) -> &'static str;

    /// Per-class posterior scores (unnormalised is fine); the default
    /// implementation one-hot encodes the prediction. Learners that can do
    /// better (Naive Bayes, logistic regression, MLP) override this.
    fn predict_scores(&self, instance: &Instance) -> Vec<f64> {
        let mut scores = vec![0.0; self.n_classes()];
        let label = self.predict(instance) as usize;
        if label < scores.len() {
            scores[label] = 1.0;
        }
        scores
    }

    /// Number of classes this learner was configured for.
    fn n_classes(&self) -> usize;
}

/// Prequential 0/1 error of a single prediction (1.0 when wrong).
#[must_use]
pub fn zero_one_error(predicted: u32, actual: u32) -> f64 {
    if predicted == actual {
        0.0
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optwin_stream::Feature;

    struct AlwaysZero;
    impl OnlineLearner for AlwaysZero {
        fn predict(&self, _instance: &Instance) -> u32 {
            0
        }
        fn learn(&mut self, _instance: &Instance) {}
        fn reset(&mut self) {}
        fn name(&self) -> &'static str {
            "zero"
        }
        fn n_classes(&self) -> usize {
            3
        }
    }

    #[test]
    fn zero_one_error_values() {
        assert_eq!(zero_one_error(1, 1), 0.0);
        assert_eq!(zero_one_error(1, 2), 1.0);
    }

    #[test]
    fn default_scores_one_hot() {
        let learner = AlwaysZero;
        let inst = Instance::new(vec![Feature::Numeric(0.0)], 2);
        assert_eq!(learner.predict_scores(&inst), vec![1.0, 0.0, 0.0]);
    }
}
