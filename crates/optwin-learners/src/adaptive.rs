//! Active drift adaptation: learner + detector in a prequential loop.
//!
//! [`AdaptiveLearner`] implements the strategy evaluated in the paper's
//! Table 2: each instance is first used to test the learner; the 0/1 error is
//! fed to the drift detector; the learner then trains on the instance. When
//! the detector flags a drift the learner is reset, so it relearns the new
//! concept from scratch.

use optwin_core::{DriftDetector, DriftStatus};
use optwin_stream::{Instance, InstanceStream};

use crate::learner::{zero_one_error, OnlineLearner};

/// Summary of an adaptive prequential run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveReport {
    /// Number of instances processed.
    pub instances: usize,
    /// Prequential accuracy over the whole run.
    pub accuracy: f64,
    /// Indices at which the detector flagged drifts (and the learner was
    /// reset).
    pub detections: Vec<usize>,
    /// Number of warning signals observed.
    pub warnings: usize,
}

/// A learner wrapped with a drift detector implementing active adaptation.
#[derive(Debug)]
pub struct AdaptiveLearner<L, D> {
    learner: L,
    detector: D,
    instances: usize,
    correct: usize,
    detections: Vec<usize>,
    warnings: usize,
}

impl<L: OnlineLearner, D: DriftDetector> AdaptiveLearner<L, D> {
    /// Wraps a learner and a detector.
    #[must_use]
    pub fn new(learner: L, detector: D) -> Self {
        Self {
            learner,
            detector,
            instances: 0,
            correct: 0,
            detections: Vec::new(),
            warnings: 0,
        }
    }

    /// Access to the wrapped learner.
    #[must_use]
    pub fn learner(&self) -> &L {
        &self.learner
    }

    /// Access to the wrapped detector.
    #[must_use]
    pub fn detector(&self) -> &D {
        &self.detector
    }

    /// Prequential accuracy so far.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.instances == 0 {
            0.0
        } else {
            self.correct as f64 / self.instances as f64
        }
    }

    /// Indices at which drifts were flagged so far.
    #[must_use]
    pub fn detections(&self) -> &[usize] {
        &self.detections
    }

    /// Processes one instance: test, feed the detector, train, adapt.
    /// Returns the detector's verdict for this instance.
    pub fn process(&mut self, instance: &Instance) -> DriftStatus {
        let predicted = self.learner.predict(instance);
        let error = zero_one_error(predicted, instance.label);
        if error == 0.0 {
            self.correct += 1;
        }
        let status = self.detector.add_element(error);
        match status {
            DriftStatus::Drift => {
                self.detections.push(self.instances);
                self.learner.reset();
            }
            DriftStatus::Warning => {
                self.warnings += 1;
            }
            DriftStatus::Stable => {}
        }
        self.learner.learn(instance);
        self.instances += 1;
        status
    }

    /// Runs the adaptive loop over `n` instances drawn from `stream`.
    pub fn run<S: InstanceStream>(&mut self, stream: &mut S, n: usize) -> AdaptiveReport {
        for _ in 0..n {
            let instance = stream.next_instance();
            self.process(&instance);
        }
        self.report()
    }

    /// The report accumulated so far.
    #[must_use]
    pub fn report(&self) -> AdaptiveReport {
        AdaptiveReport {
            instances: self.instances,
            accuracy: self.accuracy(),
            detections: self.detections.clone(),
            warnings: self.warnings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_bayes::NaiveBayes;
    use optwin_baselines::Ddm;
    use optwin_core::{Optwin, OptwinConfig};
    use optwin_stream::drift::MultiConceptStream;
    use optwin_stream::generators::{Stagger, StaggerConcept};
    use optwin_stream::{DriftSchedule, InstanceStream};

    fn drifting_stagger(seed: u64) -> MultiConceptStream {
        let schedule = DriftSchedule::every(5_000, 20_000, 1);
        let concepts: Vec<Box<dyn InstanceStream + Send>> = vec![
            Box::new(Stagger::new(StaggerConcept::SizeSmallAndColorRed, seed)),
            Box::new(Stagger::new(
                StaggerConcept::ColorGreenOrShapeCircular,
                seed + 1,
            )),
            Box::new(Stagger::new(StaggerConcept::SizeMediumOrLarge, seed + 2)),
            Box::new(Stagger::new(StaggerConcept::SizeSmallAndColorRed, seed + 3)),
        ];
        MultiConceptStream::new(concepts, schedule, seed + 10)
    }

    #[test]
    fn adaptation_beats_no_adaptation_on_drifting_stream() {
        // With a detector: accuracy stays high because the NB model is reset
        // at every concept change. Without: the stale model drags accuracy
        // down. This is the qualitative effect behind Table 2.
        let mut stream_adaptive = drifting_stagger(1);
        let nb = NaiveBayes::new(&stream_adaptive.schema(), stream_adaptive.n_classes());
        let detector = Optwin::new(
            OptwinConfig::builder()
                .robustness(0.5)
                .max_window(2_000)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut adaptive = AdaptiveLearner::new(nb, detector);
        let report = adaptive.run(&mut stream_adaptive, 20_000);

        // A "never adapt" run: same learner, but a detector that never fires
        // is emulated by just not resetting (use DDM with absurd thresholds
        // via a plain prequential loop).
        let mut stream_static = drifting_stagger(1);
        let mut static_nb = NaiveBayes::new(&stream_static.schema(), stream_static.n_classes());
        let mut correct = 0;
        for _ in 0..20_000 {
            let inst = stream_static.next_instance();
            if static_nb.predict(&inst) == inst.label {
                correct += 1;
            }
            static_nb.learn(&inst);
        }
        let static_accuracy = correct as f64 / 20_000.0;

        assert!(
            report.accuracy > static_accuracy + 0.02,
            "adaptive {} vs static {}",
            report.accuracy,
            static_accuracy
        );
        assert!(
            !report.detections.is_empty(),
            "the detector should fire at least once on three concept changes"
        );
        assert_eq!(report.instances, 20_000);
    }

    #[test]
    fn detections_align_with_concept_changes() {
        let mut stream = drifting_stagger(3);
        let nb = NaiveBayes::new(&stream.schema(), stream.n_classes());
        let mut adaptive = AdaptiveLearner::new(nb, Ddm::with_defaults());
        let report = adaptive.run(&mut stream, 20_000);
        // At least one detection within 1 500 instances of each true drift
        // would be ideal; require it for at least two of the three drifts to
        // keep the test robust.
        let hits = [5_000usize, 10_000, 15_000]
            .iter()
            .filter(|&&pos| {
                report
                    .detections
                    .iter()
                    .any(|&d| d >= pos && d < pos + 1_500)
            })
            .count();
        assert!(hits >= 2, "detections: {:?}", report.detections);
    }

    #[test]
    fn accessors_and_empty_state() {
        let schema = [optwin_stream::FeatureKind::Numeric];
        let adaptive = AdaptiveLearner::new(NaiveBayes::new(&schema, 2), Ddm::with_defaults());
        assert_eq!(adaptive.accuracy(), 0.0);
        assert!(adaptive.detections().is_empty());
        assert_eq!(adaptive.learner().name(), "NaiveBayes");
        assert_eq!(adaptive.detector().name(), "DDM");
        let report = adaptive.report();
        assert_eq!(report.instances, 0);
        assert_eq!(report.warnings, 0);
    }
}
