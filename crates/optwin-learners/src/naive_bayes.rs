//! Mixed categorical/Gaussian Naive Bayes (the MOA classifier used in the
//! paper's Table 2 experiments).
//!
//! Categorical attributes use Laplace-smoothed frequency counts; numeric
//! attributes use per-class Gaussian likelihoods whose mean and variance are
//! maintained incrementally (Welford). All computations are done in log
//! space to avoid underflow.

use optwin_stats::incremental::RunningMoments;
use optwin_stream::{Feature, FeatureKind, Instance};

use crate::learner::OnlineLearner;

/// Per-class sufficient statistics for one attribute.
#[derive(Debug, Clone)]
enum AttributeStats {
    /// Laplace-smoothed value counts per class: `counts[class][value]`.
    Categorical { counts: Vec<Vec<f64>> },
    /// Gaussian moments per class.
    Numeric { moments: Vec<RunningMoments> },
}

/// Incremental Naive Bayes classifier.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    schema: Vec<FeatureKind>,
    n_classes: usize,
    class_counts: Vec<f64>,
    attributes: Vec<AttributeStats>,
    total: f64,
}

impl NaiveBayes {
    /// Variance floor used for the Gaussian likelihoods (prevents degenerate
    /// spikes when a class has seen a constant attribute value).
    const MIN_VARIANCE: f64 = 1e-6;

    /// Creates a classifier for the given attribute schema and class count.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes` is zero.
    #[must_use]
    pub fn new(schema: &[FeatureKind], n_classes: usize) -> Self {
        assert!(n_classes > 0, "NaiveBayes needs at least one class");
        let attributes = schema
            .iter()
            .map(|kind| match kind {
                FeatureKind::Categorical { arity } => AttributeStats::Categorical {
                    counts: vec![vec![0.0; *arity as usize]; n_classes],
                },
                FeatureKind::Numeric => AttributeStats::Numeric {
                    moments: vec![RunningMoments::new(); n_classes],
                },
            })
            .collect();
        Self {
            schema: schema.to_vec(),
            n_classes,
            class_counts: vec![0.0; n_classes],
            attributes,
            total: 0.0,
        }
    }

    /// Total number of training instances absorbed since the last reset.
    #[must_use]
    pub fn instances_seen(&self) -> f64 {
        self.total
    }

    fn log_likelihood(&self, class: usize, feature_idx: usize, feature: &Feature) -> f64 {
        match (&self.attributes[feature_idx], feature) {
            (AttributeStats::Categorical { counts }, Feature::Categorical(v)) => {
                let class_counts = &counts[class];
                let arity = class_counts.len() as f64;
                let v_idx = (*v as usize).min(class_counts.len().saturating_sub(1));
                let count = class_counts.get(v_idx).copied().unwrap_or(0.0);
                // Laplace smoothing.
                ((count + 1.0) / (self.class_counts[class] + arity)).ln()
            }
            (AttributeStats::Numeric { moments }, Feature::Numeric(x)) => {
                let m = &moments[class];
                if m.count() < 2 {
                    // Not enough data for a variance estimate: uninformative.
                    return 0.0;
                }
                let mean = m.mean();
                let var = m.sample_variance().max(Self::MIN_VARIANCE);
                let d = x - mean;
                -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + d * d / var)
            }
            // Schema mismatch (e.g. numeric value arriving for a categorical
            // slot): treat as uninformative rather than panicking.
            _ => 0.0,
        }
    }

    fn log_posteriors(&self, instance: &Instance) -> Vec<f64> {
        (0..self.n_classes)
            .map(|class| {
                // Laplace-smoothed class prior.
                let prior = (self.class_counts[class] + 1.0) / (self.total + self.n_classes as f64);
                let mut score = prior.ln();
                for (idx, feature) in instance.features.iter().enumerate() {
                    if idx >= self.attributes.len() {
                        break;
                    }
                    score += self.log_likelihood(class, idx, feature);
                }
                score
            })
            .collect()
    }
}

impl OnlineLearner for NaiveBayes {
    fn predict(&self, instance: &Instance) -> u32 {
        let scores = self.log_posteriors(instance);
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map_or(0, |(i, _)| i as u32)
    }

    fn learn(&mut self, instance: &Instance) {
        let class = (instance.label as usize).min(self.n_classes - 1);
        self.class_counts[class] += 1.0;
        self.total += 1.0;
        for (idx, feature) in instance.features.iter().enumerate() {
            if idx >= self.attributes.len() {
                break;
            }
            match (&mut self.attributes[idx], feature) {
                (AttributeStats::Categorical { counts }, Feature::Categorical(v)) => {
                    let class_counts = &mut counts[class];
                    let v_idx = (*v as usize).min(class_counts.len().saturating_sub(1));
                    if let Some(c) = class_counts.get_mut(v_idx) {
                        *c += 1.0;
                    }
                }
                (AttributeStats::Numeric { moments }, Feature::Numeric(x)) => {
                    moments[class].push(*x);
                }
                _ => {}
            }
        }
    }

    fn reset(&mut self) {
        *self = NaiveBayes::new(&self.schema, self.n_classes);
    }

    fn name(&self) -> &'static str {
        "NaiveBayes"
    }

    fn predict_scores(&self, instance: &Instance) -> Vec<f64> {
        self.log_posteriors(instance)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optwin_stream::generators::{
        Agrawal, AgrawalFunction, Sea, SeaConcept, Stagger, StaggerConcept,
    };
    use optwin_stream::InstanceStream;

    fn prequential_accuracy<S: InstanceStream, L: OnlineLearner>(
        stream: &mut S,
        learner: &mut L,
        n: usize,
    ) -> f64 {
        let mut correct = 0;
        for _ in 0..n {
            let inst = stream.next_instance();
            if learner.predict(&inst) == inst.label {
                correct += 1;
            }
            learner.learn(&inst);
        }
        correct as f64 / n as f64
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn rejects_zero_classes() {
        let _ = NaiveBayes::new(&[FeatureKind::Numeric], 0);
    }

    #[test]
    fn learns_stagger_nearly_perfectly() {
        let mut stream = Stagger::new(StaggerConcept::ColorGreenOrShapeCircular, 3);
        let mut nb = NaiveBayes::new(&stream.schema(), stream.n_classes());
        let acc = prequential_accuracy(&mut stream, &mut nb, 3_000);
        assert!(acc > 0.9, "accuracy = {acc}");
        assert!(nb.instances_seen() >= 2_999.0);
    }

    #[test]
    fn learns_sea_reasonably() {
        let mut stream = Sea::new(SeaConcept::Theta8, 3);
        let mut nb = NaiveBayes::new(&stream.schema(), stream.n_classes());
        let acc = prequential_accuracy(&mut stream, &mut nb, 5_000);
        assert!(acc > 0.8, "accuracy = {acc}");
    }

    #[test]
    fn beats_chance_on_agrawal() {
        let mut stream = Agrawal::new(AgrawalFunction::F2, 3);
        let mut nb = NaiveBayes::new(&stream.schema(), stream.n_classes());
        let acc = prequential_accuracy(&mut stream, &mut nb, 5_000);
        assert!(acc > 0.6, "accuracy = {acc}");
    }

    #[test]
    fn concept_switch_drops_accuracy_until_reset() {
        // Train on one STAGGER concept, then switch: accuracy collapses; a
        // reset restores learnability.
        let mut stream_a = Stagger::new(StaggerConcept::SizeSmallAndColorRed, 5);
        let mut nb = NaiveBayes::new(&stream_a.schema(), 2);
        let _ = prequential_accuracy(&mut stream_a, &mut nb, 3_000);

        let mut stream_b = Stagger::new(StaggerConcept::SizeMediumOrLarge, 6);
        // Measure accuracy on the new concept WITHOUT training (frozen model).
        let mut frozen_correct = 0;
        let test: Vec<_> = (0..1_000).map(|_| stream_b.next_instance()).collect();
        for inst in &test {
            if nb.predict(inst) == inst.label {
                frozen_correct += 1;
            }
        }
        let frozen_acc = frozen_correct as f64 / 1_000.0;
        assert!(frozen_acc < 0.75, "old model should struggle: {frozen_acc}");

        nb.reset();
        assert_eq!(nb.instances_seen(), 0.0);
        let acc_after_reset = prequential_accuracy(&mut stream_b, &mut nb, 3_000);
        assert!(acc_after_reset > 0.9, "accuracy = {acc_after_reset}");
    }

    #[test]
    fn scores_are_finite_and_ordered() {
        let mut stream = Sea::new(SeaConcept::Theta9, 9);
        let mut nb = NaiveBayes::new(&stream.schema(), 2);
        for _ in 0..200 {
            let inst = stream.next_instance();
            nb.learn(&inst);
        }
        let inst = stream.next_instance();
        let scores = nb.predict_scores(&inst);
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| s.is_finite()));
        let predicted = nb.predict(&inst) as usize;
        let best = if scores[0] >= scores[1] { 0 } else { 1 };
        assert_eq!(predicted, best);
        assert_eq!(nb.name(), "NaiveBayes");
        assert_eq!(nb.n_classes(), 2);
    }

    #[test]
    fn handles_unseen_categorical_values_gracefully() {
        use optwin_stream::Feature;
        let schema = [FeatureKind::Categorical { arity: 3 }];
        let mut nb = NaiveBayes::new(&schema, 2);
        nb.learn(&Instance::new(vec![Feature::Categorical(0)], 0));
        nb.learn(&Instance::new(vec![Feature::Categorical(1)], 1));
        // A category index beyond the declared arity is clamped, not a panic.
        let pred = nb.predict(&Instance::new(vec![Feature::Categorical(9)], 0));
        assert!(pred < 2);
    }
}
