//! # optwin-learners — online learners for the OPTWIN evaluation
//!
//! The paper's classification experiments (Table 2) train MOA's Naive Bayes
//! classifier prequentially and reset it whenever a drift detector fires; the
//! neural-network experiment (Figure 5) monitors the loss of a pre-trained
//! network whose labels are swapped to inject drifts. This crate provides the
//! learner substrate for both:
//!
//! * [`NaiveBayes`] — mixed categorical/Gaussian Naive Bayes, resettable, the
//!   work-horse of the Table 2 experiments.
//! * [`MajorityClass`] — trivial baseline learner.
//! * [`LogisticRegression`] — multiclass SGD softmax regression (extension).
//! * [`Mlp`] — a small one-hidden-layer neural network trained by SGD; the
//!   CNN stand-in used by the Figure 5 reproduction.
//! * [`AdaptiveLearner`] — wraps any learner with any
//!   [`optwin_core::DriftDetector`] and implements the active
//!   drift-adaptation loop (prequential test-then-train, reset on drift).
//!
//! ```
//! use optwin_learners::{NaiveBayes, OnlineLearner};
//! use optwin_stream::generators::{Stagger, StaggerConcept};
//! use optwin_stream::InstanceStream;
//!
//! let mut stream = Stagger::new(StaggerConcept::SizeSmallAndColorRed, 1);
//! let mut nb = NaiveBayes::new(&stream.schema(), stream.n_classes());
//! let mut correct = 0;
//! for _ in 0..2_000 {
//!     let inst = stream.next_instance();
//!     if nb.predict(&inst) == inst.label {
//!         correct += 1;
//!     }
//!     nb.learn(&inst);
//! }
//! assert!(correct > 1_700, "Naive Bayes should master STAGGER quickly");
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod adaptive;
pub mod learner;
pub mod logistic;
pub mod majority;
pub mod mlp;
pub mod naive_bayes;

pub use adaptive::{AdaptiveLearner, AdaptiveReport};
pub use learner::OnlineLearner;
pub use logistic::LogisticRegression;
pub use majority::MajorityClass;
pub use mlp::{Mlp, MlpConfig, PrototypeTask};
pub use naive_bayes::NaiveBayes;
