//! A small one-hidden-layer neural network trained by SGD.
//!
//! This is the CNN stand-in used by the Figure 5 reproduction (see DESIGN.md
//! §3): the detectors only observe the per-batch loss of the network, so what
//! matters is that the network (a) can be pre-trained to a low loss on a
//! multi-class task, (b) produces a sharply higher loss when class labels are
//! swapped (the drift-injection mechanism of the paper), and (c) recovers
//! while being fine-tuned. A 64-unit MLP over Gaussian class prototypes
//! reproduces exactly those dynamics at a fraction of the cost of training a
//! CNN on CIFAR-10.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use optwin_stream::{Feature, Instance};

use crate::learner::OnlineLearner;

/// Configuration for [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpConfig {
    /// Input dimensionality.
    pub n_inputs: usize,
    /// Hidden-layer width.
    pub n_hidden: usize,
    /// Number of output classes.
    pub n_classes: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Seed for the weight initialisation.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            n_inputs: 64,
            n_hidden: 64,
            n_classes: 10,
            learning_rate: 0.05,
            seed: 7,
        }
    }
}

/// One-hidden-layer multilayer perceptron with ReLU activations and a softmax
/// output, trained with plain SGD on the cross-entropy loss.
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    /// `w1[h][i]`, `b1[h]`.
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    /// `w2[c][h]`, `b2[c]`.
    w2: Vec<Vec<f64>>,
    b2: Vec<f64>,
}

impl Mlp {
    /// Creates a network with small random initial weights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the learning rate is not positive.
    #[must_use]
    pub fn new(config: MlpConfig) -> Self {
        assert!(config.n_inputs > 0 && config.n_hidden > 0 && config.n_classes > 0);
        assert!(config.learning_rate > 0.0, "learning rate must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let scale1 = (2.0 / config.n_inputs as f64).sqrt();
        let scale2 = (2.0 / config.n_hidden as f64).sqrt();
        let w1 = (0..config.n_hidden)
            .map(|_| {
                (0..config.n_inputs)
                    .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * scale1)
                    .collect()
            })
            .collect();
        let w2 = (0..config.n_classes)
            .map(|_| {
                (0..config.n_hidden)
                    .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * scale2)
                    .collect()
            })
            .collect();
        Self {
            b1: vec![0.0; config.n_hidden],
            b2: vec![0.0; config.n_classes],
            config,
            w1,
            w2,
        }
    }

    /// The configuration this network was built with.
    #[must_use]
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let hidden: Vec<f64> = self
            .w1
            .iter()
            .zip(&self.b1)
            .map(|(w, b)| {
                let z: f64 = w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + b;
                z.max(0.0)
            })
            .collect();
        let logits: Vec<f64> = self
            .w2
            .iter()
            .zip(&self.b2)
            .map(|(w, b)| w.iter().zip(&hidden).map(|(wi, hi)| wi * hi).sum::<f64>() + b)
            .collect();
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
        let total: f64 = exps.iter().sum();
        let probs = exps.into_iter().map(|e| e / total.max(1e-300)).collect();
        (hidden, probs)
    }

    /// Extracts the numeric feature vector of an instance, padding or
    /// truncating to the configured input size.
    fn features_of(&self, instance: &Instance) -> Vec<f64> {
        let mut x = vec![0.0; self.config.n_inputs];
        for (slot, feature) in x.iter_mut().zip(&instance.features) {
            *slot = feature.to_f64();
        }
        x
    }

    /// Cross-entropy loss of a single instance under the current weights.
    #[must_use]
    pub fn loss(&self, instance: &Instance) -> f64 {
        let x = self.features_of(instance);
        let (_, probs) = self.forward(&x);
        let label = (instance.label as usize).min(self.config.n_classes - 1);
        -(probs[label].max(1e-12)).ln()
    }

    /// Mean cross-entropy loss over a batch of instances (the quantity the
    /// Figure 5 pipeline feeds to the drift detectors).
    #[must_use]
    pub fn batch_loss(&self, batch: &[Instance]) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        batch.iter().map(|i| self.loss(i)).sum::<f64>() / batch.len() as f64
    }

    /// One SGD step on a single instance; returns the pre-update loss.
    pub fn train_instance(&mut self, instance: &Instance) -> f64 {
        let x = self.features_of(instance);
        let (hidden, probs) = self.forward(&x);
        let label = (instance.label as usize).min(self.config.n_classes - 1);
        let loss = -(probs[label].max(1e-12)).ln();
        let lr = self.config.learning_rate;

        // Output-layer gradients: dL/dlogit_c = p_c − 1{c = label}.
        let dlogits: Vec<f64> = probs
            .iter()
            .enumerate()
            .map(|(c, p)| p - f64::from(c == label))
            .collect();
        // Hidden-layer gradient accumulation before the weights change.
        let mut dhidden = vec![0.0; self.config.n_hidden];
        for (c, dl) in dlogits.iter().enumerate() {
            for (h, dh) in dhidden.iter_mut().enumerate() {
                *dh += dl * self.w2[c][h];
            }
        }
        // Update output layer.
        for (c, dl) in dlogits.iter().enumerate() {
            for (h, hv) in hidden.iter().enumerate() {
                self.w2[c][h] -= lr * dl * hv;
            }
            self.b2[c] -= lr * dl;
        }
        // Update hidden layer (ReLU derivative).
        for (h, dh) in dhidden.iter().enumerate() {
            if hidden[h] <= 0.0 {
                continue;
            }
            for (i, xi) in x.iter().enumerate() {
                self.w1[h][i] -= lr * dh * xi;
            }
            self.b1[h] -= lr * dh;
        }
        loss
    }

    /// Trains on a batch (one SGD step per instance) and returns the mean
    /// pre-update loss.
    pub fn train_batch(&mut self, batch: &[Instance]) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        batch.iter().map(|i| self.train_instance(i)).sum::<f64>() / batch.len() as f64
    }
}

impl OnlineLearner for Mlp {
    fn predict(&self, instance: &Instance) -> u32 {
        let x = self.features_of(instance);
        let (_, probs) = self.forward(&x);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map_or(0, |(i, _)| i as u32)
    }

    fn learn(&mut self, instance: &Instance) {
        let _ = self.train_instance(instance);
    }

    fn reset(&mut self) {
        *self = Mlp::new(self.config);
    }

    fn name(&self) -> &'static str {
        "MLP"
    }

    fn predict_scores(&self, instance: &Instance) -> Vec<f64> {
        let x = self.features_of(instance);
        self.forward(&x).1
    }

    fn n_classes(&self) -> usize {
        self.config.n_classes
    }
}

/// Synthetic "prototype image" classification task used by the Figure 5
/// pipeline: each class is a Gaussian blob around a fixed random prototype in
/// `n_inputs` dimensions (a stand-in for CIFAR-10 image classes).
#[derive(Debug, Clone)]
pub struct PrototypeTask {
    prototypes: Vec<Vec<f64>>,
    noise: f64,
    rng: StdRng,
    /// Current label permutation (label swapping injects concept drifts).
    label_map: Vec<u32>,
}

impl PrototypeTask {
    /// Creates a task with `n_classes` prototypes in `n_inputs` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes` or `n_inputs` is zero, or `noise` is negative.
    #[must_use]
    pub fn new(n_classes: usize, n_inputs: usize, noise: f64, seed: u64) -> Self {
        assert!(n_classes > 0 && n_inputs > 0);
        assert!(noise >= 0.0, "noise must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed);
        let prototypes = (0..n_classes)
            .map(|_| (0..n_inputs).map(|_| rng.gen::<f64>()).collect())
            .collect();
        Self {
            prototypes,
            noise,
            rng,
            label_map: (0..n_classes as u32).collect(),
        }
    }

    /// Swaps the labels of two classes — the drift-injection mechanism of the
    /// Figure 5 experiment ("after 62 480 iterations we swapped the labels
    /// between images from cats to horses").
    ///
    /// # Panics
    ///
    /// Panics if either class index is out of range.
    pub fn swap_labels(&mut self, class_a: usize, class_b: usize) {
        assert!(class_a < self.label_map.len() && class_b < self.label_map.len());
        self.label_map.swap(class_a, class_b);
    }

    /// Draws one labelled instance.
    pub fn sample(&mut self) -> Instance {
        let class = self.rng.gen_range(0..self.prototypes.len());
        let features: Vec<Feature> = self.prototypes[class]
            .clone()
            .into_iter()
            .map(|p| {
                let u1: f64 = self.rng.gen_range(1e-12..1.0);
                let u2: f64 = self.rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                Feature::Numeric(p + self.noise * z)
            })
            .collect();
        Instance::new(features, self.label_map[class])
    }

    /// Draws a batch of instances.
    pub fn sample_batch(&mut self, size: usize) -> Vec<Instance> {
        (0..size).map(|_| self.sample()).collect()
    }

    /// Number of classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.prototypes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_task() -> PrototypeTask {
        PrototypeTask::new(10, 32, 0.15, 3)
    }

    fn small_mlp() -> Mlp {
        Mlp::new(MlpConfig {
            n_inputs: 32,
            n_hidden: 32,
            n_classes: 10,
            learning_rate: 0.05,
            seed: 5,
        })
    }

    #[test]
    fn training_reduces_loss() {
        let mut task = small_task();
        let mut mlp = small_mlp();
        let initial = mlp.batch_loss(&task.sample_batch(128));
        for _ in 0..200 {
            let batch = task.sample_batch(32);
            mlp.train_batch(&batch);
        }
        let trained = mlp.batch_loss(&task.sample_batch(128));
        assert!(
            trained < initial * 0.5,
            "loss did not drop: {initial} -> {trained}"
        );
    }

    #[test]
    fn trained_network_classifies_well() {
        let mut task = small_task();
        let mut mlp = small_mlp();
        for _ in 0..400 {
            let batch = task.sample_batch(32);
            mlp.train_batch(&batch);
        }
        let test = task.sample_batch(500);
        let correct = test.iter().filter(|i| mlp.predict(i) == i.label).count();
        assert!(correct > 400, "accuracy too low: {correct}/500");
    }

    #[test]
    fn label_swap_increases_loss_sharply() {
        let mut task = small_task();
        let mut mlp = small_mlp();
        for _ in 0..300 {
            let batch = task.sample_batch(32);
            mlp.train_batch(&batch);
        }
        let before = mlp.batch_loss(&task.sample_batch(256));
        task.swap_labels(0, 1);
        let after = mlp.batch_loss(&task.sample_batch(256));
        assert!(
            after > before * 1.5,
            "label swap should raise the loss: {before} -> {after}"
        );
        // Fine-tuning on the swapped task recovers.
        for _ in 0..300 {
            let batch = task.sample_batch(32);
            mlp.train_batch(&batch);
        }
        let recovered = mlp.batch_loss(&task.sample_batch(256));
        assert!(
            recovered < after * 0.7,
            "fine-tuning should recover: {after} -> {recovered}"
        );
    }

    #[test]
    fn learner_trait_implementation() {
        let mut task = small_task();
        let mut mlp = small_mlp();
        let inst = task.sample();
        let scores = mlp.predict_scores(&inst);
        assert_eq!(scores.len(), 10);
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        mlp.learn(&inst);
        mlp.reset();
        assert_eq!(mlp.name(), "MLP");
        assert_eq!(mlp.n_classes(), 10);
        assert_eq!(mlp.config().n_hidden, 32);
    }

    #[test]
    fn batch_helpers_handle_empty_input() {
        let mut mlp = small_mlp();
        assert_eq!(mlp.batch_loss(&[]), 0.0);
        assert_eq!(mlp.train_batch(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_bad_learning_rate() {
        let _ = Mlp::new(MlpConfig {
            learning_rate: 0.0,
            ..MlpConfig::default()
        });
    }

    #[test]
    #[should_panic]
    fn swap_labels_rejects_out_of_range() {
        let mut task = small_task();
        task.swap_labels(0, 99);
    }
}
