//! Majority-class baseline learner.
//!
//! Predicts whichever class has been most frequent so far; the paper's
//! "No drift detector" rows in Table 2 are close to what this baseline
//! achieves on heavily imbalanced streams, so it serves as a sanity floor in
//! the experiments.

use optwin_stream::Instance;

use crate::learner::OnlineLearner;

/// The majority-class classifier.
#[derive(Debug, Clone)]
pub struct MajorityClass {
    counts: Vec<u64>,
}

impl MajorityClass {
    /// Creates a classifier for `n_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes` is zero.
    #[must_use]
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes > 0, "MajorityClass needs at least one class");
        Self {
            counts: vec![0; n_classes],
        }
    }

    /// The class counts accumulated so far.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

impl OnlineLearner for MajorityClass {
    fn predict(&self, _instance: &Instance) -> u32 {
        // Ties resolve to the smallest class index so predictions are
        // deterministic (relevant right after a reset).
        let mut best = 0usize;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        best as u32
    }

    fn learn(&mut self, instance: &Instance) {
        let idx = (instance.label as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    fn reset(&mut self) {
        for c in &mut self.counts {
            *c = 0;
        }
    }

    fn name(&self) -> &'static str {
        "MajorityClass"
    }

    fn n_classes(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optwin_stream::Feature;

    fn inst(label: u32) -> Instance {
        Instance::new(vec![Feature::Numeric(0.0)], label)
    }

    #[test]
    fn predicts_most_frequent_class() {
        let mut m = MajorityClass::new(3);
        for _ in 0..5 {
            m.learn(&inst(2));
        }
        for _ in 0..3 {
            m.learn(&inst(1));
        }
        assert_eq!(m.predict(&inst(0)), 2);
        assert_eq!(m.counts(), &[0, 3, 5]);
    }

    #[test]
    fn reset_clears_counts() {
        let mut m = MajorityClass::new(2);
        m.learn(&inst(1));
        m.reset();
        assert_eq!(m.counts(), &[0, 0]);
        assert_eq!(m.predict(&inst(0)), 0);
        assert_eq!(m.name(), "MajorityClass");
        assert_eq!(m.n_classes(), 2);
    }

    #[test]
    fn out_of_range_label_is_clamped() {
        let mut m = MajorityClass::new(2);
        m.learn(&inst(9));
        assert_eq!(m.counts(), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn rejects_zero_classes() {
        let _ = MajorityClass::new(0);
    }
}
