//! Multiclass logistic (softmax) regression trained by SGD — extension
//! learner used in ablation experiments and examples.
//!
//! Categorical attributes are one-hot encoded; numeric attributes are used
//! as-is (the synthetic streams keep them in reasonable ranges).

use optwin_stream::{FeatureKind, Instance};

use crate::learner::OnlineLearner;

/// Online multiclass logistic regression.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    schema: Vec<FeatureKind>,
    n_classes: usize,
    /// Weights: `weights[class][encoded_feature]`, last slot is the bias.
    weights: Vec<Vec<f64>>,
    learning_rate: f64,
    l2: f64,
    encoded_dim: usize,
}

impl LogisticRegression {
    /// Creates a model for the given schema and class count.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes` is zero or `learning_rate` is not positive.
    #[must_use]
    pub fn new(schema: &[FeatureKind], n_classes: usize, learning_rate: f64) -> Self {
        assert!(n_classes > 0, "LogisticRegression needs at least one class");
        assert!(learning_rate > 0.0, "learning rate must be positive");
        let encoded_dim: usize = schema
            .iter()
            .map(|k| match k {
                FeatureKind::Numeric => 1,
                FeatureKind::Categorical { arity } => *arity as usize,
            })
            .sum();
        Self {
            schema: schema.to_vec(),
            n_classes,
            weights: vec![vec![0.0; encoded_dim + 1]; n_classes],
            learning_rate,
            l2: 1e-5,
            encoded_dim,
        }
    }

    /// One-hot / passthrough encoding of an instance.
    fn encode(&self, instance: &Instance) -> Vec<f64> {
        let mut x = vec![0.0; self.encoded_dim + 1];
        let mut offset = 0usize;
        for (kind, feature) in self.schema.iter().zip(&instance.features) {
            match kind {
                FeatureKind::Numeric => {
                    x[offset] = feature.to_f64();
                    offset += 1;
                }
                FeatureKind::Categorical { arity } => {
                    if let Some(v) = feature.as_categorical() {
                        let idx = (v as usize).min(*arity as usize - 1);
                        x[offset + idx] = 1.0;
                    }
                    offset += *arity as usize;
                }
            }
        }
        // Bias term.
        x[self.encoded_dim] = 1.0;
        x
    }

    fn softmax_scores(&self, x: &[f64]) -> Vec<f64> {
        let logits: Vec<f64> = self
            .weights
            .iter()
            .map(|w| w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>())
            .collect();
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
        let total: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / total.max(1e-300)).collect()
    }
}

impl OnlineLearner for LogisticRegression {
    fn predict(&self, instance: &Instance) -> u32 {
        let x = self.encode(instance);
        let scores = self.softmax_scores(&x);
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map_or(0, |(i, _)| i as u32)
    }

    fn learn(&mut self, instance: &Instance) {
        let x = self.encode(instance);
        let probs = self.softmax_scores(&x);
        let label = (instance.label as usize).min(self.n_classes - 1);
        for (class, w) in self.weights.iter_mut().enumerate() {
            let target = if class == label { 1.0 } else { 0.0 };
            let gradient = probs[class] - target;
            for (wi, xi) in w.iter_mut().zip(&x) {
                *wi -= self.learning_rate * (gradient * xi + self.l2 * *wi);
            }
        }
    }

    fn reset(&mut self) {
        for w in &mut self.weights {
            for wi in w.iter_mut() {
                *wi = 0.0;
            }
        }
    }

    fn name(&self) -> &'static str {
        "LogisticRegression"
    }

    fn predict_scores(&self, instance: &Instance) -> Vec<f64> {
        let x = self.encode(instance);
        self.softmax_scores(&x)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optwin_stream::generators::{Sine, SineConcept, Stagger, StaggerConcept};
    use optwin_stream::InstanceStream;

    fn prequential_accuracy<S: InstanceStream, L: OnlineLearner>(
        stream: &mut S,
        learner: &mut L,
        n: usize,
    ) -> f64 {
        let mut correct = 0;
        for _ in 0..n {
            let inst = stream.next_instance();
            if learner.predict(&inst) == inst.label {
                correct += 1;
            }
            learner.learn(&inst);
        }
        correct as f64 / n as f64
    }

    #[test]
    fn learns_linearly_separable_stagger() {
        let mut stream = Stagger::new(StaggerConcept::SizeMediumOrLarge, 1);
        let mut lr = LogisticRegression::new(&stream.schema(), 2, 0.1);
        let acc = prequential_accuracy(&mut stream, &mut lr, 4_000);
        assert!(acc > 0.9, "accuracy = {acc}");
    }

    #[test]
    fn beats_chance_on_sine() {
        let mut stream = Sine::new(SineConcept::Sine1, 1);
        let mut lr = LogisticRegression::new(&stream.schema(), 2, 0.2);
        let acc = prequential_accuracy(&mut stream, &mut lr, 5_000);
        assert!(acc > 0.6, "accuracy = {acc}");
    }

    #[test]
    fn scores_sum_to_one() {
        let mut stream = Stagger::new(StaggerConcept::SizeSmallAndColorRed, 2);
        let mut lr = LogisticRegression::new(&stream.schema(), 2, 0.1);
        for _ in 0..100 {
            let inst = stream.next_instance();
            lr.learn(&inst);
        }
        let scores = lr.predict_scores(&stream.next_instance());
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn reset_zeroes_weights() {
        let mut stream = Stagger::new(StaggerConcept::SizeSmallAndColorRed, 2);
        let mut lr = LogisticRegression::new(&stream.schema(), 2, 0.1);
        for _ in 0..100 {
            let inst = stream.next_instance();
            lr.learn(&inst);
        }
        lr.reset();
        assert!(lr.weights.iter().all(|w| w.iter().all(|&x| x == 0.0)));
        assert_eq!(lr.name(), "LogisticRegression");
        assert_eq!(lr.n_classes(), 2);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_bad_learning_rate() {
        let _ = LogisticRegression::new(&[FeatureKind::Numeric], 2, 0.0);
    }
}
