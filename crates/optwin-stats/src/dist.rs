//! Probability distributions with `pdf` / `cdf` / `ppf`.
//!
//! OPTWIN's optimal-cut computation needs the probability point functions
//! (inverse CDFs) of the Student's *t*- and Fisher *F*-distributions; the
//! baselines additionally use the normal distribution (STEPD's two-proportion
//! z-test, ECDD's EWMA chart, the Wilcoxon normal approximation). Everything
//! is evaluated through the regularized incomplete gamma/beta functions of
//! [`crate::special`], so the quantile accuracy is inherited from their
//! inverses (absolute error well below `1e-8` across the parameter ranges
//! exercised by the workspace).

use crate::special::{
    erfc, inv_reg_inc_beta, inv_reg_lower_gamma, ln_beta, ln_gamma, reg_inc_beta, reg_lower_gamma,
};
use crate::{Result, StatsError};

/// Checks that `p` is a valid interior probability for a quantile lookup.
fn check_probability(p: f64) -> Result<()> {
    if !(p > 0.0 && p < 1.0 && p.is_finite()) {
        return Err(StatsError::InvalidProbability { value: p });
    }
    Ok(())
}

/// Common interface of the continuous distributions in this module.
pub trait ContinuousDistribution {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Probability point function (inverse CDF): the `x` with `cdf(x) = p`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidProbability`] when `p` is not strictly
    /// inside `(0, 1)`, or a convergence error from the underlying special
    /// function inversion (practically unreachable).
    fn ppf(&self, p: f64) -> Result<f64>;
}

// ---------------------------------------------------------------------------
// Normal
// ---------------------------------------------------------------------------

/// Normal (Gaussian) distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `std` is not positive and
    /// finite.
    pub fn new(mean: f64, std: f64) -> Result<Self> {
        if !(std > 0.0) || !std.is_finite() || !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "std",
                value: std,
                constraint: "standard deviation must be positive and finite",
            });
        }
        Ok(Self { mean, std })
    }

    /// The standard normal `N(0, 1)`.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            mean: 0.0,
            std: 1.0,
        }
    }

    /// Standard normal CDF `Φ(z)` — the form the baselines call directly.
    #[must_use]
    pub fn std_cdf(z: f64) -> f64 {
        0.5 * erfc(-z / std::f64::consts::SQRT_2)
    }

    /// Standard normal quantile `Φ⁻¹(p)`.
    ///
    /// Acklam's rational approximation (|relative error| < 1.15e-9) refined
    /// with one Halley step against [`Normal::std_cdf`], giving accuracy at
    /// the limit of double precision.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidProbability`] unless `0 < p < 1`.
    pub fn std_ppf(p: f64) -> Result<f64> {
        check_probability(p)?;

        const A: [f64; 6] = [
            -3.969683028665376e+01,
            2.209460984245205e+02,
            -2.759285104469687e+02,
            1.383_577_518_672_69e2,
            -3.066479806614716e+01,
            2.506628277459239e+00,
        ];
        const B: [f64; 5] = [
            -5.447609879822406e+01,
            1.615858368580409e+02,
            -1.556989798598866e+02,
            6.680131188771972e+01,
            -1.328068155288572e+01,
        ];
        const C: [f64; 6] = [
            -7.784894002430293e-03,
            -3.223964580411365e-01,
            -2.400758277161838e+00,
            -2.549732539343734e+00,
            4.374664141464968e+00,
            2.938163982698783e+00,
        ];
        const D: [f64; 4] = [
            7.784695709041462e-03,
            3.224671290700398e-01,
            2.445134137142996e+00,
            3.754408661907416e+00,
        ];
        const P_LOW: f64 = 0.02425;

        let x = if p < P_LOW {
            let q = (-2.0 * p.ln()).sqrt();
            (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        } else if p <= 1.0 - P_LOW {
            let q = p - 0.5;
            let r = q * q;
            (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
                / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
        } else {
            let q = (-2.0 * (1.0 - p).ln()).sqrt();
            -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        };

        // One Halley refinement step against the high-accuracy CDF.
        let e = Self::std_cdf(x) - p;
        let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
        Ok(x - u / (1.0 + x * u / 2.0))
    }

    /// The mean parameter.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard-deviation parameter.
    #[must_use]
    pub fn std(&self) -> f64 {
        self.std
    }
}

impl ContinuousDistribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        (-0.5 * z * z).exp() / (self.std * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        Self::std_cdf((x - self.mean) / self.std)
    }

    fn ppf(&self, p: f64) -> Result<f64> {
        Ok(self.mean + self.std * Self::std_ppf(p)?)
    }
}

// ---------------------------------------------------------------------------
// Student's t
// ---------------------------------------------------------------------------

/// Student's *t*-distribution with `df` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentsT {
    df: f64,
}

impl StudentsT {
    /// Creates a *t*-distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `df` is positive and
    /// finite.
    pub fn new(df: f64) -> Result<Self> {
        if !(df > 0.0) || !df.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "df",
                value: df,
                constraint: "degrees of freedom must be positive and finite",
            });
        }
        Ok(Self { df })
    }

    /// The degrees of freedom.
    #[must_use]
    pub fn df(&self) -> f64 {
        self.df
    }

    /// Two-sided p-value `P(|T| >= |t|)`.
    #[must_use]
    pub fn two_sided_p_value(&self, t: f64) -> f64 {
        if t == 0.0 {
            return 1.0;
        }
        // P(|T| >= |t|) = I_{df/(df + t²)}(df/2, 1/2).
        let x = self.df / (self.df + t * t);
        reg_inc_beta(self.df / 2.0, 0.5, x)
            .unwrap_or(f64::NAN)
            .clamp(0.0, 1.0)
    }
}

impl ContinuousDistribution for StudentsT {
    fn pdf(&self, x: f64) -> f64 {
        let df = self.df;
        let ln_norm = ln_gamma((df + 1.0) / 2.0)
            - ln_gamma(df / 2.0)
            - 0.5 * (df * std::f64::consts::PI).ln();
        (ln_norm - 0.5 * (df + 1.0) * (1.0 + x * x / df).ln()).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        let tail = 0.5 * self.two_sided_p_value(x);
        if x >= 0.0 {
            1.0 - tail
        } else {
            tail
        }
    }

    fn ppf(&self, p: f64) -> Result<f64> {
        check_probability(p)?;
        if (p - 0.5).abs() < 1e-16 {
            return Ok(0.0);
        }
        // Invert the two-sided tail: for p > 0.5 the upper tail mass is
        // 2(1 − p) and x = df/(df + t²) follows from the incomplete-beta
        // representation above.
        let tail = 2.0 * if p > 0.5 { 1.0 - p } else { p };
        let x = inv_reg_inc_beta(self.df / 2.0, 0.5, tail)?;
        let t = (self.df * (1.0 - x) / x.max(f64::MIN_POSITIVE)).sqrt();
        Ok(if p > 0.5 { t } else { -t })
    }
}

// ---------------------------------------------------------------------------
// Fisher F
// ---------------------------------------------------------------------------

/// Fisher–Snedecor *F*-distribution with `(df1, df2)` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FisherF {
    df1: f64,
    df2: f64,
}

impl FisherF {
    /// Creates an *F*-distribution with numerator (`df1`) and denominator
    /// (`df2`) degrees of freedom.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both are positive and
    /// finite.
    pub fn new(df1: f64, df2: f64) -> Result<Self> {
        for (name, value) in [("df1", df1), ("df2", df2)] {
            if !(value > 0.0) || !value.is_finite() {
                return Err(StatsError::InvalidParameter {
                    name,
                    value,
                    constraint: "degrees of freedom must be positive and finite",
                });
            }
        }
        Ok(Self { df1, df2 })
    }

    /// Numerator degrees of freedom.
    #[must_use]
    pub fn df1(&self) -> f64 {
        self.df1
    }

    /// Denominator degrees of freedom.
    #[must_use]
    pub fn df2(&self) -> f64 {
        self.df2
    }

    /// Upper-tail p-value `P(F >= f)`.
    #[must_use]
    pub fn upper_tail_p_value(&self, f: f64) -> f64 {
        if f <= 0.0 {
            return 1.0;
        }
        // 1 − cdf(f) computed through the complementary beta argument to
        // avoid cancellation for large f.
        let x = self.df2 / (self.df2 + self.df1 * f);
        reg_inc_beta(self.df2 / 2.0, self.df1 / 2.0, x)
            .unwrap_or(f64::NAN)
            .clamp(0.0, 1.0)
    }
}

impl ContinuousDistribution for FisherF {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let (d1, d2) = (self.df1, self.df2);
        let ln_pdf = 0.5 * (d1 * (d1 * x).ln() + d2 * d2.ln() - (d1 + d2) * (d1 * x + d2).ln())
            - x.ln()
            - ln_beta(d1 / 2.0, d2 / 2.0);
        ln_pdf.exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let arg = self.df1 * x / (self.df1 * x + self.df2);
        reg_inc_beta(self.df1 / 2.0, self.df2 / 2.0, arg)
            .unwrap_or(f64::NAN)
            .clamp(0.0, 1.0)
    }

    fn ppf(&self, p: f64) -> Result<f64> {
        check_probability(p)?;
        let y = inv_reg_inc_beta(self.df1 / 2.0, self.df2 / 2.0, p)?;
        if y >= 1.0 {
            return Ok(f64::INFINITY);
        }
        Ok(self.df2 * y / (self.df1 * (1.0 - y)))
    }
}

// ---------------------------------------------------------------------------
// Chi-squared
// ---------------------------------------------------------------------------

/// Chi-squared distribution with `df` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    df: f64,
}

impl ChiSquared {
    /// Creates a chi-squared distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `df` is positive and
    /// finite.
    pub fn new(df: f64) -> Result<Self> {
        if !(df > 0.0) || !df.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "df",
                value: df,
                constraint: "degrees of freedom must be positive and finite",
            });
        }
        Ok(Self { df })
    }

    /// The degrees of freedom.
    #[must_use]
    pub fn df(&self) -> f64 {
        self.df
    }
}

impl ContinuousDistribution for ChiSquared {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let k = self.df / 2.0;
        ((k - 1.0) * x.ln() - x / 2.0 - k * 2.0_f64.ln() - ln_gamma(k)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        reg_lower_gamma(self.df / 2.0, x / 2.0).unwrap_or(f64::NAN)
    }

    fn ppf(&self, p: f64) -> Result<f64> {
        check_probability(p)?;
        Ok(2.0 * inv_reg_lower_gamma(self.df / 2.0, p)?)
    }
}

// ---------------------------------------------------------------------------
// Beta
// ---------------------------------------------------------------------------

/// Beta distribution with shape parameters `(alpha, beta)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    alpha: f64,
    beta: f64,
}

impl Beta {
    /// Creates a beta distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both shapes are
    /// positive and finite.
    pub fn new(alpha: f64, beta: f64) -> Result<Self> {
        for (name, value) in [("alpha", alpha), ("beta", beta)] {
            if !(value > 0.0) || !value.is_finite() {
                return Err(StatsError::InvalidParameter {
                    name,
                    value,
                    constraint: "shape parameter must be positive and finite",
                });
            }
        }
        Ok(Self { alpha, beta })
    }
}

impl ContinuousDistribution for Beta {
    fn pdf(&self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return 0.0;
        }
        if x == 0.0 || x == 1.0 {
            // Density endpoints: finite only for shape parameters >= 1.
            return match (self.alpha, self.beta) {
                (a, _) if x == 0.0 && a < 1.0 => f64::INFINITY,
                (_, b) if x == 1.0 && b < 1.0 => f64::INFINITY,
                _ => 0.0,
            };
        }
        ((self.alpha - 1.0) * x.ln() + (self.beta - 1.0) * (1.0 - x).ln()
            - ln_beta(self.alpha, self.beta))
        .exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else if x >= 1.0 {
            1.0
        } else {
            reg_inc_beta(self.alpha, self.beta, x).unwrap_or(f64::NAN)
        }
    }

    fn ppf(&self, p: f64) -> Result<f64> {
        check_probability(p)?;
        inv_reg_inc_beta(self.alpha, self.beta, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published reference quantiles (R / scipy, 4+ significant digits).
    #[test]
    fn students_t_reference_quantiles() {
        let t10 = StudentsT::new(10.0).unwrap();
        assert!((t10.ppf(0.975).unwrap() - 2.2281).abs() < 1e-3);
        assert!((t10.ppf(0.95).unwrap() - 1.8125).abs() < 1e-3);
        let t1 = StudentsT::new(1.0).unwrap();
        assert!((t1.ppf(0.975).unwrap() - 12.7062).abs() < 1e-2);
        let t100 = StudentsT::new(100.0).unwrap();
        assert!((t100.ppf(0.99).unwrap() - 2.3642).abs() < 1e-3);
        // Symmetry.
        assert!((t10.ppf(0.25).unwrap() + t10.ppf(0.75).unwrap()).abs() < 1e-9);
        assert_eq!(t10.ppf(0.5).unwrap(), 0.0);
    }

    #[test]
    fn students_t_cdf_and_p_values() {
        let t = StudentsT::new(5.8823529).unwrap();
        // Two-sided p for |t| = 1.8974 at df ≈ 5.88 is ≈ 0.1073 (the Welch
        // test's hand-computed example).
        let p = t.two_sided_p_value(1.8973666);
        assert!((p - 0.107).abs() < 5e-3, "p = {p}");
        assert!((t.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!(t.cdf(100.0) > 0.999999);
        assert!(t.cdf(-100.0) < 1e-6);
        assert_eq!(t.two_sided_p_value(0.0), 1.0);
    }

    #[test]
    fn students_t_round_trip() {
        let t = StudentsT::new(7.3).unwrap();
        for &p in &[0.01, 0.2, 0.5, 0.7, 0.975, 0.999] {
            let x = t.ppf(p).unwrap();
            assert!((t.cdf(x) - p).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn fisher_f_reference_quantiles() {
        let f = FisherF::new(5.0, 10.0).unwrap();
        assert!((f.ppf(0.95).unwrap() - 3.3258).abs() < 1e-3);
        let f = FisherF::new(1.0, 1.0).unwrap();
        assert!((f.ppf(0.95).unwrap() - 161.4476).abs() < 0.1);
        let f = FisherF::new(29.0, 29.0).unwrap();
        assert!((f.ppf(0.975).unwrap() - 2.1010).abs() < 1e-3);
    }

    #[test]
    fn fisher_f_tail_and_round_trip() {
        let f = FisherF::new(9.0, 9.0).unwrap();
        // P(F >= 4.0) with (9, 9) df ≈ 0.0255.
        assert!((f.upper_tail_p_value(4.0) - 0.0255).abs() < 1e-3);
        assert_eq!(f.upper_tail_p_value(0.0), 1.0);
        for &p in &[0.05, 0.5, 0.9, 0.99] {
            let x = f.ppf(p).unwrap();
            assert!((f.cdf(x) - p).abs() < 1e-8, "p = {p}");
            assert!((f.upper_tail_p_value(x) - (1.0 - p)).abs() < 1e-8);
        }
    }

    #[test]
    fn normal_reference_values() {
        assert!((Normal::std_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((Normal::std_cdf(1.959964) - 0.975).abs() < 1e-6);
        assert!((Normal::std_cdf(-1.959964) - 0.025).abs() < 1e-6);
        assert!((Normal::std_ppf(0.975).unwrap() - 1.959964).abs() < 1e-6);
        assert!((Normal::std_ppf(0.5).unwrap()).abs() < 1e-9);
        assert!((Normal::std_ppf(1e-6).unwrap() + 4.753424).abs() < 1e-4);

        let n = Normal::new(10.0, 2.0).unwrap();
        assert!((n.cdf(10.0) - 0.5).abs() < 1e-12);
        assert!((n.ppf(0.975).unwrap() - (10.0 + 2.0 * 1.959964)).abs() < 1e-5);
        let peak = n.pdf(10.0);
        assert!((peak - 1.0 / (2.0 * (2.0 * std::f64::consts::PI).sqrt())).abs() < 1e-12);
    }

    #[test]
    fn chi_squared_reference_values() {
        let c = ChiSquared::new(2.0).unwrap();
        // For df = 2 the cdf is 1 − exp(−x/2).
        assert!((c.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-10);
        assert!((c.ppf(0.95).unwrap() - 5.9915).abs() < 1e-3);
        let c = ChiSquared::new(10.0).unwrap();
        assert!((c.ppf(0.95).unwrap() - 18.3070).abs() < 1e-3);
    }

    #[test]
    fn beta_reference_values() {
        let b = Beta::new(2.0, 2.0).unwrap();
        assert!((b.cdf(0.5) - 0.5).abs() < 1e-10);
        assert!((b.ppf(0.5).unwrap() - 0.5).abs() < 1e-9);
        assert!((b.pdf(0.5) - 1.5).abs() < 1e-10);
        assert_eq!(b.cdf(-1.0), 0.0);
        assert_eq!(b.cdf(2.0), 1.0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(StudentsT::new(0.0).is_err());
        assert!(StudentsT::new(f64::NAN).is_err());
        assert!(FisherF::new(-1.0, 5.0).is_err());
        assert!(FisherF::new(5.0, 0.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(ChiSquared::new(-2.0).is_err());
        assert!(Beta::new(0.0, 1.0).is_err());
    }

    #[test]
    fn invalid_probabilities_rejected() {
        let t = StudentsT::new(5.0).unwrap();
        assert!(t.ppf(0.0).is_err());
        assert!(t.ppf(1.0).is_err());
        assert!(t.ppf(-0.5).is_err());
        assert!(t.ppf(f64::NAN).is_err());
        assert!(Normal::std_ppf(1.5).is_err());
    }

    #[test]
    fn pdf_integrates_to_one_numerically() {
        // Trapezoidal check over a generous support for each distribution.
        let integrate = |pdf: &dyn Fn(f64) -> f64, lo: f64, hi: f64| -> f64 {
            let n = 20_000;
            let h = (hi - lo) / n as f64;
            let mut acc = 0.5 * (pdf(lo) + pdf(hi));
            for i in 1..n {
                acc += pdf(lo + i as f64 * h);
            }
            acc * h
        };
        let t = StudentsT::new(8.0).unwrap();
        assert!((integrate(&|x| t.pdf(x), -60.0, 60.0) - 1.0).abs() < 1e-4);
        let f = FisherF::new(6.0, 14.0).unwrap();
        assert!((integrate(&|x| f.pdf(x), 1e-9, 120.0) - 1.0).abs() < 1e-3);
        let n = Normal::standard();
        assert!((integrate(&|x| n.pdf(x), -10.0, 10.0) - 1.0).abs() < 1e-8);
    }
}
