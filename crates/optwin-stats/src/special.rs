//! Special functions: log-gamma, error function, regularized incomplete
//! gamma and beta functions, and their inverses.
//!
//! These are the numerical primitives behind every distribution in
//! [`crate::dist`]. The implementations follow the classical series /
//! continued-fraction decompositions (Lanczos approximation for `ln Γ`,
//! Lentz's algorithm for the continued fractions) and are validated in the
//! unit tests against published reference values to at least `1e-10`
//! absolute accuracy in the well-conditioned regions.

use crate::{Result, StatsError};

/// Machine-epsilon-scale tolerance used by the iterative routines.
const EPS: f64 = 1e-15;
/// Smallest representable scale used to guard divisions in Lentz's algorithm.
const FPMIN: f64 = 1e-300;
/// Iteration cap for series / continued-fraction evaluations.
const MAX_ITER: usize = 500;

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with g = 7 and a 9-term coefficient set,
/// which yields ~15 significant digits over the positive real axis.
///
/// # Panics
///
/// Does not panic; returns `f64::NAN` for non-positive or non-finite input.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g = 7, n = 9).
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];

    if !x.is_finite() || x <= 0.0 {
        return f64::NAN;
    }
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1-x) = π / sin(πx).
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        return std::f64::consts::PI.ln() - sin_pi_x.ln() - ln_gamma(1.0 - x);
    }

    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural logarithm of the beta function `ln B(a, b)` for `a, b > 0`.
#[must_use]
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// The error function `erf(x)`.
///
/// Computed through the regularized lower incomplete gamma function
/// `P(1/2, x²)`, which keeps all accuracy in one code path.
#[must_use]
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    let p = reg_lower_gamma(0.5, x * x).unwrap_or(f64::NAN);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// For large positive `x` this uses the upper incomplete gamma function
/// directly so that the result does not lose accuracy to cancellation.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 0.0 {
        reg_upper_gamma(0.5, x * x).unwrap_or(f64::NAN)
    } else {
        1.0 + erf(-x).abs()
    }
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `a <= 0` or `x < 0`, and
/// [`StatsError::ConvergenceFailure`] if the series/continued fraction does
/// not converge (practically unreachable for valid input).
pub fn reg_lower_gamma(a: f64, x: f64) -> Result<f64> {
    check_gamma_args(a, x)?;
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        // Series representation converges quickly here.
        gamma_series(a, x)
    } else {
        // Use the continued fraction for Q and complement.
        Ok(1.0 - gamma_continued_fraction(a, x)?)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// # Errors
///
/// Same conditions as [`reg_lower_gamma`].
pub fn reg_upper_gamma(a: f64, x: f64) -> Result<f64> {
    check_gamma_args(a, x)?;
    if x == 0.0 {
        return Ok(1.0);
    }
    if x < a + 1.0 {
        Ok(1.0 - gamma_series(a, x)?)
    } else {
        gamma_continued_fraction(a, x)
    }
}

fn check_gamma_args(a: f64, x: f64) -> Result<()> {
    if !(a > 0.0) || !a.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "a",
            value: a,
            constraint: "shape parameter must be positive and finite",
        });
    }
    if !(x >= 0.0) || !x.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: x,
            constraint: "argument must be non-negative and finite",
        });
    }
    Ok(())
}

/// Series expansion of P(a, x), valid and fast for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> Result<f64> {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            return Ok(sum * (-x + a * x.ln() - ln_gamma(a)).exp());
        }
    }
    Err(StatsError::ConvergenceFailure {
        routine: "gamma_series",
        iterations: MAX_ITER,
    })
}

/// Continued-fraction expansion of Q(a, x), valid and fast for `x >= a + 1`.
fn gamma_continued_fraction(a: f64, x: f64) -> Result<f64> {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok((-x + a * x.ln() - ln_gamma(a)).exp() * h);
        }
    }
    Err(StatsError::ConvergenceFailure {
        routine: "gamma_continued_fraction",
        iterations: MAX_ITER,
    })
}

/// Inverse of the regularized lower incomplete gamma function: finds `x` with
/// `P(a, x) = p`.
///
/// Uses the Wilson–Hilferty / series starting guesses followed by Halley
/// iteration, as in the classical `invgammp` routine.
///
/// # Errors
///
/// Returns an error for `a <= 0` or `p` outside `[0, 1]`.
pub fn inv_reg_lower_gamma(a: f64, p: f64) -> Result<f64> {
    if !(a > 0.0) || !a.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "a",
            value: a,
            constraint: "shape parameter must be positive and finite",
        });
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidProbability { value: p });
    }
    if p == 0.0 {
        return Ok(0.0);
    }
    if p == 1.0 {
        return Ok(f64::INFINITY);
    }

    let gln = ln_gamma(a);
    let a1 = a - 1.0;
    let lna1 = if a > 1.0 { a1.ln() } else { 0.0 };
    let afac = if a > 1.0 {
        (a1 * (lna1 - 1.0) - gln).exp()
    } else {
        0.0
    };

    // Starting guess.
    let mut x = if a > 1.0 {
        let pp = if p < 0.5 { p } else { 1.0 - p };
        let t = (-2.0 * pp.ln()).sqrt();
        let mut x0 = (2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481)) - t;
        if p < 0.5 {
            x0 = -x0;
        }
        (a * (1.0 - 1.0 / (9.0 * a) - x0 / (3.0 * a.sqrt())).powi(3)).max(1e-300)
    } else {
        let t = 1.0 - a * (0.253 + a * 0.12);
        if p < t {
            (p / t).powf(1.0 / a)
        } else {
            1.0 - (1.0 - (p - t) / (1.0 - t)).ln()
        }
    };

    for _ in 0..24 {
        if x <= 0.0 {
            return Ok(0.0);
        }
        let err = reg_lower_gamma(a, x)? - p;
        let t = if a > 1.0 {
            afac * (-(x - a1) + a1 * (x.ln() - lna1)).exp()
        } else {
            (-x + a1 * x.ln() - gln).exp()
        };
        if t == 0.0 {
            break;
        }
        let u = err / t;
        let dx = u / (1.0 - 0.5 * (u * ((a - 1.0) / x - 1.0)).min(1.0));
        x -= dx;
        if x <= 0.0 {
            x = 0.5 * (x + dx);
        }
        if dx.abs() < 1e-12 * x.max(1e-12) {
            break;
        }
    }
    Ok(x)
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// # Errors
///
/// Returns an error if `a <= 0`, `b <= 0`, or `x` is outside `[0, 1]`, or if
/// the continued fraction fails to converge.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> Result<f64> {
    if !(a > 0.0) || !a.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "a",
            value: a,
            constraint: "shape parameter must be positive and finite",
        });
    }
    if !(b > 0.0) || !b.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "b",
            value: b,
            constraint: "shape parameter must be positive and finite",
        });
    }
    if !(0.0..=1.0).contains(&x) {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: x,
            constraint: "argument must lie in [0, 1]",
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }

    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    let front = ln_front.exp();

    // The continued fraction converges fastest for x < (a + 1) / (a + b + 2);
    // otherwise evaluate the symmetric complement.
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok(front * beta_continued_fraction(a, b, x)? / a)
    } else {
        Ok(1.0 - front * beta_continued_fraction(b, a, 1.0 - x)? / b)
    }
}

/// Lentz continued-fraction evaluation for the incomplete beta function.
fn beta_continued_fraction(a: f64, b: f64, x: f64) -> Result<f64> {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok(h);
        }
    }
    Err(StatsError::ConvergenceFailure {
        routine: "beta_continued_fraction",
        iterations: MAX_ITER,
    })
}

/// Inverse of the regularized incomplete beta function: finds `x` such that
/// `I_x(a, b) = p`.
///
/// Uses the Abramowitz & Stegun 26.5.22 starting approximation followed by
/// damped Newton iterations with a bisection safeguard.
///
/// # Errors
///
/// Returns an error for invalid shape parameters or `p` outside `[0, 1]`.
pub fn inv_reg_inc_beta(a: f64, b: f64, p: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidProbability { value: p });
    }
    if p == 0.0 {
        return Ok(0.0);
    }
    if p == 1.0 {
        return Ok(1.0);
    }

    // Initial guess (A&S 26.5.22).
    let mut x;
    {
        let pp = if p < 0.5 { p } else { 1.0 - p };
        let t = (-2.0 * pp.ln()).sqrt();
        let mut y = t - (2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481));
        if p < 0.5 {
            y = -y;
        }
        let al = (y * y - 3.0) / 6.0;
        let h = 2.0 / (1.0 / (2.0 * a - 1.0) + 1.0 / (2.0 * b - 1.0));
        let w = y * (al + h).sqrt() / h
            - (1.0 / (2.0 * b - 1.0) - 1.0 / (2.0 * a - 1.0)) * (al + 5.0 / 6.0 - 2.0 / (3.0 * h));
        if a > 1.0 && b > 1.0 {
            x = a / (a + b * (2.0 * w).exp());
        } else {
            let lna = (a / (a + b)).ln();
            let lnb = (b / (a + b)).ln();
            let t = (a * lna).exp() / a;
            let u = (b * lnb).exp() / b;
            let w = t + u;
            if p < t / w {
                x = (a * w * p).powf(1.0 / a);
            } else {
                x = 1.0 - (b * w * (1.0 - p)).powf(1.0 / b);
            }
        }
    }
    x = x.clamp(1e-300, 1.0 - 1e-16);

    // Bisection bracket maintained alongside Newton.
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    let afac = -ln_beta(a, b);
    for _ in 0..100 {
        let err = reg_inc_beta(a, b, x)? - p;
        if err > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        let ln_pdf = (a - 1.0) * x.ln() + (b - 1.0) * (1.0 - x).ln() + afac;
        let pdf = ln_pdf.exp();
        let mut next = if pdf > 0.0 { x - err / pdf } else { f64::NAN };
        if !next.is_finite() || next <= lo || next >= hi {
            next = 0.5 * (lo + hi);
        }
        let dx = (next - x).abs();
        x = next;
        if dx < 1e-14 || (hi - lo) < 1e-14 {
            return Ok(x);
        }
    }
    // Newton/bisection always makes progress; reaching this point means the
    // tolerance was not hit but the estimate is still inside the bracket.
    Ok(x)
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    const TOL: f64 = 1e-9;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(3) = 2, Γ(4) = 6, Γ(5) = 24
        assert!((ln_gamma(1.0) - 0.0).abs() < TOL);
        assert!((ln_gamma(2.0) - 0.0).abs() < TOL);
        assert!((ln_gamma(3.0) - 2.0_f64.ln()).abs() < TOL);
        assert!((ln_gamma(4.0) - 6.0_f64.ln()).abs() < TOL);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < TOL);
        // Γ(0.5) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < TOL);
        // Γ(10.5) = 9.5 · 8.5 · … · 0.5 · Γ(0.5); compare in log space.
        let expected =
            (0..10).map(|i| (0.5 + i as f64).ln()).sum::<f64>() + std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(10.5) - expected).abs() < 1e-9);
    }

    #[test]
    fn ln_gamma_reflection_small_values() {
        // Γ(0.25) = 3.62561 (ln = 1.28802252469807745...)
        assert!((ln_gamma(0.25) - 1.288_022_524_698_077_4).abs() < 1e-8);
    }

    #[test]
    fn ln_gamma_invalid_inputs_are_nan() {
        assert!(ln_gamma(0.0).is_nan());
        assert!(ln_gamma(-1.0).is_nan());
        assert!(ln_gamma(f64::NAN).is_nan());
        assert!(ln_gamma(f64::INFINITY).is_nan());
    }

    #[test]
    fn ln_beta_symmetric() {
        assert!((ln_beta(2.5, 3.5) - ln_beta(3.5, 2.5)).abs() < TOL);
        // B(1,1) = 1
        assert!((ln_beta(1.0, 1.0)).abs() < TOL);
        // B(2,3) = 1/12
        assert!((ln_beta(2.0, 3.0) - (1.0_f64 / 12.0).ln()).abs() < TOL);
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun.
        assert!((erf(0.0)).abs() < TOL);
        assert!((erf(0.5) - 0.520_499_877_813_046_5).abs() < 1e-9);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-9);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-9);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-9);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-2.0, -0.7, 0.0, 0.3, 1.1, 2.5] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "x = {x}");
        }
        // Tail accuracy: erfc(3) = 2.20904969985854e-5
        assert!((erfc(3.0) - 2.209_049_699_858_54e-5).abs() < 1e-12);
    }

    #[test]
    fn reg_gamma_basic_identities() {
        // P(a, 0) = 0, Q(a, 0) = 1
        assert_eq!(reg_lower_gamma(2.0, 0.0).unwrap(), 0.0);
        assert_eq!(reg_upper_gamma(2.0, 0.0).unwrap(), 1.0);
        // P + Q = 1
        for &(a, x) in &[(0.5, 0.3), (1.0, 2.0), (3.0, 2.5), (10.0, 12.0)] {
            let p = reg_lower_gamma(a, x).unwrap();
            let q = reg_upper_gamma(a, x).unwrap();
            assert!((p + q - 1.0).abs() < 1e-12, "a={a} x={x}");
        }
        // P(1, x) = 1 - exp(-x)
        for &x in &[0.1, 1.0, 3.0] {
            assert!((reg_lower_gamma(1.0, x).unwrap() - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn reg_gamma_rejects_invalid() {
        assert!(reg_lower_gamma(-1.0, 1.0).is_err());
        assert!(reg_lower_gamma(1.0, -1.0).is_err());
        assert!(reg_upper_gamma(0.0, 1.0).is_err());
    }

    #[test]
    fn inv_reg_lower_gamma_round_trip() {
        for &a in &[0.5, 1.0, 2.5, 10.0, 50.0] {
            for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
                let x = inv_reg_lower_gamma(a, p).unwrap();
                let back = reg_lower_gamma(a, x).unwrap();
                assert!((back - p).abs() < 1e-8, "a={a} p={p} x={x} back={back}");
            }
        }
    }

    #[test]
    fn inv_reg_lower_gamma_edges() {
        assert_eq!(inv_reg_lower_gamma(2.0, 0.0).unwrap(), 0.0);
        assert!(inv_reg_lower_gamma(2.0, 1.0).unwrap().is_infinite());
        assert!(inv_reg_lower_gamma(2.0, -0.1).is_err());
        assert!(inv_reg_lower_gamma(-2.0, 0.5).is_err());
    }

    #[test]
    fn reg_inc_beta_reference_values() {
        // I_x(a, b) reference values (computed with high-precision software).
        // I_{0.5}(2, 2) = 0.5
        assert!((reg_inc_beta(2.0, 2.0, 0.5).unwrap() - 0.5).abs() < 1e-12);
        // I_{0.25}(2, 3) = 0.26171875
        assert!((reg_inc_beta(2.0, 3.0, 0.25).unwrap() - 0.261_718_75).abs() < 1e-10);
        // I_{0.1}(0.5, 0.5) = (2/pi) asin(sqrt(0.1)) = 0.204832764699133...
        assert!((reg_inc_beta(0.5, 0.5, 0.1).unwrap() - 0.204_832_764_699_133_6).abs() < 1e-9);
        // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (7.5, 2.25, 0.65), (0.5, 3.0, 0.12)] {
            let lhs = reg_inc_beta(a, b, x).unwrap();
            let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x).unwrap();
            assert!((lhs - rhs).abs() < 1e-10, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn reg_inc_beta_edges_and_errors() {
        assert_eq!(reg_inc_beta(2.0, 3.0, 0.0).unwrap(), 0.0);
        assert_eq!(reg_inc_beta(2.0, 3.0, 1.0).unwrap(), 1.0);
        assert!(reg_inc_beta(0.0, 3.0, 0.5).is_err());
        assert!(reg_inc_beta(2.0, -3.0, 0.5).is_err());
        assert!(reg_inc_beta(2.0, 3.0, 1.5).is_err());
    }

    #[test]
    fn inv_reg_inc_beta_round_trip() {
        for &(a, b) in &[
            (0.5, 0.5),
            (1.0, 3.0),
            (2.0, 2.0),
            (5.0, 10.0),
            (50.0, 30.0),
        ] {
            for &p in &[0.001, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999] {
                let x = inv_reg_inc_beta(a, b, p).unwrap();
                let back = reg_inc_beta(a, b, x).unwrap();
                assert!(
                    (back - p).abs() < 1e-8,
                    "a={a} b={b} p={p} x={x} back={back}"
                );
            }
        }
    }

    #[test]
    fn inv_reg_inc_beta_edges() {
        assert_eq!(inv_reg_inc_beta(2.0, 3.0, 0.0).unwrap(), 0.0);
        assert_eq!(inv_reg_inc_beta(2.0, 3.0, 1.0).unwrap(), 1.0);
        assert!(inv_reg_inc_beta(2.0, 3.0, -0.5).is_err());
        assert!(inv_reg_inc_beta(2.0, 3.0, 2.0).is_err());
    }

    #[test]
    fn inc_beta_is_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 / 100.0;
            let v = reg_inc_beta(3.0, 7.0, x).unwrap();
            assert!(v >= prev, "not monotone at x={x}");
            prev = v;
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn inc_beta_in_unit_interval(a in 0.1f64..50.0, b in 0.1f64..50.0, x in 0.0f64..=1.0) {
            let v = reg_inc_beta(a, b, x).unwrap();
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        }

        #[test]
        fn inv_beta_round_trip(a in 0.2f64..30.0, b in 0.2f64..30.0, p in 0.001f64..0.999) {
            let x = inv_reg_inc_beta(a, b, p).unwrap();
            prop_assert!((0.0..=1.0).contains(&x));
            let back = reg_inc_beta(a, b, x).unwrap();
            prop_assert!((back - p).abs() < 1e-6, "a={} b={} p={} back={}", a, b, p, back);
        }

        #[test]
        fn gamma_p_plus_q_is_one(a in 0.1f64..100.0, x in 0.0f64..200.0) {
            let p = reg_lower_gamma(a, x).unwrap();
            let q = reg_upper_gamma(a, x).unwrap();
            prop_assert!((p + q - 1.0).abs() < 1e-10);
        }

        #[test]
        fn erf_is_odd_and_bounded(x in -5.0f64..5.0) {
            let v = erf(x);
            prop_assert!((-1.0..=1.0).contains(&v));
            prop_assert!((erf(-x) + v).abs() < 1e-12);
        }

        #[test]
        fn ln_gamma_recurrence(x in 0.5f64..50.0) {
            // Γ(x+1) = x Γ(x)  =>  lnΓ(x+1) = ln x + lnΓ(x)
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            prop_assert!((lhs - rhs).abs() < 1e-9);
        }
    }
}
