//! Statistical substrate for the OPTWIN concept-drift reproduction.
//!
//! The OPTWIN paper relies on the probability point functions (PPF, i.e.
//! inverse CDF) of the Student's *t*- and Fisher *F*-distributions, on Welch's
//! unequal-variance *t*-test and the variance-ratio *f*-test, and — for the
//! evaluation section — on the one-tailed Wilcoxon signed-rank test. The MOA
//! baselines additionally need the normal distribution (ADWIN's
//! normal-approximation cut, STEPD's equality-of-proportions test, ECDD's EWMA
//! chart) and the two-sample Kolmogorov–Smirnov test (KSWIN extension).
//!
//! Everything in this crate is implemented from scratch on top of a small set
//! of special functions (log-gamma, error function, regularized incomplete
//! gamma and beta functions) so that the workspace has no dependency on an
//! external statistics library.
//!
//! # Layout
//!
//! * [`special`] — special functions (`ln_gamma`, `erf`, incomplete
//!   gamma/beta and their inverses).
//! * [`dist`] — probability distributions with `pdf` / `cdf` / `ppf`
//!   (normal, Student's t, Fisher F, chi-squared, beta).
//! * [`tests`] — hypothesis tests (Welch t, variance-ratio F, equality of
//!   proportions, Wilcoxon signed-rank, two-sample KS).
//! * [`incremental`] — numerically careful streaming moments (Welford and
//!   add/remove window accumulators) and EWMA estimators.
//! * [`kernels`] — chunked, branch-hoisted slice kernels over the
//!   incremental accumulators, bit-exact to the element-wise folds.
//! * [`descriptive`] — batch descriptive statistics over slices.
//! * [`roots`] — bracketing root finders (bisection, Brent) used by the
//!   quantile inversions and by OPTWIN's optimal-cut search.
//!
//! # Example
//!
//! ```
//! use optwin_stats::dist::{ContinuousDistribution, StudentsT, FisherF};
//!
//! let t = StudentsT::new(10.0).unwrap();
//! let q = t.ppf(0.975).unwrap();
//! assert!((q - 2.228).abs() < 1e-3);
//!
//! let f = FisherF::new(5.0, 10.0).unwrap();
//! let q = f.ppf(0.95).unwrap();
//! assert!((q - 3.3258).abs() < 1e-3);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]
// `!(x > 0.0)` (rather than `x <= 0.0`) is this crate's deliberate idiom for
// rejecting non-positive *and NaN* parameters in one comparison.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod descriptive;
pub mod dist;
pub mod error;
pub mod incremental;
pub mod kernels;
pub mod roots;
pub mod special;
pub mod tests;

pub use error::StatsError;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StatsError>;
